"""Partitioning study: how placement policy shapes PIM query performance.

This example sweeps the pieces of the paper's partitioning design on one
skewed trace (web-NotreDame) and prints, for each configuration, the
partition quality metrics and the simulated 3-hop batch-query breakdown:

* plain hash partitioning (the PIM-hash contrast system);
* radical greedy without labor division (hubs stay on PIM modules);
* the full Moctopus design (radical greedy + labor division + migration);
* the full design across different PIM module counts, showing how the
  parallel width trades off against communication.

Run with::

    python examples/partitioning_study.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig
from repro.bench import khop_workload, scaled_cost_model
from repro.graph import load_dataset
from repro.partition import load_imbalance
from repro.rpq import KHopQuery, evaluate_khop


def run_configuration(name, graph, config, query, reference):
    system = Moctopus.from_graph(graph, config)
    # One warm-up round lets the greedy-adaptive migration settle.
    system.batch_khop(query.sources[:64], 2)
    result, stats = system.batch_khop(query.sources, query.hops)
    assert result == reference, f"{name} produced a wrong answer"
    quality = system.partition_quality()
    imbalance = load_imbalance(system.pim.load_report())
    print(f"  {name:<34} latency {stats.total_time_ms:8.3f} ms "
          f"(pim {stats.pim_time * 1e3:7.3f}, ipc {stats.ipc_time_ms:7.3f}, "
          f"host {stats.host_time * 1e3:7.3f}) | locality {quality.locality_fraction:.2f} "
          f"| host nodes {system.host_node_count():>4} | work imbalance {imbalance:5.2f}")


def main() -> None:
    graph = load_dataset("web-NotreDame")
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{100 * graph.high_degree_fraction(16):.2f}% high-degree nodes")
    query = khop_workload(graph, hops=3, batch_size=128, seed=11)
    reference = evaluate_khop(graph, KHopQuery(hops=query.hops, sources=query.sources))

    print("\npolicy sweep (64 PIM modules):")
    cost_model = scaled_cost_model()
    run_configuration(
        "hash partitioning (PIM-hash)", graph,
        MoctopusConfig.pim_hash_config(cost_model), query, reference,
    )
    run_configuration(
        "radical greedy, no labor division", graph,
        MoctopusConfig(cost_model=cost_model, high_degree_threshold=None),
        query, reference,
    )
    run_configuration(
        "radical greedy, no migration", graph,
        MoctopusConfig(cost_model=cost_model, enable_migration=False),
        query, reference,
    )
    run_configuration(
        "full Moctopus design", graph,
        MoctopusConfig(cost_model=cost_model), query, reference,
    )

    print("\nmodule-count sweep (full design):")
    for num_modules in (8, 16, 32, 64, 128):
        run_configuration(
            f"{num_modules} PIM modules", graph,
            MoctopusConfig(cost_model=scaled_cost_model(num_modules=num_modules)),
            query, reference,
        )


if __name__ == "__main__":
    main()
