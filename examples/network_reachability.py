"""Network reachability analysis — the paper's Figure 2 scenario, scaled up.

The paper motivates batch RPQs with a routing-connection graph: given a
set of source IP addresses, find every host reachable within k hops
(``UNWIND [...] AS ipAddr MATCH ({ip: ipAddr})-[2]->(t)``).  This
example builds a property graph of routers and links, resolves IP
addresses to node ids, runs batch k-hop queries on Moctopus and checks
them against the reference evaluator.

Run with::

    python examples/network_reachability.py
"""

from __future__ import annotations

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig
from repro.bench import scaled_cost_model
from repro.graph import PropertyGraph, road_network
from repro.rpq import KHopQuery, evaluate_khop


def build_network(num_pops: int = 40, routers_per_pop: int = 48, seed: int = 7) -> PropertyGraph:
    """A two-level ISP-like topology: a backbone lattice plus PoP subnets."""
    rng = random.Random(seed)
    network = PropertyGraph()
    backbone = road_network(rows=8, cols=5, seed=seed)  # 40 backbone routers

    def ip_of(node_id: int) -> str:
        return f"10.{node_id // 65536}.{(node_id // 256) % 256}.{node_id % 256}"

    for node in backbone.nodes():
        network.add_node(node, label="BackboneRouter", properties={"ip": ip_of(node)})
    for src, dst in backbone.edges():
        network.add_edge(src, dst, label="LINK")

    next_id = backbone.num_nodes
    for pop in range(num_pops):
        gateway = pop  # each backbone router fronts one PoP
        for _ in range(routers_per_pop):
            router = next_id
            next_id += 1
            network.add_node(router, label="EdgeRouter", properties={"ip": ip_of(router)})
            network.add_edge(gateway, router, label="LINK")
            network.add_edge(router, gateway, label="LINK")
            # A little intra-PoP meshing.
            if rng.random() < 0.5 and router > backbone.num_nodes + 1:
                peer = rng.randrange(backbone.num_nodes, router)
                network.add_edge(router, peer, label="LINK")
    return network


def main() -> None:
    network = build_network()
    graph = network.adjacency()
    print(f"network: {network.num_nodes} routers, {network.num_edges} links")

    system = Moctopus.from_graph(graph, MoctopusConfig(cost_model=scaled_cost_model()))

    # Pick a batch of monitored source IPs (e.g. suspected compromised hosts).
    rng = random.Random(1)
    monitored_nodes = rng.sample(range(network.num_nodes), 64)
    monitored_ips = [network.node(node).properties["ip"] for node in monitored_nodes]

    # Resolve IPs back to node ids exactly as the Cypher UNWIND/MATCH would.
    sources = []
    for ip in monitored_ips:
        matches = network.find_nodes(ip=ip)
        sources.extend(record.node_id for record in matches)

    for hops in (1, 2, 3):
        result, stats = system.batch_khop(sources, hops)
        reference = evaluate_khop(graph, KHopQuery(hops=hops, sources=sources))
        assert result == reference
        blast_radius = len(set().union(*result.destinations)) if result.destinations else 0
        print(f"k={hops}: {result.total_matches} matched endpoint pairs, "
              f"{blast_radius} distinct reachable routers, "
              f"simulated latency {stats.total_time_ms:.3f} ms "
              f"(ipc {stats.ipc_time_ms:.3f} ms)")

    # Show one concrete answer like the paper's example output.
    example_ip = monitored_ips[0]
    example_destinations = sorted(result.destinations_of(0))[:8]
    print(f"\nhosts within 3 hops of {example_ip}: "
          f"{[network.node(node).properties['ip'] for node in example_destinations]} ...")


if __name__ == "__main__":
    main()
