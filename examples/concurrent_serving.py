"""Concurrent serving walkthrough: epochs, sessions, and the scheduler.

Run with::

    python examples/concurrent_serving.py

The example loads a small social-graph stand-in, then walks the whole
epoch lifecycle: a session pins an epoch and keeps its answers stable
while the writer churns, stages its own updates (read-your-writes),
refreshes, and commits; finally a batch scheduler serves a burst of
concurrent single-source queries from worker threads, coalescing them
into engine-level batches.
"""

from __future__ import annotations

import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig
from repro.graph import power_law_graph
from repro.pim import CostModel


def main() -> None:
    # 1. A skewed graph with hubs, served by the vectorized backend.
    graph = power_law_graph(num_nodes=2000, edges_per_node=4, skew=0.8, seed=7)
    config = MoctopusConfig(cost_model=CostModel(num_modules=16), engine="vectorized")
    system = Moctopus.from_graph(graph, config)
    print(f"serving {system.num_nodes} nodes / {system.num_edges} edges")

    # 2. Snapshot isolation: pin an epoch, watch the writer move on.
    session = system.begin()
    print(f"\nsession pinned epoch {session.epoch_id}")
    before, _ = session.batch_khop([0, 1, 2], hops=2)

    system.insert_edges([(0, 1999), (1999, 1)])       # the writer advances
    system.delete_edges([(0, 1)])
    print(f"writer published epoch {system.current_epoch_id}")

    after, _ = session.batch_khop([0, 1, 2], hops=2)
    assert after.destinations == before.destinations
    print("pinned session's answers are unchanged (snapshot isolation)")

    # 3. Read-your-writes: staged updates are visible to this session only.
    session.insert_edges([(2, 1777)])
    mine, _ = session.batch_khop([2], hops=1)
    assert 1777 in mine.destinations_of(0)
    live, _ = system.batch_khop([2], hops=1, auto_migrate=False)
    assert 1777 not in live.destinations_of(0)
    print("staged edge 2->1777 visible in-session, invisible to the writer")

    # 4. Refresh: jump to the latest epoch, staged writes ride along.
    session.refresh()
    refreshed, _ = session.batch_khop([0, 2], hops=1)
    assert 1999 in refreshed.destinations_of(0)       # writer's edge
    assert 1777 in refreshed.destinations_of(1)       # still staged
    print(f"refreshed onto epoch {session.epoch_id}; staged writes kept")

    # 5. Commit: the writer applies the staged batch, everyone sees it.
    stats = session.commit()
    live, _ = system.batch_khop([2], hops=1, auto_migrate=False)
    assert 1777 in live.destinations_of(0)
    print(f"committed in {stats.total_time_ms:.3f} simulated ms; "
          f"now at epoch {session.epoch_id}")
    session.close()

    # 6. The batch scheduler: concurrent clients, coalesced execution.
    with system.serve() as scheduler:
        answers = {}
        lock = threading.Lock()

        def client(worker: int) -> None:
            for index in range(24):
                source = (worker * 131 + index * 17) % system.num_nodes
                destinations = scheduler.query(source, hops=2)
                with lock:
                    answers[(worker, source)] = len(destinations)

        workers = [threading.Thread(target=client, args=(w,)) for w in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        print(f"\nscheduler answered {scheduler.queries_served} queries "
              f"in {scheduler.batches_executed} engine batches "
              f"(~{scheduler.queries_served / max(1, scheduler.batches_executed):.1f} "
              f"coalesced per batch)")
    print("per-epoch serving report:", system.serving_report())


if __name__ == "__main__":
    main()
