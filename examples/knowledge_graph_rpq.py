"""General regular path queries over a labeled knowledge graph.

The paper's evaluation focuses on k-hop queries, but the system (like
any RPQ engine) supports full path regular expressions over edge labels.
This example builds a small synthetic academic knowledge graph —
authors, papers, venues, institutions — and runs labeled RPQs such as
"co-author of a co-author" or "institutions reachable through any chain
of affiliations and collaborations" on Moctopus and on the
RedisGraph-like baseline, verifying both against the reference
evaluator.

Run with::

    python examples/knowledge_graph_rpq.py
"""

from __future__ import annotations

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig, RedisGraphEngine
from repro.bench import scaled_cost_model
from repro.graph import PropertyGraph
from repro.rpq import RPQuery, evaluate_rpq


def build_knowledge_graph(
    num_authors: int = 600,
    num_papers: int = 900,
    num_venues: int = 25,
    num_institutions: int = 40,
    seed: int = 42,
) -> PropertyGraph:
    """Authors write papers, papers appear at venues, authors have affiliations."""
    rng = random.Random(seed)
    graph = PropertyGraph()
    authors = list(range(num_authors))
    papers = list(range(num_authors, num_authors + num_papers))
    venues = list(range(papers[-1] + 1, papers[-1] + 1 + num_venues))
    institutions = list(range(venues[-1] + 1, venues[-1] + 1 + num_institutions))

    for author in authors:
        graph.add_node(author, label="Author", properties={"name": f"author-{author}"})
    for paper in papers:
        graph.add_node(paper, label="Paper")
    for venue in venues:
        graph.add_node(venue, label="Venue")
    for institution in institutions:
        graph.add_node(institution, label="Institution")

    for paper in papers:
        num_coauthors = 1 + rng.randrange(4)
        for author in rng.sample(authors, num_coauthors):
            graph.add_edge(author, paper, label="writes")
            graph.add_edge(paper, author, label="written_by")
        graph.add_edge(paper, rng.choice(venues), label="published_at")
    for author in authors:
        graph.add_edge(author, rng.choice(institutions), label="affiliated_with")
    for institution in institutions:
        if rng.random() < 0.3:
            graph.add_edge(institution, rng.choice(institutions), label="partner_of")
    return graph


def main() -> None:
    knowledge = build_knowledge_graph()
    adjacency = knowledge.adjacency()
    label_names = {knowledge.edge_label_id(name): name
                   for name in ("writes", "written_by", "published_at",
                                "affiliated_with", "partner_of")}
    print(f"knowledge graph: {knowledge.num_nodes} nodes, {knowledge.num_edges} edges")

    moctopus = Moctopus.from_graph(
        adjacency, MoctopusConfig(cost_model=scaled_cost_model()), label_names=label_names
    )
    redisgraph = RedisGraphEngine.from_graph(adjacency, label_names=label_names)

    rng = random.Random(3)
    author_sources = rng.sample(range(600), 32)

    queries = {
        "papers written": "writes",
        "co-authors": "writes/written_by",
        "co-authors of co-authors": "(writes/written_by){2}",
        "venues reachable through collaboration": "(writes/written_by)*/writes/published_at",
        "institutions of co-authors": "writes/written_by/affiliated_with",
        "partner institutions (transitively)": "affiliated_with/partner_of+",
    }

    for description, expression in queries.items():
        query = RPQuery(expression, sources=list(author_sources))
        expected = evaluate_rpq(adjacency, query, label_names=label_names)
        moctopus_result, moctopus_stats = moctopus.execute(query)
        redis_result, redis_stats = redisgraph.execute(query)
        assert moctopus_result == expected and redis_result == expected
        print(f"  {description:<40} {expression:<38} "
              f"{moctopus_result.total_matches:>6} matches  "
              f"moctopus {moctopus_stats.total_time_ms:7.3f} ms  "
              f"redisgraph {redis_stats.total_time_ms:7.3f} ms")

    print("\nall RPQ answers verified against the reference evaluator")


if __name__ == "__main__":
    main()
