"""Multi-process parallel serving over shared-memory epoch snapshots.

``system.serve(parallel=N)`` puts N worker *processes* behind the batch
scheduler: each drained window's coalesced per-hops batches are
scattered across the pool — whose children attach the published epoch's
frozen CSR arrays zero-copy through ``multiprocessing.shared_memory`` —
and gathered in submission order.  Answers, statistics and epoch stamps
are bit-identical to in-process serving; the difference is that batches
execute on real cores instead of time-slicing one GIL.

Run with::

    PYTHONPATH=src python examples/parallel_serving.py
"""

from __future__ import annotations

from repro.core import Moctopus, MoctopusConfig
from repro.graph import random_graph
from repro.pim import CostModel


def main() -> None:
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=16),
        engine="python",
        # Alternatively set ``serve_workers=2`` here to make every
        # ``system.serve()`` parallel by default.
    )
    system = Moctopus.from_graph(random_graph(4000, 16000, seed=7), config)

    # Two worker processes; close() (or the context manager) tears the
    # pool down, unlinks the shared segments and releases every pin.
    with system.serve(parallel=2) as scheduler:
        print(f"scheduler backed by {scheduler.parallel_workers} workers")

        # Submit a pipeline of single-source queries; compatible hop
        # counts coalesce into engine batches exactly as in-process
        # serving, then the batches fan out across the pool.
        futures = [
            (source, hops, scheduler.submit(source, hops))
            for source in range(24)
            for hops in (2, 3)
        ]
        for source, hops, future in futures[:4]:
            destinations, stats = future.outcome(timeout=60)
            print(
                f"  {hops}-hop from {source}: {len(destinations)} nodes, "
                f"epoch {stats.counters['epoch']}, "
                f"rode a batch of {stats.counters['coalesced_queries']}"
            )
        for _, _, future in futures[4:]:
            future.result(timeout=60)
        print(
            f"served {scheduler.queries_served} queries in "
            f"{scheduler.batches_executed} scattered batches"
        )

    # A writer keeps publishing while the pool reads: the pool exports
    # each fresh epoch once and retires superseded segments when the
    # last worker detaches.
    with system.serve(parallel=2) as scheduler:
        before = scheduler.query(0, 2)
        system.insert_edges([(0, 3999)])
        after = scheduler.query(0, 2)
        print(
            f"writer churn: answer grew {len(before)} -> {len(after)} "
            "nodes across epochs"
        )

    print(f"open epoch pins after close: {system._epochs.pins()}")


if __name__ == "__main__":
    main()
