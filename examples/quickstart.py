"""Quickstart: load a graph, run a batch k-hop RPQ, update it, inspect costs.

Run with::

    python examples/quickstart.py

The example builds the synthetic stand-in for the paper's com-amazon
trace, loads it into Moctopus and into the two comparison systems, runs
the paper's k-hop workload on all three, and prints the simulated
latency breakdown (host / CPU-PIM / inter-PIM / PIM time).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig, PIMHashSystem, RedisGraphEngine
from repro.bench import khop_workload, scaled_cost_model
from repro.graph import dataset_statistics, load_dataset
from repro.rpq import KHopQuery, evaluate_khop


def main() -> None:
    # 1. Generate the com-amazon stand-in (Table 1, trace #7).
    graph = load_dataset("com-amazon")
    stats = dataset_statistics(graph)
    print(f"graph: {int(stats['nodes'])} nodes, {int(stats['edges'])} edges, "
          f"{stats['high_degree_pct']:.2f}% high-degree nodes")

    # 2. Build the three systems of the paper's evaluation.
    cost_model = scaled_cost_model()
    # engine= picks the wall-clock backend ("python" | "vectorized" |
    # "matrix"); all three return bit-identical results and simulated
    # stats, so it only changes how fast the reproduction itself runs.
    moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=cost_model))
    pim_hash = PIMHashSystem.from_graph(graph, cost_model=cost_model)
    redisgraph = RedisGraphEngine.from_graph(graph, cost_model=cost_model)

    quality = moctopus.partition_quality()
    print(f"moctopus partitioning: {moctopus.host_node_count()} host-resident hubs, "
          f"locality {quality.locality_fraction:.2f}, balance {quality.balance_factor:.2f}")

    # 3. Run a batch 2-hop path query (the paper's RPQ workload).
    query = khop_workload(graph, hops=2, batch_size=128, seed=1)
    reference = evaluate_khop(graph, KHopQuery(hops=query.hops, sources=query.sources))

    print(f"\nbatch {query.batch_size}x {query.hops}-hop query:")
    for name, system in (("moctopus", moctopus), ("pim-hash", pim_hash),
                         ("redisgraph", redisgraph)):
        result, run_stats = system.batch_khop(query.sources, query.hops)
        assert result == reference, f"{name} returned a wrong answer"
        print(f"  {name:<11} {run_stats.total_time_ms:8.3f} ms  "
              f"(host {run_stats.host_time * 1e3:.3f}, cpc {run_stats.cpc_time * 1e3:.3f}, "
              f"ipc {run_stats.ipc_time * 1e3:.3f}, pim {run_stats.pim_time * 1e3:.3f})")

    # 4. Update the graph: insert and delete a small edge batch.
    new_edges = [(1_000_000 + index, index) for index in range(16)]
    insert_stats = moctopus.insert_edges(new_edges)
    delete_stats = moctopus.delete_edges(new_edges[:8])
    print(f"\nupdates: inserted 16 edges in {insert_stats.total_time_ms:.4f} ms, "
          f"deleted 8 edges in {delete_stats.total_time_ms:.4f} ms")
    print(f"partitioner decisions: {moctopus.partition_statistics()}")

    # 5. Peek at the cost-based planner.  Epoch-pinned executions
    # (sessions, the batch scheduler) are costed against the epoch's
    # frozen degree/label statistics: fixed-length expressions may run
    # *reverse* from the rarer accepting side, and repeated queries are
    # answered from epoch-keyed plan/result caches (bit-identical to an
    # uncached run; see moctopus.cache_stats for hit counters).
    print(f"\nplanner view of the 2-hop workload:")
    print(moctopus.explain(KHopQuery(hops=2, sources=query.sources[:8])))


if __name__ == "__main__":
    main()
