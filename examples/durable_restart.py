"""Kill-and-recover walkthrough: the write-ahead log in action.

Run with::

    python examples/durable_restart.py

The example starts a durable system in a scratch directory, applies
update batches (checkpointing partway through), then simulates a
process crash — the instance is abandoned without ``close()``, exactly
as ``kill -9`` would leave it, including a torn final record manufactured
by truncating the last WAL segment mid-append.  ``Moctopus.recover``
rebuilds from the newest checkpoint plus the WAL tail, and the round
trip is verified bit-for-bit against an uncrashed twin that applied the
same batches.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig
from repro.durability import wal_directory
from repro.durability.wal import list_segments
from repro.graph import power_law_graph
from repro.graph.stream import UpdateStream
from repro.pim import CostModel


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="moctopus-durable-")
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=8),
        durability_dir=workdir,
        checkpoint_interval_batches=0,   # we checkpoint explicitly below
    )

    # 1. A durable system under a deterministic update workload.
    graph = power_law_graph(num_nodes=800, edges_per_node=4, skew=0.8, seed=3)
    system = Moctopus.from_graph(graph, config)
    print(f"durable store: {workdir}")
    print(f"loaded {system.num_nodes} nodes / {system.num_edges} edges (lsn={system.durable_lsn})")

    stream = UpdateStream(graph, seed=4)
    for round_index in range(6):
        system.apply_updates(stream.mixed_batch(64))
        if round_index == 2:
            path = system.checkpoint()
            print(f"checkpoint written: {os.path.basename(path)}")
    print(f"applied 6 batches, log at lsn={system.durable_lsn}")

    # 2. Crash. No close(), no flush ceremony — and to make it ugly, tear
    #    the final record as a mid-append power cut would.
    last_segment = list_segments(wal_directory(workdir))[-1]
    with open(last_segment, "rb+") as handle:
        handle.truncate(os.path.getsize(last_segment) - 7)
    print("\n-- simulated crash: process gone, final record torn --\n")

    # 3. Recover: newest checkpoint + WAL tail replay, torn tail dropped.
    recovered = Moctopus.recover(workdir)
    print(f"recovered to lsn={recovered.durable_lsn} "
          f"({recovered.num_nodes} nodes / {recovered.num_edges} edges)")

    # The torn record held the 6th batch: build an uncrashed twin on
    # the surviving durable prefix (bootstrap + 5 batches).
    twin = Moctopus.from_graph(
        graph, MoctopusConfig(cost_model=CostModel(num_modules=8))
    )
    replay = UpdateStream(graph, seed=4)
    for _ in range(5):
        twin.apply_updates(replay.mixed_batch(64))

    storages = lambda sys_: list(sys_._module_storages) + [sys_._host_storage]
    identical = all(
        a.to_csr().same_arrays(b.to_csr())
        for a, b in zip(storages(recovered), storages(twin))
    )
    print(f"bit-identical CSR snapshots vs uncrashed twin: {identical}")
    assert identical

    # 4. Business as usual: the recovered system keeps logging.
    result, stats = recovered.batch_khop([0, 1, 2, 3], hops=2)
    print(f"post-recovery 2-hop query: {result.total_matches} matches "
          f"in {stats.total_time_ms:.3f} simulated ms")
    recovered.apply_updates(replay.mixed_batch(64))
    print(f"new batch accepted, log now at lsn={recovered.durable_lsn}")

    recovered.close()
    shutil.rmtree(workdir)
    print("\ndone.")


if __name__ == "__main__":
    main()
