"""A dynamic social graph: interleaved updates and friend-of-friend queries.

The paper's second workload is graph update (Figure 6): batches of edge
insertions and deletions handled by PIM modules, with high-degree nodes
served by the heterogeneous graph storage.  This example simulates a
social network that keeps growing while answering friend-of-friend
(2-hop) recommendation queries, and reports how Moctopus's update cost
compares with the RedisGraph-like baseline round by round.

Run with::

    python examples/dynamic_social_graph.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig, RedisGraphEngine
from repro.bench import scaled_cost_model
from repro.graph import UpdateStream, load_dataset
from repro.rpq import KHopQuery, evaluate_khop, random_source_batch


def main() -> None:
    # Start from the com-youtube stand-in (a skewed social graph, trace #5).
    graph = load_dataset("com-youtube", scale=0.5)
    print(f"initial graph: {graph.num_nodes} users, {graph.num_edges} follows, "
          f"{100 * graph.high_degree_fraction(16):.2f}% high-degree users")

    cost_model = scaled_cost_model()
    moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=cost_model))
    redisgraph = RedisGraphEngine.from_graph(graph, cost_model=cost_model)
    stream = UpdateStream(graph, seed=2024)

    total_moctopus_update = 0.0
    total_redis_update = 0.0
    for round_index in range(5):
        # New follows arrive and some old ones are removed.
        inserts = [op.edge for op in stream.insertion_batch(96)]
        deletes = [op.edge for op in stream.deletion_batch(32)]

        moctopus_cost = (moctopus.insert_edges(inserts).total_time
                         + moctopus.delete_edges(deletes).total_time)
        redis_cost = (redisgraph.insert_edges(inserts).total_time
                      + redisgraph.delete_edges(deletes).total_time)
        total_moctopus_update += moctopus_cost
        total_redis_update += redis_cost

        # Friend-of-friend recommendations for a batch of active users.
        sources = random_source_batch(list(moctopus.graph.nodes()), 64,
                                      seed=round_index)
        result, query_stats = moctopus.batch_khop(sources, hops=2)
        expected = evaluate_khop(moctopus.graph, KHopQuery(hops=2, sources=sources))
        assert result == expected

        print(f"round {round_index + 1}: +{len(inserts)}/-{len(deletes)} edges | "
              f"update moctopus {moctopus_cost * 1e3:7.4f} ms vs redisgraph "
              f"{redis_cost * 1e3:7.4f} ms ({redis_cost / moctopus_cost:5.1f}x) | "
              f"fof query {query_stats.total_time_ms:6.3f} ms, "
              f"{result.total_matches} recommendations")

    print(f"\ntotals: moctopus updates {total_moctopus_update * 1e3:.3f} ms, "
          f"redisgraph updates {total_redis_update * 1e3:.3f} ms "
          f"({total_redis_update / total_moctopus_update:.1f}x speedup)")
    print(f"hubs promoted to the host so far: {moctopus.host_node_count()}")
    print(f"partitioner decisions: {moctopus.partition_statistics()}")


if __name__ == "__main__":
    main()
