"""Network serving walkthrough: a TCP front-end over the scheduler.

Run with::

    python examples/net_serving.py

The example starts a :class:`~repro.net.server.MoctopusServer` on an
ephemeral port via ``system.listen()``, connects two independent
clients that pipeline k-hop and regular-path queries over the wire,
scrapes the server's metrics both through the STATS frame and the
HTTP-ish ``GET /metrics`` endpoint, and shuts everything down
gracefully — in-flight queries are answered before the sockets close.
"""

from __future__ import annotations

import os
import socket
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Moctopus, MoctopusConfig
from repro.graph import power_law_graph
from repro.net import MoctopusClient
from repro.pim import CostModel


def main() -> None:
    # 1. Build a system and put a socket in front of it.  port=0 binds
    #    an ephemeral port; the auth token gates the handshake.
    graph = power_law_graph(num_nodes=2000, edges_per_node=4, skew=0.8, seed=7)
    config = MoctopusConfig(cost_model=CostModel(num_modules=16), engine="vectorized")
    system = Moctopus.from_graph(graph, config)
    server = system.listen(port=0, auth_token="demo-token")
    print(f"serving {system.num_nodes} nodes on 127.0.0.1:{server.port}")

    # 2. Two clients, each its own connection, pipelining queries.  The
    #    scheduler coalesces equal-shaped queries from both connections
    #    into shared engine batches.
    alice = MoctopusClient("127.0.0.1", server.port, auth_token="demo-token")
    bob = MoctopusClient("127.0.0.1", server.port, auth_token="demo-token")
    print(f"handshake: engine={alice.server_info['engine']}, "
          f"per-client in-flight cap={alice.server_info['max_inflight']}")

    pending = [alice.submit_khop(source, 2) for source in range(8)]
    pending += [bob.submit_khop(source, 2) for source in range(8, 16)]
    pending.append(alice.submit_rpq(0, ".+"))        # reachability
    pending.append(bob.submit_rpq(1, ".{2}"))        # exactly two hops
    answers = [handle.result(timeout=30) for handle in pending]
    total_destinations = sum(len(destinations) for destinations, _ in answers)
    batch_time = answers[0][1]["total_time"]
    print(f"{len(answers)} pipelined queries answered, "
          f"{total_destinations} destinations total; "
          f"first batch simulated at {batch_time * 1e3:.3f} ms")

    # 3. Metrics, twice: the STATS frame (JSON over the protocol) and
    #    the HTTP text endpoint on the same port.
    metrics = alice.stats(timeout=10)
    print(f"\nSTATS frame: answered={metrics['queries_answered']}, "
          f"batches={metrics['scheduler_batches_executed']}, "
          f"epochs published={metrics['epochs_published']}")

    raw = socket.create_connection(("127.0.0.1", server.port), 5)
    raw.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
    scrape = b""
    while chunk := raw.recv(4096):
        scrape += chunk
    raw.close()
    body = scrape.split(b"\r\n\r\n", 1)[1].decode()
    served_lines = [line for line in body.splitlines()
                    if line.startswith("moctopus_queries")]
    print("GET /metrics:")
    for line in served_lines:
        print(f"  {line}")

    # 4. Graceful teardown: clients say GOODBYE, the server drains and
    #    closes its scheduler.
    alice.close()
    bob.close()
    server.close()
    print("\nserver closed; every admitted query was answered first")


if __name__ == "__main__":
    main()
