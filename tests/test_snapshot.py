"""Tests for the CSR storage snapshots and their incremental maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Moctopus, MoctopusConfig
from repro.core.hetero_storage import BYTES_PER_SLOT, HeterogeneousGraphStorage
from repro.core.local_storage import BYTES_PER_ENTRY, LocalGraphStorage
from repro.core.snapshot import (
    DeltaOverlay,
    build_snapshot,
    build_snapshot_reference,
    merge_snapshot,
)
from repro.graph import random_graph
from repro.pim import CostModel


def reference_of(storage: LocalGraphStorage):
    """From-scratch scalar rebuild of ``storage``'s current contents."""
    return build_snapshot_reference(
        list(storage._rows.items()),
        bytes_per_entry=BYTES_PER_ENTRY,
        working_set_bytes=max(storage.storage_bytes, 1),
        count_local=True,
    )


# ----------------------------------------------------------------------
# build_snapshot
# ----------------------------------------------------------------------
def test_build_snapshot_orders_rows_and_counts_locals():
    snapshot = build_snapshot(
        [(5, [(1, 0), (5, 0), (9, 0)]), (1, [(5, 0)]), (9, [])],
        bytes_per_entry=12,
        working_set_bytes=100,
        count_local=True,
    )
    assert snapshot.node_ids.tolist() == [1, 5, 9]
    assert snapshot.degrees.tolist() == [1, 3, 0]
    assert snapshot.num_rows == 3 and snapshot.num_edges == 4
    # Row 1 -> {5}: local.  Row 5 -> {1, 5, 9}: all local.  Row 9 empty.
    assert snapshot.local_counts.tolist() == [1, 3, 0]
    assert snapshot.lookup(np.array([1, 2, 5, 9, 100])).tolist() == [0, -1, 1, 2, -1]


def test_build_snapshot_empty():
    snapshot = build_snapshot([], bytes_per_entry=12, working_set_bytes=1, count_local=True)
    assert snapshot.num_rows == 0 and snapshot.num_edges == 0
    assert snapshot.lookup(np.array([3, 7])).tolist() == [-1, -1]


def test_build_snapshot_trailing_empty_rows():
    snapshot = build_snapshot(
        [(0, [(1, 0)]), (1, []), (2, [])],
        bytes_per_entry=12,
        working_set_bytes=1,
        count_local=True,
    )
    assert snapshot.local_counts.tolist() == [1, 0, 0]


def test_build_snapshot_matches_scalar_reference():
    """The vectorized builder and the per-edge reference agree array-for-array."""
    rows = [
        (5, [(1, 0), (5, 2), (9, 1)]),
        (1, [(5, 3)]),
        (9, []),
        (3, [(77, 0), (3, 1)]),
    ]
    for count_local in (True, False):
        fast = build_snapshot(rows, 12, 100, count_local)
        slow = build_snapshot_reference(rows, 12, 100, count_local)
        assert fast.same_arrays(slow)


# ----------------------------------------------------------------------
# DeltaOverlay + merge_snapshot
# ----------------------------------------------------------------------
def test_overlay_empty_fast_path_returns_same_object():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    first = storage.to_csr()
    # No mutation since the refresh: the cached base comes back as-is.
    assert storage.to_csr() is first
    assert storage.snapshot_builds == 1
    assert storage.snapshot_merges == 0
    assert storage._cache.overlay.is_empty


def test_overlay_delete_of_never_snapshotted_edge():
    """An edge added and deleted between refreshes merges cleanly."""
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    storage.to_csr()
    storage.add_edge(3, 4)   # never in the base
    storage.remove_edge(3, 4)
    snapshot = storage.to_csr()
    assert snapshot.same_arrays(reference_of(storage))
    # Row 3 exists (empty) because add_edge created it.
    assert snapshot.node_ids.tolist() == [1, 3]
    assert snapshot.degrees.tolist() == [1, 0]
    # Deleting an edge that never existed anywhere is a no-op merge-wise.
    storage.remove_edge(77, 78)
    assert storage.to_csr().same_arrays(reference_of(storage))


def test_overlay_row_migrated_then_updated_in_same_batch():
    """A row moved between storages and edited before the next refresh."""
    source = LocalGraphStorage(compact_ratio=10.0)
    target = LocalGraphStorage(compact_ratio=10.0)
    for node in range(8):
        source.add_edge(node, node + 100)
        target.add_edge(node + 50, node + 100)
    source.to_csr()
    target.to_csr()
    # Migrate row 3 and update it on its new home, all within one batch.
    entries = source.remove_row(3)
    target.insert_row(3, entries)
    target.add_edge(3, 999)
    target.remove_edge(3, 103)
    source_snapshot = source.to_csr()
    target_snapshot = target.to_csr()
    assert source.snapshot_merges == 1 and target.snapshot_merges == 1
    assert source_snapshot.same_arrays(reference_of(source))
    assert target_snapshot.same_arrays(reference_of(target))
    assert 3 not in source_snapshot.node_ids.tolist()
    row = target_snapshot.lookup(np.array([3]))[0]
    start, stop = target_snapshot.indptr[row], target_snapshot.indptr[row + 1]
    assert target_snapshot.dsts[start:stop].tolist() == [999]
    # Remove + reinstall on the *same* storage also resolves to live data.
    entries = target.remove_row(3)
    target.insert_row(3, [(42, 7)])
    assert target.to_csr().same_arrays(reference_of(target))


def test_overlay_compaction_threshold_boundary():
    """Dirty rows strictly above ratio x base rows trigger compaction."""
    def fresh(ratio):
        storage = LocalGraphStorage(compact_ratio=ratio)
        for node in range(10):
            storage.add_edge(node, node + 100)
        storage.to_csr()
        return storage

    # 2 dirty rows of 10 == ratio exactly -> splice (strict inequality).
    storage = fresh(0.2)
    storage.add_edge(0, 777)
    storage.add_edge(1, 777)
    storage.to_csr()
    assert storage.snapshot_merges == 1 and storage.snapshot_compactions == 0

    # 3 dirty rows of 10 > 0.2 -> compact to a fresh base.
    storage = fresh(0.2)
    for node in (0, 1, 2):
        storage.add_edge(node, 777)
    snapshot = storage.to_csr()
    assert storage.snapshot_compactions == 1 and storage.snapshot_merges == 0
    assert snapshot.same_arrays(reference_of(storage))

    # ratio 0 always compacts; a huge ratio always splices.
    storage = fresh(0.0)
    storage.add_edge(0, 777)
    storage.to_csr()
    assert storage.snapshot_compactions == 1
    storage = fresh(1e9)
    for node in range(10):
        storage.add_edge(node, 777)
    assert storage.to_csr().same_arrays(reference_of(storage))
    assert storage.snapshot_merges == 1


def test_overlay_records_kinds_and_clears():
    overlay = DeltaOverlay()
    assert overlay.is_empty
    overlay.record_add(3)
    overlay.record_sub(3)
    overlay.record_move_out(5)
    overlay.record_move_in(5)
    assert not overlay.is_empty
    assert overlay.num_edits == 4
    assert (overlay.edge_adds, overlay.edge_subs, overlay.row_moves) == (1, 1, 2)
    assert overlay.dirty_rows().tolist() == [3, 5]
    overlay.clear()
    assert overlay.is_empty and overlay.num_edits == 0
    assert overlay.dirty_rows().tolist() == []


def test_merge_snapshot_into_empty_base():
    base = build_snapshot([], bytes_per_entry=12, working_set_bytes=1, count_local=True)
    rows = {4: [(1, 0)], 2: [(4, 5)]}
    merged = merge_snapshot(
        base,
        np.array([2, 4], dtype=np.int64),
        rows.get,
        bytes_per_entry=12,
        working_set_bytes=50,
        count_local=True,
    )
    reference = build_snapshot(list(rows.items()), 12, 50, True)
    assert merged.same_arrays(reference)
    # Membership changes flip locality of *clean* rows too: 2 -> 4 is
    # local only because row 4 exists.
    assert merged.local_counts.tolist() == [1, 0]


def test_non_incremental_mode_rebuilds_every_refresh():
    storage = LocalGraphStorage(incremental=False)
    storage.add_edge(1, 2)
    first = storage.to_csr()
    assert storage.to_csr() is first  # clean cache still reused
    storage.add_edge(1, 3)
    second = storage.to_csr()
    assert second is not first
    assert storage.snapshot_full_builds == 2 and storage.snapshot_merges == 0
    assert second.same_arrays(reference_of(storage))


def test_hetero_overlay_merges_match_rebuild():
    storage = HeterogeneousGraphStorage(num_pim_modules=4, compact_ratio=10.0)
    for node in range(6):
        for dst in range(3):
            storage.insert_edge(node, 10 * node + dst)
    storage.to_csr()
    storage.insert_edge(2, 999)
    storage.delete_edge(3, 30)
    entries = storage.remove_row(4)
    storage.insert_row(40, entries)
    snapshot = storage.to_csr()
    assert storage.snapshot_merges == 1
    reference = build_snapshot_reference(
        [(node, vector.occupied()) for node, vector in storage._vectors.items()],
        bytes_per_entry=BYTES_PER_SLOT,
        working_set_bytes=max(storage.total_bytes(), 1),
        count_local=False,
    )
    assert snapshot.same_arrays(reference)


# ----------------------------------------------------------------------
# LocalGraphStorage.to_csr
# ----------------------------------------------------------------------
def test_local_storage_snapshot_cached_until_mutation():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    storage.add_edge(2, 3)
    first = storage.to_csr()
    assert storage.to_csr() is first
    assert storage.snapshot_builds == 1

    storage.add_edge(1, 4)
    second = storage.to_csr()
    assert second is not first
    assert storage.snapshot_builds == 2
    # Only source rows live in the segment: rows 1 and 2.
    assert second.degrees.tolist() == [2, 1]


def test_local_storage_snapshot_invalidated_by_every_mutation():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2, label=7)

    storage.to_csr()
    assert storage.remove_edge(1, 2)
    assert storage.to_csr().num_edges == 0

    storage.to_csr()
    storage.insert_row(10, [(11, 0), (12, 0)])
    assert storage.to_csr().lookup(np.array([10])).tolist() == [1]

    storage.to_csr()
    storage.remove_row(10)
    assert storage.to_csr().lookup(np.array([10])).tolist() == [-1]

    storage.to_csr()
    storage.ensure_row(99)
    assert 99 in storage.to_csr().node_ids.tolist()

    # Relabeling an existing edge is a mutation too.
    storage.add_edge(1, 5, label=1)
    snapshot = storage.to_csr()
    storage.add_edge(1, 5, label=2)
    assert storage.to_csr() is not snapshot


def test_local_storage_snapshot_bytes_match_scalar_accounting():
    storage = LocalGraphStorage()
    for dst in range(5):
        storage.add_edge(0, dst)
    snapshot = storage.to_csr()
    assert snapshot.bytes_per_entry == BYTES_PER_ENTRY
    assert int(snapshot.degrees[0]) * snapshot.bytes_per_entry == len(
        storage.next_hops_with_labels(0)
    ) * BYTES_PER_ENTRY
    assert snapshot.working_set_bytes == max(storage.storage_bytes, 1)


# ----------------------------------------------------------------------
# HeterogeneousGraphStorage.to_csr
# ----------------------------------------------------------------------
def test_hetero_snapshot_matches_cols_vector_order():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    storage.insert_edge(3, 10)
    storage.insert_edge(3, 11)
    storage.insert_edge(3, 12)
    storage.delete_edge(3, 11)
    snapshot = storage.to_csr()
    assert snapshot.node_ids.tolist() == [3]
    # Occupied slots in position order — the order a host scan streams.
    expected = [dst for dst, _ in storage.next_hops_with_labels(3)]
    start, end = int(snapshot.indptr[0]), int(snapshot.indptr[1])
    assert snapshot.dsts[start:end].tolist() == expected
    assert snapshot.bytes_per_entry == BYTES_PER_SLOT
    assert snapshot.working_set_bytes == max(storage.total_bytes(), 1)
    # The host never detects misplacement.
    assert snapshot.local_counts.tolist() == [0]


def test_hetero_snapshot_invalidation():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    storage.insert_edge(1, 2)
    first = storage.to_csr()
    assert storage.to_csr() is first

    storage.insert_edge(1, 3)
    assert storage.to_csr() is not first
    assert storage.snapshot_builds == 2

    storage.to_csr()
    storage.delete_edge(1, 2)
    assert storage.to_csr().num_edges == 1

    storage.to_csr()
    storage.insert_row(7, [(8, 0)])
    assert 7 in storage.to_csr().node_ids.tolist()

    storage.to_csr()
    storage.remove_row(7)
    assert 7 not in storage.to_csr().node_ids.tolist()

    # A no-op update (duplicate insert) does not invalidate.
    cached = storage.to_csr()
    outcome = storage.insert_edge(1, 3)
    assert not outcome.applied
    assert storage.to_csr() is cached


# ----------------------------------------------------------------------
# Published snapshots are immutable (regression: handed-out bases used
# to be writable, so any in-place caller mutation silently corrupted the
# cache — and now also every pinned serving epoch sharing the arrays)
# ----------------------------------------------------------------------
def test_published_snapshot_arrays_are_read_only():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    storage.add_edge(1, 3)
    snapshot = storage.to_csr()
    for array in (
        snapshot.node_ids,
        snapshot.indptr,
        snapshot.dsts,
        snapshot.labels,
        snapshot.local_counts,
        snapshot.degrees,
    ):
        assert not array.flags.writeable
    with pytest.raises(ValueError):
        snapshot.dsts[0] = 999
    with pytest.raises(ValueError):
        snapshot.indptr[0] = 7
    # Every refresh strategy publishes frozen arrays: splice...
    storage.add_edge(1, 4)
    assert not storage.to_csr().dsts.flags.writeable
    # ...and compaction / full rebuild.
    compacting = LocalGraphStorage(compact_ratio=0.0)
    compacting.add_edge(5, 6)
    compacting.to_csr()
    compacting.add_edge(7, 8)
    assert compacting.snapshot_compactions == 0
    frozen = compacting.to_csr()
    assert compacting.snapshot_compactions == 1
    assert not frozen.dsts.flags.writeable
    hetero = HeterogeneousGraphStorage(num_pim_modules=4)
    hetero.insert_edge(1, 2)
    with pytest.raises(ValueError):
        hetero.to_csr().dsts[0] = 999


def test_refresh_tolerates_frozen_base_arrays():
    """Splice and compaction both run on ``writeable=False`` bases.

    Published bases are frozen and shared by reference (epochs, the
    checkpoint loader seeds them via ``SnapshotCache.seed_base``), so
    neither :func:`merge_snapshot` nor a compaction may ever write into
    a base array — they must copy before splicing.  The regression
    covers both storages and asserts the refreshed arrays equal a
    from-scratch rebuild and are themselves fresh (not aliases of the
    frozen inputs).
    """
    storage = LocalGraphStorage(compact_ratio=0.25)
    for node in range(12):
        storage.add_edge(node, node + 1)
        storage.add_edge(node, node + 2)
    base = storage.to_csr()
    assert not base.dsts.flags.writeable
    # Small overlay -> splice against the frozen base.
    storage.add_edge(0, 99)
    storage.remove_edge(1, 2)
    spliced = storage.to_csr()
    assert spliced.same_arrays(reference_of(storage))
    assert spliced.dsts.base is not base.dsts
    # Large overlay -> compaction, still with a frozen previous base.
    for node in range(12):
        storage.add_edge(node, node + 50)
    before = storage.snapshot_compactions
    compacted = storage.to_csr()
    assert storage.snapshot_compactions == before + 1
    assert compacted.same_arrays(reference_of(storage))

    hetero = HeterogeneousGraphStorage(num_pim_modules=4, compact_ratio=0.25)
    for node in range(8):
        hetero.insert_edge(node, node + 1)
    hetero.to_csr()
    hetero.delete_edge(0, 1)
    hetero.insert_edge(0, 7)
    merged = hetero.to_csr()
    rebuilt = build_snapshot(
        hetero._all_rows(),
        bytes_per_entry=BYTES_PER_SLOT,
        working_set_bytes=max(hetero.total_bytes(), 1),
        count_local=False,
    )
    assert merged.same_arrays(rebuilt)


def test_seed_base_restores_cache_and_allows_mutation():
    """A storage seeded from checkpoint arrays behaves like the original.

    The first refresh is a cache hit on the seeded (frozen) arrays, and
    later mutations splice/compact against that read-only base without
    raising or diverging from a rebuild.
    """
    original = LocalGraphStorage()
    for node in range(6):
        original.add_edge(node, (node + 1) % 6, label=node % 3)
    frozen = original.to_csr()

    restored = LocalGraphStorage()
    restored.restore_rows(
        {node: original.next_hops_with_labels(node) for node in original.rows()},
        base=frozen,
    )
    # Cache hit: the exact seeded object comes back.
    assert restored.to_csr() is frozen
    assert restored.num_edges == original.num_edges
    assert restored.storage_bytes == original.storage_bytes
    # Mutating after the seed splices against the read-only base.
    restored.add_edge(2, 99)
    restored.remove_edge(0, 1)
    refreshed = restored.to_csr()
    assert refreshed.same_arrays(reference_of(restored))
    # And a forced compaction over the seeded lineage also works.
    for node in range(6):
        restored.add_edge(node, node + 40)
    assert restored.to_csr().same_arrays(reference_of(restored))


def test_restore_rows_requires_empty_storage():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    with pytest.raises(RuntimeError):
        storage.restore_rows({3: [(4, 0)]})
    hetero = HeterogeneousGraphStorage(num_pim_modules=2)
    hetero.insert_edge(1, 2)
    with pytest.raises(RuntimeError):
        hetero.restore_state(
            {"row_ids": [], "capacities": [], "occupied": [], "free_lists": []}
        )


def test_row_entries_reads_pinned_rows():
    storage = LocalGraphStorage()
    storage.add_edge(5, 9, label=2)
    storage.add_edge(5, 1, label=7)
    storage.add_edge(3, 5)
    snapshot = storage.to_csr()
    assert snapshot.row_entries(5) == [(9, 2), (1, 7)]
    assert snapshot.row_entries(3) == [(5, 0)]
    assert snapshot.row_entries(404) == []
    assert snapshot.row_index(3) == 0 and snapshot.row_index(4) == -1


# ----------------------------------------------------------------------
# Epoch retention stress: a pinned epoch's arrays survive compactions,
# merges and hub-promotion migrations bit-for-bit
# ----------------------------------------------------------------------
def _epoch_array_fingerprint(epoch):
    """Copies of every array a pinned epoch exposes."""
    copies = []
    for snapshot in epoch.snapshots:
        copies.append(
            (
                snapshot.node_ids.copy(),
                snapshot.indptr.copy(),
                snapshot.dsts.copy(),
                snapshot.labels.copy(),
                snapshot.local_counts.copy(),
            )
        )
    return copies


def _assert_epoch_unchanged(epoch, fingerprint, context):
    for snapshot, copies in zip(epoch.snapshots, fingerprint):
        node_ids, indptr, dsts, labels, local_counts = copies
        assert np.array_equal(snapshot.node_ids, node_ids), context
        assert np.array_equal(snapshot.indptr, indptr), context
        assert np.array_equal(snapshot.dsts, dsts), context
        assert np.array_equal(snapshot.labels, labels), context
        assert np.array_equal(snapshot.local_counts, local_counts), context
        assert not snapshot.dsts.flags.writeable, context


def test_pinned_epoch_survives_compactions_and_promotions():
    """Hold a session across compaction-triggering churn and hub
    promotions; the pinned epoch must stay bit-identical throughout."""
    graph = random_graph(40, 140, seed=9)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        engine="vectorized",
        high_degree_threshold=8,
        snapshot_compact_ratio=0.1,  # compact aggressively
    )
    system = Moctopus.from_graph(graph, config)
    with system.begin() as session:
        epoch = session._epoch
        fingerprint = _epoch_array_fingerprint(epoch)
        baseline, _ = session.batch_khop(list(range(10)), 2)

        # Broad churn: every round dirties > 10% of most modules' rows,
        # forcing compactions (from-scratch base rebuilds).
        for round_id in range(6):
            edges = [
                (node, 200 + round_id * 50 + node) for node in range(0, 40, 2)
            ]
            system.insert_edges(edges)
            system.delete_edges(edges[::2])
            system.batch_khop(list(range(8)), 2)  # live queries + migrations
        compactions = sum(
            storage.snapshot_compactions
            for storage in system._module_storages
        )
        assert compactions > 0, "churn must actually force compactions"

        # Hub promotion: push one still-module-resident node over the
        # high-degree threshold so its whole row migrates to the host.
        hub = next(
            node
            for node in range(1, 40, 2)
            if system.partition_of(node) not in (None, -1)
        )
        system.insert_edges([(hub, 300 + offset) for offset in range(12)])
        assert system.partition_of(hub) == -1, "hub must promote to host"

        _assert_epoch_unchanged(
            epoch, fingerprint, "pinned epoch mutated under churn"
        )
        replay, _ = session.batch_khop(list(range(10)), 2)
        assert replay.destinations == baseline.destinations
        # The manager retired nothing the session still pins.
        assert system._epochs.pin_count(epoch.epoch_id) == 1
    # After close, the old epoch may retire; new pins get the live state.
    with system.begin() as fresh:
        assert fresh.epoch_id > epoch.epoch_id


def test_epoch_retention_bounds_registry():
    """Unpinned epochs retire past ``epoch_retention``; pinned ones stay."""
    system = Moctopus.from_graph(
        random_graph(20, 60, seed=2),
        MoctopusConfig(cost_model=CostModel(num_modules=4), epoch_retention=2),
    )
    pinned = system.begin()
    pinned_id = pinned.epoch_id
    for round_id in range(6):
        system.insert_edges([(round_id, 100 + round_id)])
        system.current_epoch_id  # force a publish per round
    retained = system._epochs.retained_ids()
    assert len(retained) <= 3  # retention bound + the pinned epoch
    assert pinned_id in retained, "pinned epochs are never evicted"
    pinned.close()
    system.insert_edges([(0, 999)])
    system.current_epoch_id
    assert pinned_id not in system._epochs.retained_ids()


# ----------------------------------------------------------------------
# Derived views: degree histogram, transposed blocks, per-label blocks
# ----------------------------------------------------------------------
def test_degree_histogram_counts_rows_by_out_degree():
    snapshot = build_snapshot(
        [(5, [(1, 0), (5, 0), (9, 0)]), (1, [(5, 0)]), (9, [])],
        bytes_per_entry=12,
        working_set_bytes=100,
        count_local=True,
    )
    histogram = snapshot.degree_histogram()
    assert histogram.tolist() == [1, 1, 0, 1]  # degrees 0, 1 and 3
    assert not histogram.flags.writeable
    assert snapshot.degree_histogram() is histogram  # cached
    empty = build_snapshot(
        [], bytes_per_entry=12, working_set_bytes=1, count_local=True
    )
    assert empty.degree_histogram().tolist() == [0]


def test_transpose_block_groups_in_edges_by_destination():
    snapshot = build_snapshot(
        [(1, [(7, 0), (3, 0)]), (5, [(3, 0)]), (9, [(9, 0)])],
        bytes_per_entry=12,
        working_set_bytes=100,
        count_local=True,
    )
    block = snapshot.transpose_block()
    assert block.dsts.tolist() == [3, 7, 9]
    assert block.indptr.tolist() == [0, 2, 3, 4]
    assert block.num_edges == snapshot.num_edges == 4
    # src_rows are row *indices* into node_ids ([1, 5, 9] -> 0, 1, 2):
    # dst 3 <- rows {1, 5}, dst 7 <- row 1, dst 9 <- row 9.
    assert sorted(block.src_rows[0:2].tolist()) == [0, 1]
    assert block.src_rows[2:3].tolist() == [0]
    assert block.src_rows[3:4].tolist() == [2]
    assert snapshot.transpose_block() is block  # cached
    assert not block.dsts.flags.writeable


def test_transpose_block_round_trips_every_edge():
    storage = LocalGraphStorage()
    graph = random_graph(40, 200, seed=13)
    for src, dst in graph.edges():
        storage.add_edge(src, dst)
    snapshot = storage.to_csr()
    block = snapshot.transpose_block()
    pulled = set()
    for position, dst in enumerate(block.dsts.tolist()):
        for edge in range(block.indptr[position], block.indptr[position + 1]):
            src = int(snapshot.node_ids[block.src_rows[edge]])
            pulled.add((src, dst))
    assert pulled == set(graph.edges())


def test_label_blocks_partition_edges_by_label():
    snapshot = build_snapshot(
        [(0, [(1, 1), (2, 2)]), (1, [(2, 1)]), (2, [])],
        bytes_per_entry=12,
        working_set_bytes=100,
        count_local=True,
    )
    blocks = snapshot.label_blocks()
    assert sorted(blocks) == [1, 2]
    assert blocks[1].dsts.tolist() == [1, 2]
    assert blocks[1].num_edges == 2
    assert blocks[2].dsts.tolist() == [2]
    assert blocks[2].src_rows.tolist() == [0]
    assert sum(block.num_edges for block in blocks.values()) == snapshot.num_edges
    assert snapshot.label_blocks() is blocks  # cached
    empty = build_snapshot(
        [], bytes_per_entry=12, working_set_bytes=1, count_local=True
    )
    assert empty.label_blocks() == {}


def test_derived_views_refresh_with_the_snapshot():
    """Mutation replaces the snapshot object, so stale cached views are
    unreachable rather than invalidated in place."""
    storage = LocalGraphStorage()
    storage.add_edge(0, 1)
    before = storage.to_csr()
    block_before = before.transpose_block()
    histogram_before = before.degree_histogram()
    storage.add_edge(0, 2)
    after = storage.to_csr()
    assert after is not before
    assert after.transpose_block() is not block_before
    assert after.degree_histogram() is not histogram_before
    assert after.transpose_block().dsts.tolist() == [1, 2]
    assert before.transpose_block().dsts.tolist() == [1]  # old view intact


def test_epoch_degree_histogram_sums_pinned_snapshots():
    system = Moctopus.from_graph(
        random_graph(30, 120, seed=9),
        MoctopusConfig(cost_model=CostModel(num_modules=4)),
    )
    epoch = system._epochs.current()
    histogram = epoch.degree_histogram()
    parts = [snapshot.degree_histogram() for snapshot in epoch.snapshots]
    expected = np.zeros(max(len(part) for part in parts), dtype=np.int64)
    for part in parts:
        expected[: len(part)] += part
    assert histogram.tolist() == expected.tolist()
    assert int(histogram.sum()) == sum(
        snapshot.num_rows for snapshot in epoch.snapshots
    )
    assert not histogram.flags.writeable
    assert epoch.degree_histogram() is histogram  # cached
