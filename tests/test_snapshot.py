"""Tests for the CSR storage snapshots and their dirty-flag invalidation."""

from __future__ import annotations

import numpy as np

from repro.core.hetero_storage import BYTES_PER_SLOT, HeterogeneousGraphStorage
from repro.core.local_storage import BYTES_PER_ENTRY, LocalGraphStorage
from repro.core.snapshot import build_snapshot


# ----------------------------------------------------------------------
# build_snapshot
# ----------------------------------------------------------------------
def test_build_snapshot_orders_rows_and_counts_locals():
    snapshot = build_snapshot(
        [(5, [(1, 0), (5, 0), (9, 0)]), (1, [(5, 0)]), (9, [])],
        bytes_per_entry=12,
        working_set_bytes=100,
        count_local=True,
    )
    assert snapshot.node_ids.tolist() == [1, 5, 9]
    assert snapshot.degrees.tolist() == [1, 3, 0]
    assert snapshot.num_rows == 3 and snapshot.num_edges == 4
    # Row 1 -> {5}: local.  Row 5 -> {1, 5, 9}: all local.  Row 9 empty.
    assert snapshot.local_counts.tolist() == [1, 3, 0]
    assert snapshot.lookup(np.array([1, 2, 5, 9, 100])).tolist() == [0, -1, 1, 2, -1]


def test_build_snapshot_empty():
    snapshot = build_snapshot([], bytes_per_entry=12, working_set_bytes=1, count_local=True)
    assert snapshot.num_rows == 0 and snapshot.num_edges == 0
    assert snapshot.lookup(np.array([3, 7])).tolist() == [-1, -1]


def test_build_snapshot_trailing_empty_rows():
    snapshot = build_snapshot(
        [(0, [(1, 0)]), (1, []), (2, [])],
        bytes_per_entry=12,
        working_set_bytes=1,
        count_local=True,
    )
    assert snapshot.local_counts.tolist() == [1, 0, 0]


# ----------------------------------------------------------------------
# LocalGraphStorage.to_csr
# ----------------------------------------------------------------------
def test_local_storage_snapshot_cached_until_mutation():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    storage.add_edge(2, 3)
    first = storage.to_csr()
    assert storage.to_csr() is first
    assert storage.snapshot_builds == 1

    storage.add_edge(1, 4)
    second = storage.to_csr()
    assert second is not first
    assert storage.snapshot_builds == 2
    # Only source rows live in the segment: rows 1 and 2.
    assert second.degrees.tolist() == [2, 1]


def test_local_storage_snapshot_invalidated_by_every_mutation():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2, label=7)

    storage.to_csr()
    assert storage.remove_edge(1, 2)
    assert storage.to_csr().num_edges == 0

    storage.to_csr()
    storage.insert_row(10, [(11, 0), (12, 0)])
    assert storage.to_csr().lookup(np.array([10])).tolist() == [1]

    storage.to_csr()
    storage.remove_row(10)
    assert storage.to_csr().lookup(np.array([10])).tolist() == [-1]

    storage.to_csr()
    storage.ensure_row(99)
    assert 99 in storage.to_csr().node_ids.tolist()

    # Relabeling an existing edge is a mutation too.
    storage.add_edge(1, 5, label=1)
    snapshot = storage.to_csr()
    storage.add_edge(1, 5, label=2)
    assert storage.to_csr() is not snapshot


def test_local_storage_snapshot_bytes_match_scalar_accounting():
    storage = LocalGraphStorage()
    for dst in range(5):
        storage.add_edge(0, dst)
    snapshot = storage.to_csr()
    assert snapshot.bytes_per_entry == BYTES_PER_ENTRY
    assert int(snapshot.degrees[0]) * snapshot.bytes_per_entry == len(
        storage.next_hops_with_labels(0)
    ) * BYTES_PER_ENTRY
    assert snapshot.working_set_bytes == max(storage.storage_bytes, 1)


# ----------------------------------------------------------------------
# HeterogeneousGraphStorage.to_csr
# ----------------------------------------------------------------------
def test_hetero_snapshot_matches_cols_vector_order():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    storage.insert_edge(3, 10)
    storage.insert_edge(3, 11)
    storage.insert_edge(3, 12)
    storage.delete_edge(3, 11)
    snapshot = storage.to_csr()
    assert snapshot.node_ids.tolist() == [3]
    # Occupied slots in position order — the order a host scan streams.
    expected = [dst for dst, _ in storage.next_hops_with_labels(3)]
    start, end = int(snapshot.indptr[0]), int(snapshot.indptr[1])
    assert snapshot.dsts[start:end].tolist() == expected
    assert snapshot.bytes_per_entry == BYTES_PER_SLOT
    assert snapshot.working_set_bytes == max(storage.total_bytes(), 1)
    # The host never detects misplacement.
    assert snapshot.local_counts.tolist() == [0]


def test_hetero_snapshot_invalidation():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    storage.insert_edge(1, 2)
    first = storage.to_csr()
    assert storage.to_csr() is first

    storage.insert_edge(1, 3)
    assert storage.to_csr() is not first
    assert storage.snapshot_builds == 2

    storage.to_csr()
    storage.delete_edge(1, 2)
    assert storage.to_csr().num_edges == 1

    storage.to_csr()
    storage.insert_row(7, [(8, 0)])
    assert 7 in storage.to_csr().node_ids.tolist()

    storage.to_csr()
    storage.remove_row(7)
    assert 7 not in storage.to_csr().node_ids.tolist()

    # A no-op update (duplicate insert) does not invalidate.
    cached = storage.to_csr()
    outcome = storage.insert_edge(1, 3)
    assert not outcome.applied
    assert storage.to_csr() is cached
