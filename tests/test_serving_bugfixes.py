"""Regression tests of the serving-layer bugfix sweep.

Each test here was red on the code it now guards:

* result-cache hits used to run their O(result-size) deep copy *inside*
  ``_cache_lock``, serializing every concurrent reader behind the
  slowest copy (and blocking writers);
* a failed coalesced batch used to fan the *same* exception instance to
  every waiter, so concurrent ``raise`` statements raced on the shared
  ``__traceback__``;
* plus the ``serve_linger`` knob, the ``submit()``/``close()`` race and
  the abandoned-``outcome(timeout=...)`` contract.
"""

from __future__ import annotations

import copy as real_copy
import threading
import time
import types

import pytest

from repro.core import Moctopus, MoctopusConfig
from repro.core import query_processor as qp_module
from repro.graph import random_graph
from repro.pim import CostModel
from repro.rpq import KHopQuery, RPQuery, evaluate_rpq
from repro.rpq.regex import RegexSyntaxError
from repro.pim.system import PIMSystem
from repro.serve import BatchScheduler
from repro.serve.epoch import EpochView
from repro.serve.scheduler import ServingFuture

LABEL_NAMES = {1: "a", 2: "b", 3: "c"}


def build_system(**config_kwargs) -> Moctopus:
    graph = random_graph(26, 90, seed=11)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        high_degree_threshold=8,
        **config_kwargs,
    )
    return Moctopus.from_graph(graph, config, label_names=LABEL_NAMES)


# ----------------------------------------------------------------------
# Bugfix 1: cache hits must not serialize behind the cache lock
# ----------------------------------------------------------------------
def test_concurrent_cache_hits_do_not_serialize(monkeypatch):
    """Two threads hitting the same cache entry must copy concurrently.

    The copies rendezvous on a barrier *inside* ``deepcopy``: if either
    thread still held ``_cache_lock`` while copying (the old bug), the
    other could never reach the barrier and the wait would break.
    """
    system = build_system()
    qp = system._query_processor
    epoch = EpochView(
        system._epochs.current(), PIMSystem(system.config.cost_model)
    )
    query = KHopQuery(hops=2, sources=(0, 1))
    expected = qp.execute_on_view(query, epoch)  # prime the cache
    barrier = threading.Barrier(2)
    gate_open = threading.Event()

    def instrumented_deepcopy(value):
        if gate_open.is_set():
            barrier.wait(timeout=5)  # both copiers must be in here at once
        return real_copy.deepcopy(value)

    monkeypatch.setattr(
        qp_module,
        "copy",
        types.SimpleNamespace(deepcopy=instrumented_deepcopy),
    )
    results = {}
    errors = []

    def hit(name):
        try:
            results[name] = qp.execute_on_view(query, epoch)
        except BaseException as error:  # noqa: BLE001 - recorded for assert
            errors.append(error)

    gate_open.set()
    threads = [
        threading.Thread(target=hit, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert not errors, f"concurrent cache hits failed: {errors!r}"
    for result, stats in results.values():
        assert result.destinations == expected[0].destinations
    hits = qp.cache_stats.counters.get("result_cache_hits", 0)
    assert hits >= 2


def test_cache_hit_still_refreshes_lru_order():
    """Moving the copy out of the lock must not drop the LRU touch."""
    system = build_system(result_cache_size=4)
    qp = system._query_processor
    epoch = EpochView(
        system._epochs.current(), PIMSystem(system.config.cost_model)
    )
    old = KHopQuery(hops=1, sources=(0,))
    newer = KHopQuery(hops=2, sources=(0,))
    qp.execute_on_view(old, epoch)
    qp.execute_on_view(newer, epoch)
    order_before = list(qp._result_cache)
    assert len(order_before) == 2
    qp.execute_on_view(old, epoch)  # cache hit must refresh recency
    order_after = list(qp._result_cache)
    assert order_after == [order_before[1], order_before[0]]


# ----------------------------------------------------------------------
# Bugfix 2: failed batches fan out per-waiter exception copies
# ----------------------------------------------------------------------
def test_failed_group_raises_distinct_instances_per_waiter():
    original = RuntimeError("batch exploded")
    future = ServingFuture(0, hops=2)
    future._fail(original)
    raised = []
    raised_lock = threading.Lock()

    def wait():
        try:
            future.outcome(timeout=5)
        except RuntimeError as error:
            with raised_lock:
                raised.append(error)

    threads = [threading.Thread(target=wait) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert len(raised) == 6
    assert all(str(error) == "batch exploded" for error in raised)
    # Each waiter got its own replica, chained to the shared original —
    # whose traceback no concurrent re-raise ever mutated.
    assert len({id(error) for error in raised}) == 6
    assert all(error is not original for error in raised)
    assert all(error.__cause__ is original for error in raised)
    assert original.__traceback__ is None


def test_scheduler_failure_fans_out_distinct_instances():
    system = build_system()
    boom = ValueError("engine fault injected")

    def exploding_execute(query, view, engine=None):
        raise boom

    system._query_processor.execute_on_view = exploding_execute
    with BatchScheduler(system, autostart=False, batch_window=8) as scheduler:
        futures = [scheduler.submit(source, 2) for source in range(3)]
        scheduler._worker.start()
        raised = []
        for future in futures:
            with pytest.raises(ValueError) as excinfo:
                future.outcome(timeout=10)
            raised.append(excinfo.value)
    assert len({id(error) for error in raised}) == 3
    assert all(error.__cause__ is boom for error in raised)
    assert all(str(error) == str(boom) for error in raised)


def test_uncopyable_error_falls_back_to_shared_instance():
    class Stubborn(Exception):
        def __init__(self, a, b):  # copy.copy? works via __reduce__...
            super().__init__(a, b)
            self.a = a
            self.b = b

        def __copy__(self):
            raise TypeError("I refuse to be copied")

    original = Stubborn(1, 2)
    future = ServingFuture(0, hops=1)
    future._fail(original)
    with pytest.raises(Stubborn) as excinfo:
        future.result(timeout=5)
    assert excinfo.value is original  # fallback: never mask the failure


# ----------------------------------------------------------------------
# serve_linger knob
# ----------------------------------------------------------------------
def test_serve_linger_validated_and_plumbed():
    with pytest.raises(ValueError):
        MoctopusConfig(serve_linger=-0.1)
    system = build_system(serve_linger=0.02)
    with system.serve() as scheduler:
        assert scheduler._linger == pytest.approx(0.02)
        assert scheduler.query(0, 2)  # still answers queries
    with system.serve(linger=0.0) as scheduler:
        assert scheduler._linger == 0.0
    with pytest.raises(ValueError):
        BatchScheduler(system, linger=-1.0)


def test_serve_linger_fills_window_across_stragglers():
    system = build_system(serve_linger=0.2)
    with system.serve(batch_window=2) as scheduler:
        first = scheduler.submit(0, 2)
        time.sleep(0.05)  # arrive inside the linger window
        second = scheduler.submit(1, 2)
        first.outcome(timeout=10)
        second.outcome(timeout=10)
        # The straggler rode the lingering window: one coalesced batch.
        assert scheduler.batches_executed == 1
        assert scheduler.queries_served == 2


# ----------------------------------------------------------------------
# submit()/close() race and abandoned-timeout contract
# ----------------------------------------------------------------------
def test_submit_close_race_fails_future_instead_of_hanging():
    # close() lands *during* submit(), after the closed-flag check but
    # before the enqueue: the stranded future must fail, not hang.
    system = build_system()
    scheduler = BatchScheduler(system, autostart=False)
    real_put = scheduler._queue.put

    def closing_put(item, *args, **kwargs):
        scheduler._queue.put = real_put  # close() itself may enqueue
        scheduler.close()
        return real_put(item, *args, **kwargs)

    scheduler._queue.put = closing_put
    future = scheduler.submit(0, 2)
    with pytest.raises(RuntimeError):
        future.result(timeout=5)


def test_close_then_submit_refuses_cleanly():
    system = build_system()
    scheduler = BatchScheduler(system, autostart=False)
    future = scheduler.submit(0, 2)  # admitted before close
    scheduler.close()
    with pytest.raises(RuntimeError):
        future.result(timeout=5)  # stranded future was failed, not lost
    with pytest.raises(RuntimeError):
        scheduler.submit(1, 2)


def test_outcome_timeout_abandons_then_late_resolve_is_clean():
    future = ServingFuture(3, hops=2)
    with pytest.raises(TimeoutError):
        future.outcome(timeout=0.01)
    # The batch lands *after* the waiter gave up: nothing crashes, the
    # outcome is recorded, and any later waiter still gets it.
    from repro.pim.stats import ExecutionStats

    future._resolve({7, 8}, ExecutionStats())
    assert future.done()
    destinations, stats = future.outcome(timeout=1)
    assert destinations == {7, 8}
    assert future.result(timeout=1) == {7, 8}


def test_add_done_callback_immediate_and_deferred():
    from repro.pim.stats import ExecutionStats

    deferred_calls = []
    future = ServingFuture(0, hops=1)
    future.add_done_callback(deferred_calls.append)
    assert deferred_calls == []  # not settled yet
    future._resolve({1}, ExecutionStats())
    assert deferred_calls == [future]
    immediate_calls = []
    future.add_done_callback(immediate_calls.append)  # already settled
    assert immediate_calls == [future]
    failed = ServingFuture(0, hops=1)
    failed._fail(RuntimeError("x"))
    failed_calls = []
    failed.add_done_callback(failed_calls.append)
    assert failed_calls == [failed]


# ----------------------------------------------------------------------
# submit_rpq: expression groups through the scheduler
# ----------------------------------------------------------------------
def test_submit_rpq_matches_oracle_and_coalesces():
    system = build_system()
    oracle_graph = system.graph
    with BatchScheduler(system, autostart=False, batch_window=8) as scheduler:
        khop_futures = [scheduler.submit(source, 2) for source in (0, 1)]
        rpq_futures = [
            scheduler.submit_rpq(source, ".+") for source in (2, 3)
        ]
        scheduler._worker.start()
        for source, future in zip((2, 3), rpq_futures):
            destinations, stats = future.outcome(timeout=10)
            oracle = evaluate_rpq(
                oracle_graph, RPQuery(".+", [source]), label_names=LABEL_NAMES
            )
            assert destinations == set(oracle.destinations_of(0))
            assert stats.counters["coalesced_queries"] == 2
        for future in khop_futures:
            future.outcome(timeout=10)
        # One window, two groups: ("khop", 2) and ("rpq", ".+").
        assert scheduler.batches_executed == 2
        assert scheduler.queries_served == 4


def test_submit_rpq_rejects_bad_expression_eagerly():
    system = build_system()
    with BatchScheduler(system, autostart=False) as scheduler:
        with pytest.raises(RegexSyntaxError):
            scheduler.submit_rpq(0, "(((")
        assert scheduler.pending == 0  # nothing was admitted


def test_mixed_wildcard_rpq_group_matches_khop_semantics():
    # ".{2}" through the rpq path must equal hops=2 exact-length
    # semantics from the khop path on the same epoch.
    system = build_system()
    with system.serve() as scheduler:
        khop = scheduler.submit(0, 2).result(timeout=10)
        rpq = scheduler.submit_rpq(0, ".{2}").result(timeout=10)
    assert rpq == khop
