"""Tests for NFA/DFA construction over edge labels."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import build_dfa, build_nfa, determinize, parse_path_expression


CASES = {
    "a": {("a",): True, ("b",): False, (): False},
    "a/b": {("a", "b"): True, ("a", "a"): False, ("a",): False},
    "a|b": {("a",): True, ("b",): True, ("c",): False},
    "a*": {(): True, ("a",): True, ("a", "a", "a"): True, ("b",): False},
    "a+": {(): False, ("a",): True, ("a", "a"): True},
    "a?": {(): True, ("a",): True, ("a", "a"): False},
    "a{2,3}": {("a",): False, ("a", "a"): True, ("a", "a", "a"): True,
               ("a", "a", "a", "a"): False},
    "(a/b)+": {("a", "b"): True, ("a", "b", "a", "b"): True, ("a",): False,
               ("a", "b", "a"): False},
    ". /b": {("x", "b"): True, ("b", "a"): False},
    ".{2}": {("x", "y"): True, ("x",): False, ("x", "y", "z"): False},
    "a/(b|c)/d": {("a", "b", "d"): True, ("a", "c", "d"): True,
                  ("a", "d", "d"): False},
}


@pytest.mark.parametrize("expression", sorted(CASES))
def test_nfa_matches_expected_strings(expression):
    nfa = build_nfa(expression)
    for labels, expected in CASES[expression].items():
        assert nfa.matches(list(labels)) is expected, (expression, labels)


@pytest.mark.parametrize("expression", sorted(CASES))
def test_dfa_agrees_with_nfa_on_expected_strings(expression):
    dfa = build_dfa(expression)
    for labels, expected in CASES[expression].items():
        assert dfa.matches(list(labels)) is expected, (expression, labels)


def test_nfa_structure_basics():
    nfa = build_nfa("a|b")
    assert nfa.num_states >= 4
    assert nfa.alphabet() == {"a", "b"}
    assert nfa.is_accepting(nfa.epsilon_closure({nfa.accept}))


def test_dfa_wildcard_default_transitions():
    dfa = build_dfa(".{2}")
    assert dfa.matches(["anything", "else"])
    assert not dfa.matches(["one"])
    assert dfa.num_states >= 3


def test_determinize_preserves_acceptance_of_empty_string():
    nfa = build_nfa("a*")
    dfa = determinize(nfa)
    assert dfa.is_accepting(dfa.start)


def test_build_from_ast_node():
    ast = parse_path_expression("a/b")
    nfa = build_nfa(ast)
    assert nfa.matches(["a", "b"])


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(sorted(CASES)),
    st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=5),
)
def test_dfa_and_nfa_always_agree(expression, labels):
    """Subset construction must preserve the recognised language."""
    nfa = build_nfa(expression)
    dfa = build_dfa(expression)
    assert nfa.matches(labels) == dfa.matches(labels)


def test_exhaustive_agreement_over_short_strings():
    alphabet = ["a", "b", "c"]
    for expression in ("a/(b|c)", "(a|b)*", "a{1,2}/c"):
        nfa = build_nfa(expression)
        dfa = build_dfa(expression)
        for length in range(0, 4):
            for labels in itertools.product(alphabet, repeat=length):
                assert nfa.matches(list(labels)) == dfa.matches(list(labels)), (
                    expression,
                    labels,
                )
