"""Tests for NFA/DFA construction over edge labels."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpq import build_dfa, build_nfa, determinize, parse_path_expression


CASES = {
    "a": {("a",): True, ("b",): False, (): False},
    "a/b": {("a", "b"): True, ("a", "a"): False, ("a",): False},
    "a|b": {("a",): True, ("b",): True, ("c",): False},
    "a*": {(): True, ("a",): True, ("a", "a", "a"): True, ("b",): False},
    "a+": {(): False, ("a",): True, ("a", "a"): True},
    "a?": {(): True, ("a",): True, ("a", "a"): False},
    "a{2,3}": {("a",): False, ("a", "a"): True, ("a", "a", "a"): True,
               ("a", "a", "a", "a"): False},
    "(a/b)+": {("a", "b"): True, ("a", "b", "a", "b"): True, ("a",): False,
               ("a", "b", "a"): False},
    ". /b": {("x", "b"): True, ("b", "a"): False},
    ".{2}": {("x", "y"): True, ("x",): False, ("x", "y", "z"): False},
    "a/(b|c)/d": {("a", "b", "d"): True, ("a", "c", "d"): True,
                  ("a", "d", "d"): False},
}


@pytest.mark.parametrize("expression", sorted(CASES))
def test_nfa_matches_expected_strings(expression):
    nfa = build_nfa(expression)
    for labels, expected in CASES[expression].items():
        assert nfa.matches(list(labels)) is expected, (expression, labels)


@pytest.mark.parametrize("expression", sorted(CASES))
def test_dfa_agrees_with_nfa_on_expected_strings(expression):
    dfa = build_dfa(expression)
    for labels, expected in CASES[expression].items():
        assert dfa.matches(list(labels)) is expected, (expression, labels)


def test_nfa_structure_basics():
    nfa = build_nfa("a|b")
    assert nfa.num_states >= 4
    assert nfa.alphabet() == {"a", "b"}
    assert nfa.is_accepting(nfa.epsilon_closure({nfa.accept}))


def test_dfa_wildcard_default_transitions():
    dfa = build_dfa(".{2}")
    assert dfa.matches(["anything", "else"])
    assert not dfa.matches(["one"])
    assert dfa.num_states >= 3


def test_determinize_preserves_acceptance_of_empty_string():
    nfa = build_nfa("a*")
    dfa = determinize(nfa)
    assert dfa.is_accepting(dfa.start)


def test_build_from_ast_node():
    ast = parse_path_expression("a/b")
    nfa = build_nfa(ast)
    assert nfa.matches(["a", "b"])


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(sorted(CASES)),
    st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=5),
)
def test_dfa_and_nfa_always_agree(expression, labels):
    """Subset construction must preserve the recognised language."""
    nfa = build_nfa(expression)
    dfa = build_dfa(expression)
    assert nfa.matches(labels) == dfa.matches(labels)


def test_exhaustive_agreement_over_short_strings():
    alphabet = ["a", "b", "c"]
    for expression in ("a/(b|c)", "(a|b)*", "a{1,2}/c"):
        nfa = build_nfa(expression)
        dfa = build_dfa(expression)
        for length in range(0, 4):
            for labels in itertools.product(alphabet, repeat=length):
                assert nfa.matches(list(labels)) == dfa.matches(list(labels)), (
                    expression,
                    labels,
                )


def test_minimize_reduces_equivalent_suffix_states():
    from repro.rpq import minimize_dfa

    # ``a/c | b/c`` determinizes into separate mid states for the ``a``
    # and ``b`` branches even though both only await a final ``c``;
    # Moore refinement must merge them.
    unminimized = determinize(build_nfa("a/c|b/c"))
    minimized = minimize_dfa(unminimized)
    assert minimized.num_states < unminimized.num_states
    assert minimized.num_states == 3


def test_minimize_preserves_language():
    from repro.rpq import minimize_dfa

    alphabet = ["a", "b", "c"]
    expressions = (
        "a/c|b/c", "(a|b)*", "a{1,3}", "a/(b|c)/d", ".{2}", "a+|b+",
        "(a/b)+", "a?", "_/c",
    )
    for expression in expressions:
        unminimized = determinize(build_nfa(expression))
        minimized = minimize_dfa(unminimized)
        for length in range(0, 5):
            for labels in itertools.product(alphabet, repeat=length):
                assert unminimized.matches(list(labels)) == minimized.matches(
                    list(labels)
                ), (expression, labels)


def test_build_dfa_returns_minimized_automaton():
    from repro.rpq import minimize_dfa

    dfa = build_dfa("a/c|b/c")
    assert dfa.num_states == minimize_dfa(dfa).num_states == 3


def test_minimize_drops_unreachable_states():
    from repro.rpq import DFA, minimize_dfa

    dfa = DFA(
        start=0,
        accepting={1, 9},
        transitions={0: {"a": 1}, 5: {"b": 9}},
    )
    minimized = minimize_dfa(dfa)
    assert minimized.num_states == 2
    assert minimized.matches(["a"])
    assert not minimized.matches(["b"])
