"""Tests for edge-list IO and update streams."""

from __future__ import annotations

import pytest

from repro.graph import (
    DiGraph,
    EdgeStreamReplayer,
    UpdateKind,
    UpdateStream,
    iter_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.graph.io import write_edges


def test_edge_list_roundtrip(tmp_path):
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (3, 1)])
    path = tmp_path / "graph.txt"
    written = write_edge_list(graph, path, header="test graph")
    assert written == 4
    loaded = read_edge_list(path)
    assert sorted(loaded.edges()) == sorted(graph.edges())
    text = path.read_text()
    assert text.startswith("# test graph")


def test_iter_edge_list_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text("# SNAP header\n\n0\t1\n1 2 999\n# trailing comment\n2 0\n")
    assert list(iter_edge_list(path)) == [(0, 1), (1, 2), (2, 0)]


def test_iter_edge_list_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("42\n")
    with pytest.raises(ValueError):
        list(iter_edge_list(path))


def test_write_edges_plain(tmp_path):
    path = tmp_path / "edges.txt"
    count = write_edges([(1, 2), (3, 4)], path)
    assert count == 2
    assert list(iter_edge_list(path)) == [(1, 2), (3, 4)]


def test_insertion_batch_avoids_existing_edges():
    graph = DiGraph.from_edges([(i, (i + 1) % 50) for i in range(50)])
    stream = UpdateStream(graph, seed=1)
    batch = stream.insertion_batch(40)
    assert len(batch) == 40
    for op in batch:
        assert op.kind is UpdateKind.INSERT
        assert not graph.has_edge(op.src, op.dst)
        assert op.src != op.dst


def test_insertion_batch_requires_nonempty_graph():
    with pytest.raises(ValueError):
        UpdateStream(DiGraph()).insertion_batch(4)


def test_deletion_batch_samples_existing_edges():
    graph = DiGraph.from_edges([(i, (i + 1) % 30) for i in range(30)])
    stream = UpdateStream(graph, seed=2)
    batch = stream.deletion_batch(10)
    assert len(batch) == 10
    assert len({op.edge for op in batch}) == 10
    for op in batch:
        assert op.kind is UpdateKind.DELETE
        assert graph.has_edge(op.src, op.dst)


def test_deletion_batch_is_capped_at_edge_count():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    batch = UpdateStream(graph, seed=3).deletion_batch(10)
    assert len(batch) == 2


def test_mixed_batch_composition():
    graph = DiGraph.from_edges([(i, (i + 1) % 40) for i in range(40)])
    stream = UpdateStream(graph, seed=4)
    batch = stream.mixed_batch(20, insert_fraction=0.5)
    kinds = [op.kind for op in batch]
    assert kinds.count(UpdateKind.INSERT) == 10
    assert kinds.count(UpdateKind.DELETE) == 10
    with pytest.raises(ValueError):
        stream.mixed_batch(10, insert_fraction=1.5)


def test_update_stream_is_deterministic():
    graph = DiGraph.from_edges([(i, (i + 1) % 40) for i in range(40)])
    a = UpdateStream(graph, seed=5).insertion_batch(8)
    b = UpdateStream(graph, seed=5).insertion_batch(8)
    assert [op.edge for op in a] == [op.edge for op in b]


def test_edge_stream_replayer_preserves_or_shuffles_order():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
    replayer = EdgeStreamReplayer.from_graph(graph)
    assert [op.edge for op in replayer] == list(graph.edges())
    assert len(replayer) == 4
    shuffled = EdgeStreamReplayer.from_graph(graph, shuffle_seed=7)
    assert sorted(shuffled.edges()) == sorted(graph.edges())
