"""Durability suite: WAL + checkpoint + recovery, proven by fault injection.

The headline test is the **crash matrix**: one deterministic workload
(bulk load, labelled mixed update batches, query+maintenance passes,
checkpoints) is killed at every durable write boundary — before, midway
through, and right after each WAL record and each checkpoint file — and
after every kill ``Moctopus.recover()`` must produce a system
bit-identical to an uncrashed reference at the corresponding durable
prefix: same CSR snapshot arrays, same owner table, same counters.  The
recovered system then replays the rest of the workload and must land on
the uncrashed reference's final state, answer the same queries with the
same per-operation statistics on both engines, and agree with the
pure-python :class:`tests.model.ReferenceModel` oracle.

Around the matrix sit the WAL edge cases (empty log, checkpoint-only
recovery, torn final record, duplicate segment replay, corruption and
gap detection), the checkpoint lifecycle (daemon liveness, retention,
atomicity), and a hypothesis stateful machine interleaving
apply/checkpoint/crash/recover/query against the oracle on both
engines.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.core import Moctopus, MoctopusConfig
from repro.durability import (
    CorruptWalError,
    DurabilityController,
    WalGapError,
    latest_checkpoint,
    wal_directory,
)
from repro.durability.checkpoint import CheckpointError
from repro.durability.wal import list_segments, scan_wal
from repro.graph import DiGraph, power_law_graph
from repro.graph.stream import UpdateKind, UpdateOp, UpdateStream
from repro.pim import CostModel

from faultinject import (
    TEAR_MODES,
    FaultInjector,
    SimulatedCrash,
    assert_fingerprints_equal,
    assert_stats_equal,
    fingerprint,
    resume_index,
    run_durable,
    run_reference,
    run_step,
)
from model import ReferenceModel

ENGINES = ("python", "vectorized", "matrix")


def _config(tmp_path=None, engine="python", **overrides):
    defaults = dict(
        cost_model=CostModel(num_modules=4),
        engine=engine,
        durability_dir=str(tmp_path) if tmp_path is not None else None,
        # Tiny segments so the matrix workload spans several files and
        # recovery exercises rotation + multi-segment scans.
        wal_segment_bytes=2048,
        # The daemon is exercised by its own liveness test; the matrix
        # checkpoints explicitly so its write sequence is deterministic.
        checkpoint_interval_batches=0,
    )
    defaults.update(overrides)
    return MoctopusConfig(**defaults)


def _workload(seed=7):
    """The deterministic crash-matrix workload (graph + scripted steps).

    Besides generic mixed batches, the script deliberately churns the
    *host-resident* hub rows after each checkpoint — deletes punch holes
    into their ``cols_vector`` free lists and the following inserts
    refill them, so any restore that loses slot positions, capacities or
    free-list order shifts the host snapshot's entry order and fails the
    bit-identity assertions.
    """
    graph = power_law_graph(num_nodes=90, edges_per_node=3, skew=0.85, seed=seed)
    stream = UpdateStream(graph, seed=seed + 1)
    hubs = sorted(graph.high_degree_nodes(16))[:2]
    assert hubs, "workload graph must contain host-resident hubs"
    # A PIM-resident node close to the high-degree threshold: the edges
    # inserted *after* the first checkpoint only push it over when the
    # recovered partitioner still remembers the degree it had observed
    # before — a restore that loses degree counters skips the promotion
    # and fails the owner-table assertions.
    promo = next(
        node
        for node in sorted(graph.nodes())
        if node not in hubs and 10 <= graph.out_degree(node) <= 14
    )
    promo_inserts = [
        UpdateOp(UpdateKind.INSERT, promo, 2000 + extra) for extra in range(7)
    ]

    def hub_churn(offset):
        ops = []
        for hub in hubs:
            victims = graph.successors(hub)[offset : offset + 2]
            ops.extend(UpdateOp(UpdateKind.DELETE, hub, dst) for dst in victims)
            ops.extend(
                UpdateOp(UpdateKind.INSERT, hub, 1000 + offset * 10 + extra)
                for extra in range(3)
            )
        return ops

    steps = []
    steps.append(("batch", stream.mixed_batch(24), None))
    steps.append(("qm", [0, 1, 2, 3, 4, 5], 2))
    inserts = stream.insertion_batch(10)
    steps.append(("batch", inserts, [(index % 3) + 1 for index in range(len(inserts))]))
    steps.append(("checkpoint",))
    steps.append(("batch", hub_churn(0) + promo_inserts, None))
    steps.append(("batch", stream.mixed_batch(24), None))
    steps.append(("qm", [6, 7, 8, 9] + hubs, 3))
    steps.append(("batch", stream.deletion_batch(12), None))
    steps.append(("checkpoint",))
    steps.append(("batch", hub_churn(3), None))
    steps.append(("batch", stream.mixed_batch(16), None))
    return graph, steps


def _oracle(graph: DiGraph, steps) -> ReferenceModel:
    """Replay the workload's updates on the pure-python oracle."""
    model = ReferenceModel.from_digraph(graph)
    for step in steps:
        if step[0] != "batch":
            continue
        _, ops, labels = step
        for index, op in enumerate(ops):
            if op.kind is UpdateKind.INSERT:
                model.insert(op.src, op.dst, labels[index] if labels else 0)
            else:
                model.delete(op.src, op.dst)
    return model


def _compare_queries(recovered, reference, model, context):
    """Same results, same per-operation stats, and oracle agreement."""
    probes = [([0, 1, 2, 3], 1), ([4, 5, 6], 2), ([0, 7, 8, 9, 10], 3)]
    for sources, hops in probes:
        got, got_stats = recovered.batch_khop(sources, hops, auto_migrate=False)
        want, want_stats = reference.batch_khop(sources, hops, auto_migrate=False)
        assert got == want, f"{context}: khop({sources}, {hops}) results differ"
        assert_stats_equal(
            got_stats, want_stats, f"{context}: khop({sources}, {hops})"
        )
        assert got.destinations == model.khop(sources, hops), (
            f"{context}: khop({sources}, {hops}) disagrees with the oracle"
        )


# ----------------------------------------------------------------------
# The crash matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_crash_matrix(engine, tmp_path):
    """Kill the pipeline at every durable write boundary; recovery must be exact."""
    graph, steps = _workload()
    reference, fingerprints, cumulative = run_reference(
        graph, steps, _config(engine=engine)
    )
    model = _oracle(graph, steps)
    final = fingerprint(reference)

    # Dry run: discover the deterministic write sequence.
    dry_dir = tmp_path / "dry"
    with FaultInjector() as counter:
        system = run_durable(graph, steps, _config(dry_dir, engine=engine))
    system.close()
    total_writes = counter.writes_seen
    assert total_writes >= len(steps), "workload produced too few crash points"

    # The uncrashed control: recovery of a cleanly closed run is exact.
    control = Moctopus.recover(str(dry_dir))
    assert_fingerprints_equal(fingerprint(control), final, "uncrashed control")
    control.close()

    for write_index in range(total_writes):
        for mode in TEAR_MODES:
            context = f"engine={engine} crash@write{write_index}/{mode}"
            crash_dir = tmp_path / f"crash-{write_index}-{mode}"
            with FaultInjector(target=write_index, mode=mode):
                with pytest.raises(SimulatedCrash):
                    run_durable(graph, steps, _config(crash_dir, engine=engine))

            # The config is passed explicitly: before the first durable
            # checkpoint there is no manifest to infer it from, and
            # replay is only exact under the writer's configuration.
            recovered = Moctopus.recover(
                str(crash_dir), config=_config(crash_dir, engine=engine)
            )
            applied = recovered.durable_lsn
            assert 0 <= applied < len(fingerprints), context
            assert_fingerprints_equal(
                fingerprint(recovered), fingerprints[applied], context
            )

            # Replay the rest of the workload; the recovered system must
            # land exactly on the uncrashed reference's final state.
            resume = resume_index(cumulative, applied)
            if resume == 0:
                recovered.load_graph(graph)
                resume = 1
            for step in steps[resume - 1 :]:
                run_step(recovered, step)
            assert_fingerprints_equal(fingerprint(recovered), final, context)
            _compare_queries(recovered, reference, model, context)
            recovered.close()
            shutil.rmtree(crash_dir)
    reference.close()


def test_crash_matrix_covers_all_record_kinds(tmp_path):
    """The matrix workload really exercises bootstrap, batches, labels,
    migrations and multi-segment checkpoints — guard the harness itself."""
    graph, steps = _workload()
    full_dir = tmp_path / "full"
    system = run_durable(graph, steps, _config(full_dir))
    system.close()
    records, torn = scan_wal(wal_directory(str(full_dir)))
    assert torn is None
    kinds = {record.record_type for record in records}
    # The bootstrap segment is legitimately pruned once a checkpoint
    # covers it; batches and migration journals must be in the tail.
    assert kinds >= {2, 3}, "expected batch + migration records in the tail"
    assert len(list_segments(wal_directory(str(full_dir)))) > 1
    state = latest_checkpoint(
        DurabilityController.checkpoint_directory(str(full_dir))
    )
    assert state is not None and state.lsn > 0

    # Before any checkpoint, the bootstrap record is present and pruning
    # has not touched the log.
    plain_dir = tmp_path / "plain"
    plain_steps = [step for step in steps if step[0] != "checkpoint"][:2]
    system = run_durable(graph, plain_steps, _config(plain_dir))
    system.close()
    records, _ = scan_wal(wal_directory(str(plain_dir)))
    assert {record.record_type for record in records} >= {1, 2}


# ----------------------------------------------------------------------
# WAL edge cases
# ----------------------------------------------------------------------
def test_empty_log_recovery(tmp_path):
    """Recovering a directory with no records yields an empty, usable system."""
    empty = Moctopus(config=_config(tmp_path))
    empty.close()
    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert recovered.num_nodes == 0 and recovered.num_edges == 0
    assert recovered.durable_lsn == 0
    recovered.insert_edges([(1, 2), (2, 3)])
    assert recovered.durable_lsn == 1
    recovered.close()
    again = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert again.num_edges == 2
    again.close()


def test_recover_nonexistent_directory(tmp_path):
    """Recovery of a never-written path builds a fresh durable system."""
    target = tmp_path / "brand-new"
    recovered = Moctopus.recover(str(target), config=_config(target))
    assert recovered.num_edges == 0
    recovered.insert_edges([(0, 1)])
    recovered.close()
    assert os.path.isdir(target / "wal")


def test_checkpoint_only_recovery(tmp_path):
    """A checkpoint with no WAL tail restores without replaying anything."""
    graph, steps = _workload(seed=11)
    config = _config(tmp_path)
    system = Moctopus.from_graph(graph, config=config)
    for step in steps[:3]:
        run_step(system, step)
    system.checkpoint()
    lsn = system.durable_lsn
    expected = fingerprint(system)
    expected_load = system.pim.load_report()
    expected_host_items = system.pim.host.lifetime_items_processed
    expected_epochs = system._epochs.published_epochs
    system.close()

    recovered = Moctopus.recover(str(tmp_path))
    assert recovered.durable_lsn == lsn
    state = latest_checkpoint(
        DurabilityController.checkpoint_directory(str(tmp_path))
    )
    assert state is not None and state.lsn == lsn
    assert_fingerprints_equal(fingerprint(recovered), expected, "checkpoint-only")
    # Diagnostics stay continuous across the crash: lifetime platform
    # counters and epoch numbering resume where the writer left them.
    assert recovered.pim.load_report() == expected_load
    assert recovered.pim.host.lifetime_items_processed == expected_host_items
    assert recovered._epochs.published_epochs == expected_epochs
    recovered.close()


@pytest.mark.parametrize("cut", [1, 3, 5])
def test_torn_final_record_truncated(tmp_path, cut):
    """A record truncated mid-CRC (or deeper) is dropped and physically
    trimmed; the log stays appendable afterwards."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1), (1, 2)])
    system.insert_edges([(2, 3)])
    before = fingerprint(system)
    system.close()

    segment = list_segments(wal_directory(str(tmp_path)))[-1]
    size = os.path.getsize(segment)
    with open(segment, "rb+") as handle:
        handle.truncate(size - cut)

    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    # The torn batch (2, 3) is gone; the first batch survives.
    assert recovered.durable_lsn == 1
    assert recovered.num_edges == 2
    assert not recovered.has_edge(2, 3)
    # The tail was physically truncated, and appends resume cleanly.
    recovered.insert_edges([(3, 4)])
    assert recovered.durable_lsn == 2
    recovered.close()
    again = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert again.has_edge(3, 4) and not again.has_edge(2, 3)
    again.close()
    del before


def test_duplicate_segment_replay_idempotent(tmp_path):
    """Records re-delivered in a later segment are skipped by LSN."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1), (1, 2), (2, 0)])
    system.delete_edges([(1, 2)])
    expected = fingerprint(system)
    system.close()

    wal_dir = wal_directory(str(tmp_path))
    first = list_segments(wal_dir)[0]
    with open(first, "rb") as handle:
        payload = handle.read()
    # A duplicated segment appears later in scan order than the original.
    with open(os.path.join(wal_dir, "wal-00000099.seg"), "wb") as handle:
        handle.write(payload)

    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert_fingerprints_equal(fingerprint(recovered), expected, "duplicate segment")
    recovered.close()


def test_corrupt_final_segment_with_committed_records_raises(tmp_path):
    """Damage *inside* the last segment is corruption, not a torn tail.

    A genuine torn tail never has a parseable record after it; damage
    followed by committed records must hard-error instead of silently
    truncating those records away and reusing their LSNs.
    """
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1), (1, 2)])
    system.insert_edges([(2, 3)])
    system.insert_edges([(3, 4)])
    system.close()
    segments = list_segments(wal_directory(str(tmp_path)))
    assert len(segments) == 1
    with open(segments[0], "rb+") as handle:
        handle.seek(10)
        byte = handle.read(1)
        handle.seek(10)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(CorruptWalError):
        Moctopus.recover(str(tmp_path), config=_config(tmp_path))


def test_fresh_system_refuses_existing_log(tmp_path):
    """Constructing a new system over live history must fail loudly —
    appending a second bootstrap would make the log unreplayable."""
    system = Moctopus(config=_config(tmp_path))
    system.insert_edges([(0, 1)])
    system.close()
    with pytest.raises(CorruptWalError):
        Moctopus(config=_config(tmp_path))
    # The right door is still open.
    recovered = Moctopus.recover(str(tmp_path))
    assert recovered.has_edge(0, 1)
    recovered.close()


def test_recover_without_config_uses_initial_manifest(tmp_path):
    """A crash before the first checkpoint still recovers under the
    writer's configuration, via the config.json written at init."""
    graph, steps = _workload(seed=53)
    system = Moctopus.from_graph(graph, config=_config(tmp_path))
    run_step(system, steps[0])
    expected = fingerprint(system)
    system._durability.wal.close()  # crash: no checkpoint ever written

    recovered = Moctopus.recover(str(tmp_path))  # note: no config passed
    assert recovered.num_modules == 4
    assert recovered.config.wal_segment_bytes == 2048
    assert_fingerprints_equal(fingerprint(recovered), expected, "config manifest")
    recovered.close()


def test_stale_pending_reports_cleared_by_migration_replay(tmp_path):
    """Reports checkpointed *before* a logged maintenance pass must not
    outlive its replay — the original pass consumed them all."""
    graph, _ = _workload(seed=41)
    system = Moctopus.from_graph(graph, config=_config(tmp_path))
    reference = Moctopus.from_graph(graph, config=_config())
    sources = list(range(0, 30))
    for target in (system, reference):
        target.batch_khop(sources, 2, auto_migrate=False)
    assert system._migrator.pending_reports > 0
    system.checkpoint()          # captures the pending reports
    system.run_maintenance()     # consumes ALL of them, logs the moves
    reference.run_maintenance()
    expected_pending = reference._migrator.capture_pending()
    assert expected_pending == []
    system._durability.wal.close()  # crash after the MIGRATIONS record

    recovered = Moctopus.recover(str(tmp_path))
    assert recovered._migrator.capture_pending() == expected_pending
    # A later maintenance pass must migrate nothing the reference didn't.
    moved_recovered, _ = recovered.run_maintenance()
    moved_reference, _ = reference.run_maintenance()
    assert moved_recovered == moved_reference == 0
    assert_fingerprints_equal(
        fingerprint(recovered), fingerprint(reference), "stale pending"
    )
    recovered.close()
    reference.close()


def test_wal_segments_pruned_after_checkpoint(tmp_path):
    """Segments every retained checkpoint covers are deleted; recovery
    (including the fall-back-to-older-checkpoint path) stays exact."""
    config = _config(tmp_path, wal_segment_bytes=1024)
    system = Moctopus(config=config)
    for start in range(0, 160, 4):
        system.insert_edges([(start, start + 1), (start + 1, start + 2)])
    grown = len(list_segments(wal_directory(str(tmp_path))))
    assert grown > 2
    system.checkpoint()
    system.insert_edges([(500, 501)])
    system.checkpoint()
    pruned = len(list_segments(wal_directory(str(tmp_path))))
    assert pruned < grown
    system.insert_edges([(501, 502)])
    expected = fingerprint(system)
    system.close()

    recovered = Moctopus.recover(str(tmp_path))
    assert_fingerprints_equal(fingerprint(recovered), expected, "pruned log")
    recovered.close()

    # Mangle the newest checkpoint: the older one plus the (pruned) tail
    # must still reconstruct everything — pruning never outruns the
    # oldest retained checkpoint.
    ckpt_dir = DurabilityController.checkpoint_directory(str(tmp_path))
    newest = sorted(
        name for name in os.listdir(ckpt_dir) if not name.endswith(".tmp")
    )[-1]
    with open(os.path.join(ckpt_dir, newest, "manifest.json"), "wb") as handle:
        handle.write(b"{ torn")
    fallback = Moctopus.recover(str(tmp_path))
    assert_fingerprints_equal(fingerprint(fallback), expected, "pruned fallback")
    fallback.close()


def test_failed_apply_is_compensated_with_abort_record(tmp_path, monkeypatch):
    """A batch whose apply raises must not poison the log: recovery
    skips the compensated record instead of re-raising forever.  And
    because the failed apply may have left partial in-memory state, the
    writer's durability latches off — the durable history ends at the
    abort, and the way forward is recover()."""
    from repro.core.update_processor import UpdateProcessor

    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1), (1, 2)])

    real_apply = UpdateProcessor.apply_batch
    def exploding(self, ops, labels=None):
        raise MemoryError("simulated module overflow")
    monkeypatch.setattr(UpdateProcessor, "apply_batch", exploding)
    with pytest.raises(MemoryError):
        system.insert_edges([(2, 3)])
    monkeypatch.setattr(UpdateProcessor, "apply_batch", real_apply)
    # The poisoned batch got lsn N, the ABORT marker lsn N+1.
    assert system.durable_lsn == 3

    # Further logging refuses: replay skips the aborted batch entirely,
    # so logging against possibly-partial live state would diverge.
    with pytest.raises(CorruptWalError):
        system.insert_edges([(3, 4)])
    system.close()

    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert recovered.has_edge(0, 1)
    assert not recovered.has_edge(2, 3)
    assert recovered.durable_lsn == 3
    # The recovered system is clean and fully operational again.
    recovered.insert_edges([(3, 4)])
    assert recovered.durable_lsn == 4
    recovered.close()


def test_crash_between_batch_append_and_abort_recovers(tmp_path, monkeypatch):
    """The worst window: the batch record is durable, its apply raised,
    and the process died before the ABORT marker landed.  Recovery must
    treat the failing tail record as an implicit abort (and persist a
    real marker) instead of failing forever."""
    from repro.core.update_processor import UpdateProcessor
    from repro.durability import wal as wal_module

    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1), (1, 2)])

    poisoned = [(2, 3)]

    def exploding(self, ops, labels=None):
        if any((op.src, op.dst) in poisoned for op in ops):
            raise MemoryError("simulated module overflow")
        return real_apply(self, ops, labels=labels)

    real_apply = UpdateProcessor.apply_batch
    real_write = wal_module.wal_write

    def no_more_writes(handle, payload):
        raise SimulatedCrash("process died before the abort landed")

    monkeypatch.setattr(UpdateProcessor, "apply_batch", exploding)

    def cut_after_batch(handle, payload):
        # The BATCH record lands; every later write (the ABORT) dies.
        real_write(handle, payload)
        wal_module.wal_write = no_more_writes

    wal_module.wal_write = cut_after_batch
    try:
        with pytest.raises((MemoryError, SimulatedCrash)):
            system.insert_edges(poisoned)
    finally:
        wal_module.wal_write = real_write
        monkeypatch.setattr(UpdateProcessor, "apply_batch", real_apply)

    # On disk: the poisoned batch is the tail record (lsn 2), with no
    # abort marker after it.  Its replay re-raises, so recovery must
    # implicitly abort it and persist a real marker (lsn 3).
    monkeypatch.setattr(UpdateProcessor, "apply_batch", exploding)
    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    monkeypatch.setattr(UpdateProcessor, "apply_batch", real_apply)
    assert recovered.has_edge(0, 1)
    assert not recovered.has_edge(2, 3)
    # A real ABORT marker was persisted, so the *next* recovery needs no
    # implicit-abort retry even with the failure gone.
    assert recovered.durable_lsn == 3
    recovered.insert_edges([(5, 6)])
    assert recovered.durable_lsn == 4
    recovered.close()
    again = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert again.has_edge(5, 6) and not again.has_edge(2, 3)
    again.close()


def test_failed_append_repairs_tail_on_retry(tmp_path):
    """Partial bytes from a failed append are trimmed before the next
    record, so a transient I/O error never strands damage mid-segment."""
    from repro.durability import wal as wal_module

    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1)])

    real_write = wal_module.wal_write
    state = {"fail": True}
    def flaky(handle, payload):
        if state["fail"]:
            state["fail"] = False
            real_write(handle, payload[: len(payload) // 2])
            raise OSError("simulated ENOSPC")
        real_write(handle, payload)
    wal_module.wal_write = flaky
    try:
        with pytest.raises(OSError):
            system.insert_edges([(1, 2)])
        # Retry: the appender truncates the torn bytes first.
        system.insert_edges([(1, 2)])
    finally:
        wal_module.wal_write = real_write
    system.insert_edges([(2, 3)])
    expected = fingerprint(system)
    system.close()
    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert_fingerprints_equal(fingerprint(recovered), expected, "tail repair")
    recovered.close()


def test_failed_migration_journal_latches_durability(tmp_path, monkeypatch):
    """If journaling applied migrations fails, the live state has moved
    past the durable history — further logging must refuse loudly
    instead of silently recording a diverging future."""
    graph, _ = _workload(seed=41)
    system = Moctopus.from_graph(graph, config=_config(tmp_path))
    system.batch_khop(list(range(30)), 2, auto_migrate=False)
    assert system._migrator.pending_reports > 0

    from repro.durability import wal as wal_module
    real_write = wal_module.wal_write
    def broken(handle, payload):
        raise OSError("simulated disk failure")
    wal_module.wal_write = broken
    try:
        with pytest.raises(OSError):
            system.run_maintenance()
    finally:
        wal_module.wal_write = real_write

    with pytest.raises(CorruptWalError):
        system.insert_edges([(0, 1)])
    system.close()
    # The durable prefix (without the lost migrations) still recovers.
    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert recovered.num_edges > 0
    recovered.close()


def test_zero_move_maintenance_pass_is_journaled(tmp_path):
    """A pass that consumes reports but migrates nothing still journals
    (an empty record), so checkpoint-restored reports cannot outlive it."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    # Node 0's next hops land on its own module (greedy places dst next
    # to src), so the report resolves to "majority == current": no move.
    system.insert_edges([(0, 1), (0, 2)])
    system._migrator.report_misplaced(0, 0, 2)
    system.checkpoint()  # captures pending = {0}
    lsn_before = system.durable_lsn
    moved, _ = system.run_maintenance()
    assert moved == 0
    assert system.durable_lsn == lsn_before + 1, (
        "zero-move pass must still append its (empty) journal record"
    )
    system._durability.wal.close()  # crash

    recovered = Moctopus.recover(str(tmp_path))
    # Replaying the empty record cleared the checkpoint-restored report.
    assert recovered._migrator.pending_reports == 0
    recovered.close()


def test_resume_detects_unexpected_tail(tmp_path):
    """Appends that land behind recovery's back fail the resume loudly."""
    system = Moctopus(config=_config(tmp_path))
    system.insert_edges([(0, 1)])
    system.close()
    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    # A straggler appends to the same directory while `recovered` holds it.
    from repro.durability.wal import RT_BATCH, encode_batch, encode_record

    segment = list_segments(wal_directory(str(tmp_path)))[-1]
    straggler = encode_record(
        RT_BATCH, 2, encode_batch([UpdateOp(UpdateKind.INSERT, 5, 6)], None)
    )
    with open(segment, "ab") as handle:
        handle.write(straggler)
    recovered.close()
    with pytest.raises(CorruptWalError):
        # recover() replays lsn 2 fine, but a *second* stale recovery
        # state must not silently resume past it: simulate by resuming
        # with an out-of-date lsn.
        from repro.durability.wal import WriteAheadLog

        WriteAheadLog(
            wal_directory(str(tmp_path)), segment_bytes=2048, resume_lsn=1
        )


def test_wal_fsync_roundtrip(tmp_path):
    """The power-loss path (fsync'd records, checkpoints and directory
    entries, incl. segment rotation) round-trips bit-exactly."""
    config = _config(tmp_path, wal_fsync=True, wal_segment_bytes=1024)
    system = Moctopus(config=config)
    for start in range(0, 80, 2):
        system.insert_edges([(start, start + 1)])
    assert len(list_segments(wal_directory(str(tmp_path)))) > 1
    system.checkpoint()
    system.insert_edges([(100, 101)])
    expected = fingerprint(system)
    system.close()
    recovered = Moctopus.recover(str(tmp_path))
    assert_fingerprints_equal(fingerprint(recovered), expected, "fsync")
    recovered.close()


def test_dir_fsync_crash_points(tmp_path):
    """Kill the pipeline at every *directory fsync* boundary under
    ``wal_fsync=True`` (segment creation, checkpoint publication):
    recovery must land exactly on a durable prefix of the reference."""
    graph = power_law_graph(num_nodes=40, edges_per_node=2, skew=0.8, seed=5)
    steps = [
        ("batch", [UpdateOp(UpdateKind.INSERT, 50 + i, 60 + i) for i in range(4)], None),
        ("checkpoint",),
        ("batch", [UpdateOp(UpdateKind.INSERT, 70 + i, 80 + i) for i in range(4)], None),
    ]

    def fsync_config(path=None):
        # Small segments force rotation (extra directory-fsync sites).
        return _config(path, wal_fsync=True, wal_segment_bytes=1024)

    _, fingerprints, _ = run_reference(graph, steps, fsync_config())

    dry_dir = tmp_path / "dry"
    with FaultInjector() as counter:
        system = run_durable(graph, steps, fsync_config(dry_dir))
    system.close()
    # Segment creation + rotation + checkpoint tmp/parent fsyncs.
    assert counter.fsyncs_seen >= 3, "workload hit too few fsync points"

    for fsync_index in range(counter.fsyncs_seen):
        for mode in ("before", "after"):
            context = f"crash@dirfsync{fsync_index}/{mode}"
            crash_dir = tmp_path / f"crash-{fsync_index}-{mode}"
            with FaultInjector(fsync_target=fsync_index, fsync_mode=mode):
                with pytest.raises(SimulatedCrash):
                    run_durable(graph, steps, fsync_config(crash_dir))
            recovered = Moctopus.recover(
                str(crash_dir), config=fsync_config(crash_dir)
            )
            applied = recovered.durable_lsn
            assert 0 <= applied < len(fingerprints), context
            assert_fingerprints_equal(
                fingerprint(recovered), fingerprints[applied], context
            )
            recovered.close()
            shutil.rmtree(crash_dir)


def test_daemon_survives_checkpoint_failure(tmp_path, monkeypatch):
    """A transient checkpoint error must not kill the daemon thread."""
    import time

    import repro.durability as durability_pkg

    real = durability_pkg.persist_checkpoint
    failures = {"left": 1}

    def flaky(*args, **kwargs):
        if failures["left"] > 0:
            failures["left"] -= 1
            raise OSError("simulated disk full")
        return real(*args, **kwargs)

    monkeypatch.setattr(durability_pkg, "persist_checkpoint", flaky)
    config = _config(tmp_path, checkpoint_interval_batches=1)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1)])   # first attempt fails in the daemon
    deadline = time.monotonic() + 10.0
    while (
        time.monotonic() < deadline
        and system._durability.last_checkpoint_error is None
    ):
        time.sleep(0.02)
    assert isinstance(system._durability.last_checkpoint_error, OSError)
    assert system._durability._daemon.is_alive()
    system.insert_edges([(1, 2)])   # retry succeeds
    ckpt_dir = DurabilityController.checkpoint_directory(str(tmp_path))
    deadline = time.monotonic() + 10.0
    state = None
    while time.monotonic() < deadline:
        state = latest_checkpoint(ckpt_dir)
        if state is not None:
            break
        time.sleep(0.02)
    assert state is not None, "daemon never recovered from the failure"
    # The health flag clears once a checkpoint succeeds.
    deadline = time.monotonic() + 10.0
    while (
        time.monotonic() < deadline
        and system._durability.last_checkpoint_error is not None
    ):
        time.sleep(0.02)
    assert system._durability.last_checkpoint_error is None
    system.close()


def test_corrupt_middle_segment_raises(tmp_path):
    """Damage before the final record is corruption, not a torn tail."""
    config = _config(tmp_path, wal_segment_bytes=1024)
    system = Moctopus(config=config)
    for start in range(0, 160, 4):
        system.insert_edges([(start, start + 1), (start + 1, start + 2)])
    system.close()
    segments = list_segments(wal_directory(str(tmp_path)))
    assert len(segments) > 1
    with open(segments[0], "rb+") as handle:
        handle.seek(10)
        byte = handle.read(1)
        handle.seek(10)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(CorruptWalError):
        Moctopus.recover(str(tmp_path))


def test_missing_segment_raises_gap(tmp_path):
    """A vanished middle segment surfaces as an LSN gap, not silence."""
    config = _config(tmp_path, wal_segment_bytes=1024)
    system = Moctopus(config=config)
    for start in range(0, 240, 4):
        system.insert_edges([(start, start + 1), (start + 1, start + 2)])
    system.close()
    segments = list_segments(wal_directory(str(tmp_path)))
    assert len(segments) > 2
    os.remove(segments[1])
    with pytest.raises(WalGapError):
        Moctopus.recover(str(tmp_path))


def test_labels_survive_recovery(tmp_path):
    """Labelled inserts round-trip bit-exactly through log and checkpoint."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1), (0, 2), (1, 2)], labels=[3, 1, 2])
    system.checkpoint()
    system.insert_edges([(2, 0)], labels=[7])
    expected = fingerprint(system)
    system.close()
    recovered = Moctopus.recover(str(tmp_path))
    assert_fingerprints_equal(fingerprint(recovered), expected, "labels")
    assert recovered.graph.edge_label(0, 1) == 3
    assert recovered.graph.edge_label(0, 2) == 1
    assert recovered.graph.edge_label(1, 2) == 2
    assert recovered.graph.edge_label(2, 0) == 7
    recovered.close()


# ----------------------------------------------------------------------
# Engine lockstep
# ----------------------------------------------------------------------
def test_recovery_engine_lockstep(tmp_path):
    """A log written under one engine recovers identically under both."""
    graph, steps = _workload(seed=23)
    config = _config(tmp_path / "store", engine="python")
    system = Moctopus.from_graph(graph, config=config)
    for step in steps:
        run_step(system, step)
    expected = fingerprint(system)
    system.close()

    scalar = Moctopus.recover(str(tmp_path / "store"), engine="python")
    vectorized = Moctopus.recover(str(tmp_path / "store"), engine="vectorized")
    assert_fingerprints_equal(fingerprint(scalar), expected, "python recovery")
    assert_fingerprints_equal(
        fingerprint(vectorized), expected, "vectorized recovery"
    )
    for sources, hops in [([0, 1, 2], 2), ([3, 4], 3)]:
        got_s, stats_s = scalar.batch_khop(sources, hops, auto_migrate=False)
        got_v, stats_v = vectorized.batch_khop(sources, hops, auto_migrate=False)
        assert got_s == got_v
        assert_stats_equal(stats_s, stats_v, "engine lockstep")
    scalar.close()
    vectorized.close()


def test_vectorized_written_log_recovers(tmp_path):
    """Replay applies a vectorized-written log identically through both paths."""
    graph, steps = _workload(seed=31)
    config = _config(tmp_path, engine="vectorized")
    system = Moctopus.from_graph(graph, config=config)
    for step in steps:
        run_step(system, step)
    expected = fingerprint(system)
    system.close()
    recovered = Moctopus.recover(str(tmp_path))
    assert recovered.engine_name == "vectorized"
    assert_fingerprints_equal(fingerprint(recovered), expected, "vectorized log")
    recovered.close()


# ----------------------------------------------------------------------
# Checkpoint lifecycle
# ----------------------------------------------------------------------
def test_checkpoint_daemon_liveness(tmp_path):
    """The background checkpointer fires once the interval elapses."""
    import time

    config = _config(tmp_path, checkpoint_interval_batches=2)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1)])
    system.insert_edges([(1, 2)])
    ckpt_dir = DurabilityController.checkpoint_directory(str(tmp_path))
    deadline = time.monotonic() + 10.0
    state = None
    while time.monotonic() < deadline:
        state = latest_checkpoint(ckpt_dir)
        if state is not None:
            break
        time.sleep(0.02)
    assert state is not None, "daemon never wrote a checkpoint"
    expected = fingerprint(system)
    system.close()
    recovered = Moctopus.recover(str(tmp_path))
    assert_fingerprints_equal(fingerprint(recovered), expected, "daemon checkpoint")
    recovered.close()


def test_checkpoint_retention_prunes(tmp_path):
    """Only the newest checkpoints stay on disk."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    for index in range(5):
        system.insert_edges([(index, index + 1)])
        system.checkpoint()
    ckpt_dir = DurabilityController.checkpoint_directory(str(tmp_path))
    finished = [name for name in os.listdir(ckpt_dir) if not name.endswith(".tmp")]
    assert len(finished) <= 2
    system.close()
    recovered = Moctopus.recover(str(tmp_path))
    assert recovered.num_edges == 5
    recovered.close()


def test_invalid_latest_checkpoint_falls_back(tmp_path):
    """A mangled newest checkpoint must not mask an older good one."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1)])
    system.checkpoint()
    system.insert_edges([(1, 2)])
    system.checkpoint()
    expected = fingerprint(system)
    system.close()
    ckpt_dir = DurabilityController.checkpoint_directory(str(tmp_path))
    newest = sorted(
        name for name in os.listdir(ckpt_dir) if not name.endswith(".tmp")
    )[-1]
    with open(os.path.join(ckpt_dir, newest, "manifest.json"), "wb") as handle:
        handle.write(b"{ torn")
    recovered = Moctopus.recover(str(tmp_path))
    # The older checkpoint plus WAL tail still reconstructs everything.
    assert_fingerprints_equal(fingerprint(recovered), expected, "fallback")
    recovered.close()


def test_recover_rejects_module_mismatch(tmp_path):
    """A config override that changes the platform shape fails loudly."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1)])
    system.checkpoint()
    system.close()
    wrong = _config(tmp_path, cost_model=CostModel(num_modules=8))
    with pytest.raises(CheckpointError):
        Moctopus.recover(str(tmp_path), config=wrong)


def test_close_is_idempotent_and_detaches(tmp_path):
    """close() twice is fine; later updates stay memory-only."""
    config = _config(tmp_path)
    system = Moctopus(config=config)
    system.insert_edges([(0, 1)])
    system.close()
    system.close()
    system.insert_edges([(1, 2)])  # not logged
    recovered = Moctopus.recover(str(tmp_path), config=_config(tmp_path))
    assert recovered.has_edge(0, 1) and not recovered.has_edge(1, 2)
    recovered.close()


def test_pending_misplacement_reports_survive_checkpoint(tmp_path):
    """Reports accumulated before a checkpoint still drive migrations
    after recovery, exactly as they would have without the crash."""
    graph, _ = _workload(seed=41)
    config = _config(tmp_path)
    system = Moctopus.from_graph(graph, config=config)
    reference = Moctopus.from_graph(graph, config=_config())
    sources = list(range(0, 30))
    system.batch_khop(sources, 2, auto_migrate=False)
    reference.batch_khop(sources, 2, auto_migrate=False)
    assert system._migrator.pending_reports > 0, "probe produced no reports"
    system.checkpoint()
    system.close()

    recovered = Moctopus.recover(str(tmp_path))
    assert (
        recovered._migrator.capture_pending()
        == reference._migrator.capture_pending()
    )
    moved_recovered, _ = recovered.run_maintenance()
    moved_reference, _ = reference.run_maintenance()
    assert moved_recovered == moved_reference > 0
    assert_fingerprints_equal(
        fingerprint(recovered), fingerprint(reference), "pending reports"
    )
    recovered.close()
    reference.close()


# ----------------------------------------------------------------------
# Stateful interleaving (hypothesis)
# ----------------------------------------------------------------------
class DurabilityMachine(RuleBasedStateMachine):
    """Random apply/checkpoint/crash/recover/query interleavings.

    The oracle is ``tests.model.ReferenceModel``: every batch the system
    *durably accepted* (``apply_updates`` returned) is mirrored into the
    model, so after any number of crashes and recoveries the system's
    k-hop answers must equal the model's on both the live path and a
    freshly recovered instance.
    """

    engine = "python"

    def __init__(self) -> None:
        super().__init__()
        self.tmpdir = tempfile.mkdtemp(prefix="moctopus-durability-")
        self.config = MoctopusConfig(
            cost_model=CostModel(num_modules=4),
            engine=self.engine,
            durability_dir=self.tmpdir,
            wal_segment_bytes=4096,
            checkpoint_interval_batches=0,
        )
        self.system = Moctopus(config=self.config)
        self.model = ReferenceModel()

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def bootstrap(self, seed):
        graph = power_law_graph(
            num_nodes=40, edges_per_node=2, skew=0.8, seed=seed
        )
        self.system.load_graph(graph)
        self.model = ReferenceModel.from_digraph(graph)

    @rule(data=st.data())
    def apply_batch(self, data):
        count = data.draw(st.integers(min_value=1, max_value=12))
        ops = []
        for _ in range(count):
            src = data.draw(st.integers(min_value=0, max_value=45))
            dst = data.draw(st.integers(min_value=0, max_value=45))
            if src == dst:
                dst = (dst + 1) % 46
            insert = data.draw(st.booleans())
            ops.append(
                UpdateOp(
                    UpdateKind.INSERT if insert else UpdateKind.DELETE, src, dst
                )
            )
        self.system.apply_updates(ops)
        for op in ops:
            if op.kind is UpdateKind.INSERT:
                self.model.insert(op.src, op.dst)
            else:
                self.model.delete(op.src, op.dst)

    @rule()
    def checkpoint(self):
        self.system.checkpoint()

    @rule()
    def crash_and_recover(self):
        # A dead process never calls close(): drop the instance on the
        # floor and rebuild purely from disk.
        self.system._durability.wal.close()
        self.system = Moctopus.recover(self.tmpdir)

    @rule(hops=st.integers(min_value=1, max_value=3), data=st.data())
    def query(self, hops, data):
        sources = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=45), min_size=1, max_size=5
            )
        )
        result, _ = self.system.batch_khop(sources, hops, auto_migrate=False)
        assert result.destinations == self.model.khop(sources, hops)

    @rule()
    def maintenance(self):
        self.system.run_maintenance()

    def teardown(self):
        try:
            self.system.close()
        finally:
            shutil.rmtree(self.tmpdir, ignore_errors=True)


class DurabilityMachinePython(DurabilityMachine):
    engine = "python"


class DurabilityMachineVectorized(DurabilityMachine):
    engine = "vectorized"


TestDurabilityMachinePython = DurabilityMachinePython.TestCase
TestDurabilityMachinePython.settings = settings(
    max_examples=12, stateful_step_count=24, deadline=None
)
TestDurabilityMachineVectorized = DurabilityMachineVectorized.TestCase
TestDurabilityMachineVectorized.settings = settings(
    max_examples=12, stateful_step_count=24, deadline=None
)
