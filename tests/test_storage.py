"""Tests for PIM local graph storage and heterogeneous graph storage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import (
    BYTES_PER_ENTRY,
    BYTES_PER_ROW,
    LocalGraphStorage,
)
from repro.pim import LocalMemory, MemoryCapacityError


# ----------------------------------------------------------------------
# LocalGraphStorage
# ----------------------------------------------------------------------
def test_local_storage_add_and_query():
    storage = LocalGraphStorage()
    assert storage.add_edge(1, 2) is True
    assert storage.add_edge(1, 3) is True
    assert storage.add_edge(1, 2) is False
    assert storage.next_hops(1) == [2, 3]
    assert storage.has_edge(1, 2)
    assert not storage.has_edge(2, 1)
    assert storage.num_rows == 1
    assert storage.num_edges == 2
    assert storage.row_length(1) == 2
    assert storage.row_length(9) == 0


def test_local_storage_labels_are_kept():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2, label=7)
    storage.add_edge(1, 2, label=9)  # refresh
    assert storage.next_hops_with_labels(1) == [(2, 9)]


def test_local_storage_remove_edge():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    assert storage.remove_edge(1, 2) is True
    assert storage.remove_edge(1, 2) is False
    assert storage.remove_edge(5, 6) is False
    assert storage.num_edges == 0


def test_local_storage_row_move_roundtrip():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    storage.add_edge(1, 3, label=4)
    entries = storage.remove_row(1)
    assert entries == [(2, 0), (3, 4)]
    assert storage.num_rows == 0 and storage.num_edges == 0
    other = LocalGraphStorage()
    other.insert_row(1, entries)
    assert other.next_hops(1) == [2, 3]
    with pytest.raises(ValueError):
        other.insert_row(1, [])


def test_local_storage_memory_accounting():
    memory = LocalMemory(10_000)
    storage = LocalGraphStorage(memory=memory)
    storage.add_edge(1, 2)
    # One row record (for the source) plus one next-hop entry.
    assert memory.used_bytes == BYTES_PER_ROW + BYTES_PER_ENTRY
    storage.remove_edge(1, 2)
    assert memory.used_bytes == BYTES_PER_ROW
    assert storage.storage_bytes == BYTES_PER_ROW


def test_local_storage_capacity_enforced():
    memory = LocalMemory(BYTES_PER_ROW + BYTES_PER_ENTRY)
    storage = LocalGraphStorage(memory=memory)
    storage.add_edge(1, 2)
    with pytest.raises(MemoryCapacityError):
        storage.add_edge(1, 3)


# ----------------------------------------------------------------------
# HeterogeneousGraphStorage
# ----------------------------------------------------------------------
def test_hetero_insert_protocol_outcome():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    outcome = storage.insert_edge(1, 2)
    assert outcome.applied
    assert outcome.host_writes == 1
    assert outcome.pim_map_lookups >= 2
    # Duplicate insert is detected by the PIM-side elem_position_map alone.
    duplicate = storage.insert_edge(1, 2)
    assert not duplicate.applied
    assert duplicate.host_writes == 0
    assert storage.num_edges == 1
    assert storage.has_edge(1, 2)
    assert storage.next_hops(1) == [2]


def test_hetero_delete_and_slot_reuse():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    storage.insert_edge(1, 2)
    storage.insert_edge(1, 3)
    outcome = storage.delete_edge(1, 2)
    assert outcome.applied and outcome.host_writes == 1
    assert storage.delete_edge(1, 2).applied is False
    assert storage.next_hops(1) == [3]
    # The freed slot is reused by the free_list_map.
    storage.insert_edge(1, 4)
    assert sorted(storage.next_hops(1)) == [3, 4]
    assert storage.num_edges == 2


def test_hetero_vector_growth():
    storage = HeterogeneousGraphStorage(num_pim_modules=2)
    grew = 0
    for dst in range(1, 40):
        outcome = storage.insert_edge(0, dst)
        grew += 1 if outcome.host_streamed_bytes else 0
    assert grew >= 2  # capacity doubled at least twice from 8 slots
    assert storage.row_length(0) == 39
    assert sorted(storage.next_hops(0)) == list(range(1, 40))
    assert storage.row_bytes(0) > 0
    assert storage.total_bytes() >= storage.row_bytes(0)


def test_hetero_row_move_roundtrip():
    storage = HeterogeneousGraphStorage(num_pim_modules=2)
    storage.insert_row(7, [(1, 0), (2, 0), (3, 5)])
    assert storage.row_length(7) == 3
    assert storage.has_edge(7, 3)
    entries = storage.remove_row(7)
    assert sorted(entries) == [(1, 0), (2, 0), (3, 5)]
    assert storage.num_rows == 0
    assert storage.remove_row(7) == []
    storage.insert_row(8, [(1, 0)])
    with pytest.raises(ValueError):
        storage.insert_row(8, [(2, 0)])


def test_hetero_index_module_sharding():
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    modules = {storage.index_module_of(node) for node in range(16)}
    assert modules == {0, 1, 2, 3}
    with pytest.raises(ValueError):
        HeterogeneousGraphStorage(num_pim_modules=0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 5), st.integers(0, 5)),
        max_size=60,
    )
)
def test_hetero_storage_matches_reference_dict(operations):
    """Insert/delete sequences agree with a plain set-of-edges reference."""
    storage = HeterogeneousGraphStorage(num_pim_modules=4)
    reference = set()
    for is_insert, src, dst in operations:
        if is_insert:
            outcome = storage.insert_edge(src, dst)
            assert outcome.applied == ((src, dst) not in reference)
            reference.add((src, dst))
        else:
            outcome = storage.delete_edge(src, dst)
            assert outcome.applied == ((src, dst) in reference)
            reference.discard((src, dst))
    assert storage.num_edges == len(reference)
    for src, dst in reference:
        assert storage.has_edge(src, dst)
        assert dst in storage.next_hops(src)
