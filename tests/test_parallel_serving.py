"""Differential tests of multi-process serving over shared-memory epochs.

The acceptance contract of :mod:`repro.parallel` is *bit-identity*: a
batch scattered to a worker process must return exactly what the same
batch produces in-process on the same pinned epoch — same destination
sets, same simulated statistics, same epoch stamp — and the pool's
merged accounting platform must equal the in-process platform's.  The
suite proves it on both engines by replaying the ``tests/model.py``
oracle sweep through a :class:`~repro.parallel.pool.WorkerPool` under
writer churn, plus lifecycle tests for the shared-memory export
protocol (retire-on-supersede, unlink-on-last-detach, guard-file crash
reaping).
"""

from __future__ import annotations

import glob
import json
import os
import random
import subprocess
import time

import pytest

from model import ReferenceModel
from repro.core import Moctopus, MoctopusConfig
from repro.graph import random_graph
from repro.parallel import (
    WorkerPool,
    WorkerPoolError,
    attach_epoch,
    export_epoch,
    reap_stale_segments,
)
from repro.parallel.shm import _GUARD_PREFIX, _GUARD_SUFFIX, _guard_directory
from repro.pim import CostModel
from repro.pim.system import PIMSystem
from repro.rpq import RPQuery
from repro.rpq.query import KHopQuery
from repro.serve.epoch import EpochView

ENGINES = ("python", "vectorized", "matrix")
LABEL_NAMES = {1: "a", 2: "b", 3: "c"}
RPQ_EXPRESSIONS = (".{1}", ".{2}", ".+", "a", "a/b", "(a|b)+")


def build_system(seed: int, engine: str) -> Moctopus:
    graph = random_graph(28, 90, seed=seed)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        engine=engine,
        high_degree_threshold=8,
    )
    return Moctopus.from_graph(graph, config, label_names=LABEL_NAMES)


def stats_fingerprint(stats):
    """Everything the paper's figures could be derived from."""
    return (
        stats.host_time,
        stats.cpc_time,
        stats.ipc_time,
        stats.pim_time,
        tuple(stats.phase_pim_times),
        stats.cpc.bytes_moved,
        stats.cpc.transfers,
        stats.ipc.bytes_moved,
        stats.ipc.transfers,
        dict(stats.counters),
    )


# ----------------------------------------------------------------------
# Export/attach round trip
# ----------------------------------------------------------------------
def test_export_attach_round_trip():
    """An attached epoch is array-for-array the exported one, zero-copy."""
    system = build_system(0, "vectorized")
    epoch = system._epochs.pin()
    try:
        segment, manifest = export_epoch(epoch)
        try:
            rebuilt, mapping = attach_epoch(manifest)
            assert rebuilt.epoch_id == epoch.epoch_id
            assert rebuilt.num_nodes == epoch.num_nodes
            assert rebuilt.num_edges == epoch.num_edges
            assert rebuilt.num_modules == epoch.num_modules
            assert all(
                ours.same_arrays(theirs)
                for ours, theirs in zip(epoch.snapshots, rebuilt.snapshots)
            )
            before_nodes, before_parts = epoch.owners.table()
            after_nodes, after_parts = rebuilt.owners.table()
            assert before_nodes.tolist() == after_nodes.tolist()
            assert before_parts.tolist() == after_parts.tolist()
            # Attached arrays are read-only views into the mapping.
            assert not rebuilt.snapshots[0].dsts.flags.writeable
            del rebuilt, before_nodes, before_parts, after_nodes, after_parts
            mapping.close()
        finally:
            segment.close()
            segment.unlink()
    finally:
        system._epochs.unpin(epoch)


# ----------------------------------------------------------------------
# The differential pool sweep (bit-identity on both engines)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_pool_differential_sweep(engine):
    """Replay the oracle sweep through the pool: bit-identical results,
    stats, epoch ids and merged accounting vs in-process serving."""
    rng = random.Random(17)
    system = build_system(17, engine)
    model = ReferenceModel.from_digraph(random_graph(28, 90, seed=17))
    inprocess_pim = PIMSystem(system.config.cost_model)
    pool = WorkerPool(system, workers=2, engine=engine)
    try:
        for step in range(10):
            context = f"(engine={engine} step={step})"
            # Writer churn between query rounds publishes fresh epochs.
            inserts = [
                (rng.randrange(40), rng.randrange(40))
                for _ in range(rng.randint(1, 4))
            ]
            labels = [rng.choice((0, 1, 2, 3)) for _ in inserts]
            system.insert_edges(list(inserts), labels=list(labels))
            for (src, dst), label in zip(inserts, labels):
                model.insert(src, dst, label)
            if rng.random() < 0.4 and model.num_edges:
                deletes = [rng.choice(model.edges())]
                system.delete_edges(list(deletes))
                for src, dst in deletes:
                    model.delete(src, dst)

            for _ in range(3):
                if rng.random() < 0.6:
                    sources = [
                        rng.randrange(45) for _ in range(rng.randint(1, 5))
                    ]
                    hops = rng.randint(1, 3)
                    query = KHopQuery(hops=hops, sources=sources)
                    expected = model.khop(sources, hops)
                else:
                    sources = [
                        rng.randrange(30) for _ in range(rng.randint(1, 3))
                    ]
                    expression = rng.choice(RPQ_EXPRESSIONS)
                    query = RPQuery(expression, sources)
                    expected = model.rpq(expression, sources, LABEL_NAMES)

                pooled, pooled_stats, pooled_epoch = pool.execute(query)

                epoch = system._epochs.pin()
                try:
                    view = EpochView(epoch, inprocess_pim)
                    local, local_stats = (
                        system._query_processor.execute_on_view(query, view)
                    )
                finally:
                    system._epochs.unpin(epoch)

                assert pooled == local, f"results differ {context}"
                assert stats_fingerprint(pooled_stats) == stats_fingerprint(
                    local_stats
                ), f"stats differ {context}"
                assert pooled_epoch == epoch.epoch_id, (
                    f"epoch stamp differs {context}"
                )
                assert pooled.destinations == expected, (
                    f"pool diverged from the oracle {context}"
                )
        # The pool's merged accounting platform is bit-identical to the
        # in-process platform that charged the same executions.
        assert pool.pim.capture_lifetime() == inprocess_pim.capture_lifetime()
    finally:
        pool.close()
    assert system._epochs.pins() == 0, "pool left epoch pins behind"


# ----------------------------------------------------------------------
# The parallel scheduler end to end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_parallel_scheduler_matches_model(engine):
    system = build_system(3, engine)
    model = ReferenceModel.from_digraph(random_graph(28, 90, seed=3))
    with system.serve(parallel=2) as scheduler:
        assert scheduler.parallel_workers == 2
        futures = [
            (source, hops, scheduler.submit(source, hops))
            for source in range(10)
            for hops in (1, 2)
        ]
        for source, hops, future in futures:
            destinations, stats = future.outcome(timeout=60)
            assert destinations == model.khop([source], hops)[0], (
                f"parallel scheduler diverged at source={source} hops={hops}"
            )
            assert stats.counters.get("coalesced_queries", 0) >= 1
            assert "epoch" in stats.counters
        assert scheduler.queries_served == len(futures)
        assert scheduler.batches_executed < len(futures), (
            "scattered batches should still coalesce"
        )
    # close() tears the pool down: every pin released, nothing shared left.
    assert system._epochs.pins() == 0
    # Idempotent close (and double close via the context manager above).
    scheduler.close()


def test_parallel_default_from_config():
    """``MoctopusConfig.serve_workers`` is the ``serve()`` default."""
    graph = random_graph(20, 50, seed=5)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4), serve_workers=1
    )
    system = Moctopus.from_graph(graph, config)
    expected, _ = system.batch_khop([0], 1, auto_migrate=False)
    with system.serve() as scheduler:
        assert scheduler.parallel_workers == 1
        assert scheduler.query(0, 1) == expected.destinations_of(0)
    with system.serve(parallel=0) as scheduler:
        assert scheduler.parallel_workers == 0


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
def _our_segments() -> list:
    return glob.glob("/dev/shm/moctopus-*") if os.path.isdir("/dev/shm") else []


def test_pool_retires_superseded_exports():
    """Writer churn: old exports are retired (unlinked, unpinned) once
    every worker detaches; only the latest stays resident."""
    system = build_system(9, "vectorized")
    pool = WorkerPool(system, workers=2)
    try:
        for round_id in range(6):
            system.insert_edges([(100 + round_id, 200 + round_id)])
            pool.execute(KHopQuery(hops=1, sources=[0]))
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if len(pool.exported_epoch_ids()) <= 1:
                break
            time.sleep(0.02)
        assert len(pool.exported_epoch_ids()) <= 1, (
            "superseded epoch exports were not retired"
        )
        assert system._epochs.pins() == len(pool.exported_epoch_ids())
    finally:
        pool.close()
    assert system._epochs.pins() == 0
    assert pool.exported_epoch_ids() == []


def test_export_busy_at_supersede_retires_once_drained():
    """An export still executing when a newer epoch is exported must be
    retired when its last in-flight task settles — not held (pin +
    segment) until the next publish or pool close."""
    system = build_system(12, "python")
    pool = WorkerPool(system, workers=2)
    try:
        # A heavy batch keeps epoch A in flight while the writer
        # publishes B and new work exports it (A is skipped as busy).
        slow = pool.submit(KHopQuery(hops=4, sources=list(range(20))))
        system.insert_edges([(0, 300)])
        fast = pool.submit(KHopQuery(hops=1, sources=[0]))
        slow.outcome(timeout=120)
        fast.outcome(timeout=120)
        # Once A drains, its retire must happen with no further publish.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if len(pool.exported_epoch_ids()) <= 1:
                break
            time.sleep(0.02)
        assert len(pool.exported_epoch_ids()) <= 1, (
            "drained superseded export was never retired"
        )
        assert system._epochs.pins() == len(pool.exported_epoch_ids())
    finally:
        pool.close()
    assert system._epochs.pins() == 0


def test_parallel_scheduler_rejects_bad_engine_before_forking():
    """A bad engine name fails fast — before any worker process (which
    the aborted constructor could never close) is forked."""
    system = build_system(8, "python")
    with pytest.raises(ValueError, match="unknown execution engine"):
        system.serve(parallel=2, engine="vectorised")  # typo


def test_pool_worker_error_propagates():
    system = build_system(2, "python")
    pool = WorkerPool(system, workers=1)
    try:
        ticket = pool.submit(KHopQuery(hops=1, sources=[0]), engine="bogus")
        with pytest.raises(WorkerPoolError):
            ticket.outcome(timeout=30)
        # The pool survives a task failure: later work still completes.
        result, _, _ = pool.execute(KHopQuery(hops=1, sources=[0]))
        assert result.sources == [0]
    finally:
        pool.close()
    assert system._epochs.pins() == 0


def test_reap_stale_segments_collects_dead_owners(tmp_path):
    """A guard file whose owner died has its segments unlinked."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(
        create=True, name=f"moctopus-reaptest-{os.getpid()}", size=64
    )
    segment.close()
    # A real, certainly-dead pid: a child that already exited.
    probe = subprocess.Popen(["true"])
    probe.wait()
    guard_path = os.path.join(
        _guard_directory(), f"{_GUARD_PREFIX}{probe.pid}-dead{_GUARD_SUFFIX}"
    )
    with open(guard_path, "w", encoding="utf-8") as handle:
        json.dump({"pid": probe.pid, "segments": [segment.name]}, handle)
    reaped = reap_stale_segments()
    assert segment.name in reaped
    assert not os.path.exists(guard_path)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment.name)


def test_reap_leaves_live_owners_alone(tmp_path):
    """Our own guard files (live pid) must never be reaped."""
    from repro.parallel.shm import SegmentGuard

    guard = SegmentGuard()
    guard.add("moctopus-live-probe")
    try:
        reaped = reap_stale_segments()
        assert "moctopus-live-probe" not in reaped
        assert os.path.exists(guard.path)
    finally:
        guard.discard("moctopus-live-probe")
        guard.close()
