"""Tests for the CSR adjacency used by the RedisGraph-like baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRMatrix, DiGraph


def test_from_graph_rows_are_sorted():
    graph = DiGraph.from_edges([(0, 3), (0, 1), (0, 2), (2, 0)])
    csr = CSRMatrix.from_graph(graph)
    assert csr.num_rows == 4
    assert csr.nnz == 4
    assert list(csr.row(0)) == [1, 2, 3]
    assert csr.row_length(0) == 3
    assert csr.row_length(1) == 0


def test_has_entry_binary_search():
    csr = CSRMatrix.from_edges([(0, 2), (0, 5), (1, 0)])
    assert csr.has_entry(0, 5)
    assert not csr.has_entry(0, 3)
    assert csr.has_entry(1, 0)


def test_out_degrees_vector():
    csr = CSRMatrix.from_edges([(0, 1), (0, 2), (1, 2)])
    assert list(csr.out_degrees()) == [2, 1, 0]


def test_expand_frontier_union_and_row_count():
    csr = CSRMatrix.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
    destinations, rows_touched = csr.expand_frontier([0, 1])
    assert list(destinations) == [1, 2]
    assert rows_touched == 2
    destinations, rows_touched = csr.expand_frontier([99])
    assert len(destinations) == 0
    assert rows_touched == 0


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CSRMatrix([1, 2], [0])
    with pytest.raises(ValueError):
        CSRMatrix([0, 2], [0])
    with pytest.raises(ValueError):
        CSRMatrix(np.zeros((2, 2)), [0])


def test_empty_graph():
    csr = CSRMatrix.from_graph(DiGraph())
    assert csr.num_rows == 0
    assert csr.nnz == 0
