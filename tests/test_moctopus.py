"""Tests for the Moctopus system facade: partitioning, queries, updates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Moctopus, MoctopusConfig
from repro.graph import DiGraph, random_graph
from repro.partition.base import HOST_PARTITION
from repro.pim import CostModel
from repro.rpq import KHopQuery, RPQuery, evaluate_khop, evaluate_rpq, random_source_batch


def small_system(graph, **config_kwargs) -> Moctopus:
    config = MoctopusConfig(cost_model=CostModel(num_modules=8), **config_kwargs)
    return Moctopus.from_graph(graph, config)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        MoctopusConfig(pim_placement="round-robin")
    with pytest.raises(ValueError):
        MoctopusConfig(misplacement_threshold=0.0)
    with pytest.raises(ValueError):
        MoctopusConfig(capacity_factor=0.5)
    with pytest.raises(ValueError):
        MoctopusConfig(high_degree_threshold=0)
    with pytest.raises(ValueError):
        MoctopusConfig(migration_capacity_factor=0.2)


def test_pim_hash_config_disables_moctopus_features():
    config = MoctopusConfig.pim_hash_config()
    assert config.pim_placement == "hash"
    assert not config.labor_division_enabled
    assert not config.enable_migration


# ----------------------------------------------------------------------
# Loading and partitioning
# ----------------------------------------------------------------------
def test_load_graph_places_every_node(small_community):
    system = small_system(small_community)
    assert system.num_nodes == small_community.num_nodes
    assert system.num_edges == small_community.num_edges
    for node in small_community.nodes():
        assert system.partition_of(node) is not None
    counts = system.module_node_counts()
    assert sum(counts) + system.host_node_count() == system.num_nodes


def test_high_degree_nodes_live_on_host(small_power_law):
    system = small_system(small_power_law)
    hubs = small_power_law.high_degree_nodes(system.config.high_degree_threshold)
    assert hubs, "fixture should contain hubs"
    for hub in hubs:
        assert system.partition_of(hub) == HOST_PARTITION
    assert system.host_node_count() >= len(hubs)
    assert system.partition_statistics()["promotions"] > 0


def test_no_host_nodes_without_labor_division(small_power_law):
    system = small_system(small_power_law, high_degree_threshold=None)
    assert system.host_node_count() == 0


def test_partition_quality_balance(small_community):
    system = small_system(small_community)
    quality = system.partition_quality()
    assert quality.balance_factor <= 2.0
    assert 0.0 <= quality.locality_fraction <= 1.0


def test_isolated_nodes_are_assigned():
    graph = DiGraph(num_nodes=5)
    graph.add_edge(0, 1)
    system = small_system(graph)
    for node in range(5):
        assert system.partition_of(node) is not None


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def test_batch_khop_matches_reference(tiny_graph):
    system = small_system(tiny_graph)
    sources = [2, 3]
    result, stats = system.batch_khop(sources, hops=2)
    reference = evaluate_khop(tiny_graph, KHopQuery(hops=2, sources=sources))
    assert result == reference
    assert stats.total_time > 0
    # The paper's Figure 2 example: 2-hop from node 2 reaches 6, 8, 9 (and 1).
    assert {6, 8, 9} <= result.destinations_of(0)


def test_batch_khop_on_road_graph(small_road):
    system = small_system(small_road)
    sources = random_source_batch(list(small_road.nodes()), 16, seed=5)
    for hops in (1, 2, 4):
        result, stats = system.batch_khop(sources, hops)
        reference = evaluate_khop(small_road, KHopQuery(hops=hops, sources=sources))
        assert result == reference
        assert stats.pim_time > 0


def test_unknown_source_yields_empty_result(tiny_graph):
    system = small_system(tiny_graph)
    result, _ = system.batch_khop([12345], hops=2)
    assert result.destinations == [set()]


def test_execute_dispatches_rpq_and_khop(tiny_graph):
    system = small_system(tiny_graph)
    khop_result, _ = system.execute(KHopQuery(hops=1, sources=[1]))
    assert khop_result.destinations_of(0) == set(tiny_graph.successors(1))
    rpq_result, _ = system.execute(RPQuery(".{2}", [1]))
    reference = evaluate_rpq(tiny_graph, RPQuery(".{2}", [1]))
    assert rpq_result == reference
    with pytest.raises(TypeError):
        system.execute(42)


def test_general_rpq_with_kleene_matches_reference(small_community):
    system = small_system(small_community)
    sources = random_source_batch(list(small_community.nodes()), 4, seed=2)
    query = RPQuery(".+", sources)
    result, stats = system.execute(query)
    reference = evaluate_rpq(small_community, query)
    assert result == reference
    assert stats.total_time > 0


def test_labeled_rpq_matches_reference():
    graph = DiGraph()
    graph.add_edge(0, 1, label=1)
    graph.add_edge(1, 2, label=2)
    graph.add_edge(0, 2, label=2)
    graph.add_edge(2, 3, label=1)
    labels = {1: "a", 2: "b"}
    system = Moctopus.from_graph(
        graph, MoctopusConfig(cost_model=CostModel(num_modules=4)), label_names=labels
    )
    query = RPQuery("a/b", [0])
    result, _ = system.execute(query)
    assert result == evaluate_rpq(graph, query, label_names=labels)


def test_migration_reduces_pending_reports(small_community):
    system = small_system(small_community)
    sources = random_source_batch(list(small_community.nodes()), 32, seed=1)
    system.batch_khop(sources, hops=2, auto_migrate=False)
    moved, stats = system.run_maintenance()
    assert stats.counters["migrations"] == moved
    assert system.partition_statistics()["locality_migrations"] == moved


def test_disabling_migration_keeps_placement_static(small_community):
    system = small_system(small_community, enable_migration=False)
    before = dict(system._partitioner.partition_map.items())
    sources = random_source_batch(list(small_community.nodes()), 16, seed=3)
    system.batch_khop(sources, hops=2)
    after = dict(system._partitioner.partition_map.items())
    assert before == after


# ----------------------------------------------------------------------
# Updates
# ----------------------------------------------------------------------
def test_insert_and_delete_edges_update_state(tiny_graph):
    system = small_system(tiny_graph)
    stats = system.insert_edges([(9, 0), (7, 1)])
    assert system.has_edge(9, 0) and system.has_edge(7, 1)
    assert stats.counters["updates"] == 2
    result, _ = system.batch_khop([9], hops=1)
    assert result.destinations_of(0) == {0}
    delete_stats = system.delete_edges([(9, 0)])
    assert not system.has_edge(9, 0)
    assert delete_stats.total_time > 0


def test_insert_new_node_uses_first_neighbor_partition(tiny_graph):
    system = small_system(tiny_graph)
    target_partition = system.partition_of(5)
    system.insert_edges([(777, 5)])
    assert system.partition_of(777) is not None
    result, _ = system.batch_khop([777], hops=1)
    assert result.destinations_of(0) == {5}


def test_updates_promote_nodes_crossing_threshold():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    system = Moctopus.from_graph(
        graph,
        MoctopusConfig(cost_model=CostModel(num_modules=4), high_degree_threshold=4),
    )
    assert system.partition_of(0) != HOST_PARTITION
    system.insert_edges([(0, dst) for dst in range(10, 16)])
    assert system.partition_of(0) == HOST_PARTITION
    # The promoted row answers queries from the host storage.
    result, _ = system.batch_khop([0], hops=1)
    assert result.destinations_of(0) == set(system.graph.successors(0))


def test_query_after_many_updates_matches_reference(small_road):
    system = small_system(small_road)
    from repro.graph import UpdateStream

    stream = UpdateStream(small_road, seed=9)
    inserts = [op.edge for op in stream.insertion_batch(64)]
    deletes = [op.edge for op in stream.deletion_batch(64)]
    system.insert_edges(inserts)
    system.delete_edges(deletes)
    sources = random_source_batch(list(small_road.nodes()), 16, seed=4)
    result, _ = system.batch_khop(sources, hops=2)
    reference = evaluate_khop(system.graph, KHopQuery(hops=2, sources=sources))
    assert result == reference


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=3))
def test_property_khop_matches_reference_on_random_graphs(seed, hops):
    graph = random_graph(60, 220, seed=seed)
    system = Moctopus.from_graph(
        graph, MoctopusConfig(cost_model=CostModel(num_modules=4))
    )
    sources = random_source_batch(list(graph.nodes()), 8, seed=seed)
    result, stats = system.batch_khop(sources, hops)
    reference = evaluate_khop(graph, KHopQuery(hops=hops, sources=sources))
    assert result == reference
    assert stats.total_time >= 0
