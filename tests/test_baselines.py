"""Tests for the RedisGraph-like baseline and the PIM-hash contrast system."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PIMHashSystem, RedisGraphEngine
from repro.graph import DiGraph, random_graph
from repro.partition.base import HOST_PARTITION
from repro.pim import CostModel
from repro.rpq import KHopQuery, RPQuery, evaluate_khop, evaluate_rpq, random_source_batch


# ----------------------------------------------------------------------
# RedisGraph-like engine
# ----------------------------------------------------------------------
def test_redisgraph_loads_and_answers_khop(tiny_graph):
    engine = RedisGraphEngine.from_graph(tiny_graph)
    assert engine.num_nodes == tiny_graph.num_nodes
    assert engine.num_edges == tiny_graph.num_edges
    sources = [2, 3]
    result, stats = engine.batch_khop(sources, hops=2)
    reference = evaluate_khop(tiny_graph, KHopQuery(hops=2, sources=sources))
    assert result == reference
    assert stats.host_time > 0
    assert stats.pim_time == 0 and stats.ipc_time == 0 and stats.cpc_time == 0


def test_redisgraph_rpq_matches_reference(small_community):
    engine = RedisGraphEngine.from_graph(small_community)
    sources = random_source_batch(list(small_community.nodes()), 4, seed=6)
    query = RPQuery(".{2}", sources)
    result, _ = engine.execute(query)
    assert result == evaluate_rpq(small_community, query)
    kleene = RPQuery(".+", sources[:2])
    result, _ = engine.execute(kleene)
    assert result == evaluate_rpq(small_community, kleene)
    with pytest.raises(TypeError):
        engine.execute("nope")


def test_redisgraph_labeled_rpq():
    graph = DiGraph()
    graph.add_edge(0, 1, label=1)
    graph.add_edge(1, 2, label=2)
    graph.add_edge(0, 2, label=2)
    labels = {1: "a", 2: "b"}
    engine = RedisGraphEngine.from_graph(graph, label_names=labels)
    result, _ = engine.execute(RPQuery("a/b", [0]))
    assert result.destinations == [{2}]


def test_redisgraph_updates_change_data_and_charge_host_only(tiny_graph):
    engine = RedisGraphEngine.from_graph(tiny_graph)
    stats = engine.insert_edges([(9, 0), (9, 1), (9, 0)])
    assert engine.has_edge(9, 0) and engine.has_edge(9, 1)
    assert stats.host_time > 0 and stats.cpc_time == 0
    assert stats.counters["updates"] == 3
    delete_stats = engine.delete_edges([(9, 0), (42, 42)])
    assert not engine.has_edge(9, 0)
    assert delete_stats.host_time > 0
    assert engine.next_hops(9) == [1]


def test_redisgraph_working_set_controls_access_cost():
    graph = random_graph(200, 2000, seed=3)
    sources = random_source_batch(list(graph.nodes()), 16, seed=0)
    small_cache = RedisGraphEngine.from_graph(graph, cost_model=CostModel(host_llc_bytes=1024))
    big_cache = RedisGraphEngine.from_graph(graph, cost_model=CostModel(host_llc_bytes=1 << 30))
    _, slow = small_cache.batch_khop(sources, hops=2)
    _, fast = big_cache.batch_khop(sources, hops=2)
    assert slow.total_time > fast.total_time


# ----------------------------------------------------------------------
# PIM-hash system
# ----------------------------------------------------------------------
def test_pim_hash_uses_hash_partitioning_and_no_host(small_power_law):
    system = PIMHashSystem.from_graph(small_power_law, cost_model=CostModel(num_modules=8))
    assert system.host_node_count() == 0
    for node in small_power_law.high_degree_nodes(16):
        assert system.partition_of(node) != HOST_PARTITION
    assert system.partition_statistics()["greedy_placements"] == 0


def test_pim_hash_results_match_reference(small_power_law):
    system = PIMHashSystem.from_graph(small_power_law, cost_model=CostModel(num_modules=8))
    sources = random_source_batch(list(small_power_law.nodes()), 12, seed=7)
    result, stats = system.batch_khop(sources, hops=2)
    reference = evaluate_khop(small_power_law, KHopQuery(hops=2, sources=sources))
    assert result == reference
    assert stats.pim_time > 0


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_all_three_engines_agree(seed):
    graph = random_graph(50, 200, seed=seed)
    sources = random_source_batch(list(graph.nodes()), 6, seed=seed)
    cost_model = CostModel(num_modules=4)
    from repro.core import Moctopus, MoctopusConfig

    moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=cost_model))
    pim_hash = PIMHashSystem.from_graph(graph, cost_model=cost_model)
    redis = RedisGraphEngine.from_graph(graph, cost_model=cost_model)
    for hops in (1, 2):
        expected = evaluate_khop(graph, KHopQuery(hops=hops, sources=sources))
        assert moctopus.batch_khop(sources, hops)[0] == expected
        assert pim_hash.batch_khop(sources, hops)[0] == expected
        assert redis.batch_khop(sources, hops)[0] == expected
