"""Tests for the path-expression parser."""

from __future__ import annotations

import pytest

from repro.rpq import (
    Concat,
    Label,
    RegexSyntaxError,
    Repeat,
    Union,
    khop_expression,
    parse_path_expression,
)


def test_single_label():
    node = parse_path_expression("knows")
    assert isinstance(node, Label)
    assert node.name == "knows"
    assert not node.is_wildcard
    assert node.fixed_length() == 1


def test_wildcard_label():
    node = parse_path_expression(".")
    assert isinstance(node, Label)
    assert node.is_wildcard


def test_concatenation_with_slash_and_juxtaposition():
    slash = parse_path_expression("a/b/c")
    juxtaposed = parse_path_expression("a b c")
    for node in (slash, juxtaposed):
        assert isinstance(node, Concat)
        assert [part.name for part in node.parts] == ["a", "b", "c"]
        assert node.fixed_length() == 3


def test_alternation():
    node = parse_path_expression("a|b|c")
    assert isinstance(node, Union)
    assert len(node.options) == 3
    assert node.is_fixed_length()
    assert node.fixed_length() == 1


def test_alternation_with_different_lengths_is_not_fixed():
    node = parse_path_expression("a|(b/c)")
    assert isinstance(node, Union)
    assert not node.is_fixed_length()
    assert node.fixed_length() is None


def test_kleene_star_plus_optional():
    star = parse_path_expression("a*")
    plus = parse_path_expression("a+")
    optional = parse_path_expression("a?")
    assert isinstance(star, Repeat) and star.minimum == 0 and star.maximum is None
    assert isinstance(plus, Repeat) and plus.minimum == 1 and plus.maximum is None
    assert isinstance(optional, Repeat) and optional.maximum == 1
    assert not star.is_fixed_length()


def test_bounded_repetition():
    exact = parse_path_expression("a{3}")
    ranged = parse_path_expression("a{2,4}")
    unbounded = parse_path_expression("a{2,}")
    assert exact.minimum == exact.maximum == 3
    assert exact.fixed_length() == 3
    assert ranged.minimum == 2 and ranged.maximum == 4
    assert unbounded.maximum is None


def test_khop_expression_helper():
    assert khop_expression(3) == ".{3}"
    node = parse_path_expression(khop_expression(3))
    assert node.fixed_length() == 3
    with pytest.raises(ValueError):
        khop_expression(0)


def test_grouping_and_nesting():
    node = parse_path_expression("(a/b)+|c")
    assert isinstance(node, Union)
    repeat = node.options[0]
    assert isinstance(repeat, Repeat)
    assert isinstance(repeat.inner, Concat)


def test_labels_with_punctuation():
    node = parse_path_expression("rdf:type/foaf-knows")
    assert isinstance(node, Concat)
    assert node.parts[0].name == "rdf:type"
    assert node.parts[1].name == "foaf-knows"


@pytest.mark.parametrize(
    "expression",
    ["", "a|", "(a", "a)", "a{", "a{x}", "a{3,2}", "*", "|a", "a}"],
)
def test_malformed_expressions_raise(expression):
    with pytest.raises(RegexSyntaxError):
        parse_path_expression(expression)


def test_unexpected_character_raises():
    with pytest.raises(RegexSyntaxError):
        parse_path_expression("a@b")


def test_bare_underscore_is_wildcard():
    node = parse_path_expression("_")
    assert isinstance(node, Label)
    assert node.is_wildcard


def test_leading_underscore_starts_an_identifier():
    # Regression: the tokenizer used to treat *any* ``_`` as the
    # wildcard, so ``_foo`` silently parsed as ``./foo``.
    node = parse_path_expression("_foo")
    assert isinstance(node, Label)
    assert node.name == "_foo"
    assert not node.is_wildcard
    assert node.fixed_length() == 1


def test_interior_underscore_identifiers():
    node = parse_path_expression("foo_bar/_private")
    assert isinstance(node, Concat)
    assert [part.name for part in node.parts] == ["foo_bar", "_private"]
    assert not any(part.is_wildcard for part in node.parts)


def test_underscore_then_operator_is_wildcard():
    # ``_`` only starts an identifier when an identifier character
    # follows; before an operator it is still the SPARQL-style wildcard.
    node = parse_path_expression("_/knows")
    assert isinstance(node, Concat)
    assert node.parts[0].is_wildcard
    assert node.parts[1].name == "knows"


def test_reverse_expression_round_trip():
    from repro.rpq import reverse_expression

    chain = parse_path_expression("a/b/c")
    reversed_chain = reverse_expression(chain)
    assert [part.name for part in reversed_chain.parts] == ["c", "b", "a"]
    # An involution: reversing twice restores the original shape.
    assert reverse_expression(reversed_chain) == chain
    nested = parse_path_expression("(a/b|c)+/d")
    assert reverse_expression(reverse_expression(nested)) == nested
