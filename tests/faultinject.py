"""Deterministic crash-point fault injection for the durability suite.

Every durable byte a Moctopus system writes — WAL records *and*
checkpoint files — goes through one function,
:func:`repro.durability.wal.wal_write`, and every durable *directory
entry* (WAL segment creation, checkpoint publication) through its
sibling :func:`repro.durability.wal.fsync_directory`.  The harness
swaps both for counting wrappers that kill the "process" (raises
:class:`SimulatedCrash`) at a chosen write or directory fsync,
optionally after only a prefix of the payload has reached the file.
Because the write sequence of a fixed workload is deterministic,
enumerating ``(index, tear mode)`` pairs visits **every** WAL/checkpoint
boundary, including torn records, torn checkpoints and unsynced
directory entries — no timing, no randomness.

The other half of the harness is the equivalence check: a
:func:`fingerprint` captures exactly the state the acceptance criteria
name — the CSR snapshot arrays of every storage (values *and*
byte-accounting constants), the owner table, the placement/migration
counters and the graph totals — and :func:`assert_fingerprints_equal`
diffs two of them with a useful message.  Volatile state (pending
misplacement reports, lifetime platform counters, epoch ids) is
deliberately excluded: it never influences query results or
per-operation statistics, which the tests compare separately.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.system import Moctopus
from repro.durability import wal as wal_module
from repro.partition.owner_index import OwnerIndex
from repro.pim.stats import ExecutionStats

#: Tear modes: crash before any byte, after half the payload, or after
#: the full payload but before the append "returns" (the next write is
#: the one that never happens).
TEAR_BEFORE = "before"
TEAR_PARTIAL = "partial"
TEAR_AFTER = "after"
TEAR_MODES = (TEAR_BEFORE, TEAR_PARTIAL, TEAR_AFTER)


class SimulatedCrash(Exception):
    """The injected process death (escapes the system call under test)."""


class FaultInjector:
    """Monkeypatch the durable-write hooks to crash at a chosen boundary.

    Two independent crash axes, both 0-based and both discoverable with
    a counting dry run:

    * ``target``/``mode`` — byte writes through ``wal_write`` (WAL
      records and checkpoint files), torn with ``TEAR_PARTIAL``;
    * ``fsync_target``/``fsync_mode`` — directory fsyncs through
      ``fsync_directory`` (segment creation, checkpoint publication —
      the power-loss directory-entry contract).  A directory fsync has
      no payload to tear, so ``TEAR_PARTIAL`` behaves like
      ``TEAR_BEFORE``.

    Use as a context manager.  With no targets it only counts, so a dry
    run discovers how many crash points a workload has:

    .. code-block:: python

        with FaultInjector() as counter:
            run_workload(...)
        for index in range(counter.writes_seen):
            for mode in TEAR_MODES:
                with FaultInjector(target=index, mode=mode):
                    with pytest.raises(SimulatedCrash):
                        run_workload(...)
                recovered = Moctopus.recover(path)
    """

    def __init__(
        self,
        target: Optional[int] = None,
        mode: str = TEAR_BEFORE,
        fsync_target: Optional[int] = None,
        fsync_mode: str = TEAR_BEFORE,
    ) -> None:
        if mode not in TEAR_MODES or fsync_mode not in TEAR_MODES:
            raise ValueError(f"unknown tear mode {mode!r}/{fsync_mode!r}")
        self.target = target
        self.mode = mode
        self.fsync_target = fsync_target
        self.fsync_mode = fsync_mode
        self.writes_seen = 0
        self.fsyncs_seen = 0
        self._original = None
        self._original_fsync = None

    def __enter__(self) -> "FaultInjector":
        self._original = wal_module.wal_write
        self._original_fsync = wal_module.fsync_directory

        def injected(handle, payload: bytes) -> None:
            index = self.writes_seen
            self.writes_seen += 1
            if self.target is not None and index == self.target:
                if self.mode == TEAR_PARTIAL:
                    self._original(handle, payload[: len(payload) // 2])
                elif self.mode == TEAR_AFTER:
                    self._original(handle, payload)
                raise SimulatedCrash(
                    f"injected crash at write {index} ({self.mode})"
                )
            self._original(handle, payload)

        def injected_fsync(path: str) -> None:
            index = self.fsyncs_seen
            self.fsyncs_seen += 1
            if self.fsync_target is not None and index == self.fsync_target:
                if self.fsync_mode == TEAR_AFTER:
                    self._original_fsync(path)
                raise SimulatedCrash(
                    f"injected crash at directory fsync {index} "
                    f"({self.fsync_mode})"
                )
            self._original_fsync(path)

        wal_module.wal_write = injected
        wal_module.fsync_directory = injected_fsync
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wal_module.wal_write = self._original
        wal_module.fsync_directory = self._original_fsync


# ----------------------------------------------------------------------
# State fingerprints
# ----------------------------------------------------------------------
def fingerprint(system: Moctopus) -> Dict:
    """The durable-equivalence view of a system's state."""
    snapshots = []
    storages = list(system._module_storages) + [system._host_storage]
    for storage in storages:
        snapshot = storage.to_csr()
        snapshots.append(
            {
                "node_ids": snapshot.node_ids.copy(),
                "indptr": snapshot.indptr.copy(),
                "dsts": snapshot.dsts.copy(),
                "labels": snapshot.labels.copy(),
                "local_counts": snapshot.local_counts.copy(),
                "bytes_per_entry": snapshot.bytes_per_entry,
                "working_set_bytes": snapshot.working_set_bytes,
            }
        )
    # The literal "same OwnerIndex" criterion: refresh an index from the
    # live partition map and take its canonical (nodes, partitions) form.
    owner_index = OwnerIndex()
    owner_index.refresh(system._partitioner.partition_map)
    owner_nodes, owner_parts = owner_index.table()
    return {
        "snapshots": snapshots,
        "owners": list(zip(owner_nodes.tolist(), owner_parts.tolist())),
        "partition_statistics": system.partition_statistics(),
        "batches_applied": system._update_processor.batches_applied,
        "num_nodes": system.num_nodes,
        "num_edges": system.num_edges,
    }


def assert_fingerprints_equal(actual: Dict, expected: Dict, context: str) -> None:
    """Bit-exact comparison of two fingerprints with a located message."""
    assert actual["owners"] == expected["owners"], f"{context}: owner table differs"
    assert (
        actual["partition_statistics"] == expected["partition_statistics"]
    ), f"{context}: partition statistics differ"
    assert actual["num_nodes"] == expected["num_nodes"], f"{context}: node count"
    assert actual["num_edges"] == expected["num_edges"], f"{context}: edge count"
    assert actual["batches_applied"] == expected["batches_applied"], (
        f"{context}: applied-batch counter differs"
    )
    for index, (left, right) in enumerate(
        zip(actual["snapshots"], expected["snapshots"])
    ):
        for key in ("node_ids", "indptr", "dsts", "labels", "local_counts"):
            assert np.array_equal(left[key], right[key]), (
                f"{context}: storage {index} array {key!r} differs"
            )
        for key in ("bytes_per_entry", "working_set_bytes"):
            assert left[key] == right[key], (
                f"{context}: storage {index} {key} differs "
                f"({left[key]} != {right[key]})"
            )


def assert_stats_equal(
    actual: ExecutionStats, expected: ExecutionStats, context: str
) -> None:
    """Bit-exact comparison of two per-operation statistics objects."""
    assert actual.breakdown() == expected.breakdown(), (
        f"{context}: time breakdown differs"
    )
    assert actual.counters == expected.counters, f"{context}: counters differ"
    assert (
        actual.cpc.bytes_moved == expected.cpc.bytes_moved
        and actual.cpc.transfers == expected.cpc.transfers
    ), f"{context}: CPC traffic differs"
    assert (
        actual.ipc.bytes_moved == expected.ipc.bytes_moved
        and actual.ipc.transfers == expected.ipc.transfers
    ), f"{context}: IPC traffic differs"
    assert actual.phase_pim_times == expected.phase_pim_times, (
        f"{context}: phase PIM times differ"
    )


# ----------------------------------------------------------------------
# Workload scripting
# ----------------------------------------------------------------------
#: A workload step:
#:   ("batch",  ops, labels)    -> apply_updates            (1 WAL record)
#:   ("qm",     sources, hops)  -> query (no migration) +
#:                                 run_maintenance          (0-1 records)
#:   ("checkpoint",)            -> system.checkpoint()      (0 records)
Step = Tuple


def run_step(system: Moctopus, step: Step) -> Optional[ExecutionStats]:
    """Execute one workload step on ``system``."""
    kind = step[0]
    if kind == "batch":
        _, ops, labels = step
        return system.apply_updates(list(ops), labels=labels)
    if kind == "qm":
        _, sources, hops = step
        system.batch_khop(list(sources), hops, auto_migrate=False)
        system.run_maintenance()
        return None
    if kind == "checkpoint":
        system.checkpoint()
        return None
    raise ValueError(f"unknown step kind {kind!r}")


def run_reference(
    graph, steps: List[Step], config
) -> Tuple[Moctopus, List[Dict], List[int]]:
    """Run the workload with durability off, capturing per-LSN fingerprints.

    Returns ``(system, fingerprints, cumulative_records)`` where
    ``fingerprints[lsn]`` is the state after the durable prefix of
    ``lsn`` records (index 0 = the empty system) and
    ``cumulative_records[k]`` is how many records the durable run will
    have appended once step ``k`` (0 = the bootstrap) completed.  The
    reference derives record counts without any I/O: a bootstrap or
    batch step always appends one record, a maintenance pass appends one
    exactly when it migrated something — both runs are in lockstep, so
    the counts agree.
    """
    system = Moctopus(config=config)
    fingerprints = [fingerprint(system)]
    cumulative = []

    system.load_graph(graph)
    fingerprints.append(fingerprint(system))
    cumulative.append(1)

    for step in steps:
        if step[0] == "batch":
            run_step(system, step)
            fingerprints.append(fingerprint(system))
            cumulative.append(cumulative[-1] + 1)
        elif step[0] == "qm":
            _, sources, hops = step
            system.batch_khop(list(sources), hops, auto_migrate=False)
            # A maintenance pass journals a record whenever it consumed
            # reports (even zero-move passes: replaying the empty record
            # clears checkpoint-restored reports the pass already ate).
            had_reports = system._migrator.pending_reports > 0
            moved, _ = system.run_maintenance()
            if moved or had_reports:
                fingerprints.append(fingerprint(system))
                cumulative.append(cumulative[-1] + 1)
            else:
                cumulative.append(cumulative[-1])
        elif step[0] == "checkpoint":
            cumulative.append(cumulative[-1])
        else:
            raise ValueError(f"unknown step kind {step[0]!r}")
    return system, fingerprints, cumulative


def run_durable(graph, steps: List[Step], config) -> Moctopus:
    """Run the whole workload with durability on (may raise SimulatedCrash).

    On a crash the partially-run system is abandoned exactly as a dead
    process would leave it — its in-memory state is discarded without
    ``close()`` and only the bytes already written survive.
    """
    system = Moctopus(config=config)
    system.load_graph(graph)
    for step in steps:
        run_step(system, step)
    return system


def resume_index(cumulative: List[int], applied_lsn: int) -> int:
    """First step whose effects are *not* covered by ``applied_lsn``.

    ``cumulative[k]`` counts records through step ``k`` (k=0 is the
    bootstrap); a step is covered when its records are all durable.
    Steps that append nothing (clean maintenance passes, checkpoints)
    are idempotent to skip or re-run — re-running keeps both systems in
    lockstep, so resume re-executes everything past the last covered
    record-producing step.
    """
    for index, count in enumerate(cumulative):
        if count > applied_lsn:
            return index
    return len(cumulative)
