"""Tests for the semiring registry."""

from __future__ import annotations

import pytest

from repro.graph import BOOLEAN, COUNTING, MIN_PLUS, get_semiring
from repro.graph.semiring import SEMIRINGS


def test_registry_contains_the_three_semirings():
    assert set(SEMIRINGS) == {"boolean", "counting", "min_plus"}


def test_get_semiring_by_name():
    assert get_semiring("boolean") is BOOLEAN
    assert get_semiring("counting") is COUNTING
    assert get_semiring("min_plus") is MIN_PLUS


def test_get_semiring_unknown_name_raises():
    with pytest.raises(KeyError):
        get_semiring("tropical-deluxe")


def test_boolean_semiring_algebra():
    assert BOOLEAN.add(False, True) is True
    assert BOOLEAN.multiply(True, False) is False
    assert BOOLEAN.is_zero(False)
    assert not BOOLEAN.is_zero(True)
    assert BOOLEAN.one is True


def test_counting_semiring_algebra():
    assert COUNTING.add(2, 3) == 5
    assert COUNTING.multiply(2, 3) == 6
    assert COUNTING.zero == 0
    assert COUNTING.one == 1


def test_min_plus_semiring_algebra():
    assert MIN_PLUS.add(4, 7) == 4
    assert MIN_PLUS.multiply(4, 7) == 11
    assert MIN_PLUS.is_zero(float("inf"))
    assert MIN_PLUS.one == 0


def test_semiring_identities_hold_for_samples():
    for semiring, samples in (
        (BOOLEAN, [True, False]),
        (COUNTING, [0, 1, 5]),
        (MIN_PLUS, [0.0, 3.0, float("inf")]),
    ):
        for value in samples:
            assert semiring.add(value, semiring.zero) == value
            assert semiring.multiply(value, semiring.one) == value
