"""Differential tests: PythonEngine ≡ VectorizedEngine ≡ MatrixEngine.

The execution backends are interchangeable by contract — identical
:class:`~repro.rpq.query.BatchResult`s *and* identical simulated
statistics (time components, channel counters, per-phase PIM times,
free-form counters) on the same system state.  These tests drive all
three backends through the same randomized workloads, including
interleaved insert/delete batches that exercise the CSR snapshot
invalidation and migration passes that exercise deterministic
misplacement handling.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Moctopus, MoctopusConfig
from repro.core.hetero_storage import BYTES_PER_SLOT
from repro.core.local_storage import BYTES_PER_ENTRY
from repro.core.snapshot import build_snapshot_reference
from repro.engine import (
    ENGINE_NAMES,
    MatrixEngine,
    PythonEngine,
    VectorizedEngine,
    create_engine,
)
from repro.graph import DiGraph, random_graph
from repro.pim import CostModel
from repro.rpq import RPQuery, random_source_batch

#: Every backend, scalar reference first (the others are compared to it).
ENGINES = ENGINE_NAMES


def assert_snapshots_match_rebuild(system, context=""):
    """Incremental snapshots must equal from-scratch rebuilds array-for-array."""
    for module_id, storage in enumerate(system._module_storages):
        snapshot = storage.to_csr()
        reference = build_snapshot_reference(
            list(storage._rows.items()),
            bytes_per_entry=BYTES_PER_ENTRY,
            working_set_bytes=max(storage.storage_bytes, 1),
            count_local=True,
        )
        assert snapshot.same_arrays(reference), (
            f"module {module_id} snapshot diverged from rebuild {context}"
        )
    host = system._host_storage
    snapshot = host.to_csr()
    reference = build_snapshot_reference(
        [(node, vector.occupied()) for node, vector in host._vectors.items()],
        bytes_per_entry=BYTES_PER_SLOT,
        working_set_bytes=max(host.total_bytes(), 1),
        count_local=False,
    )
    assert snapshot.same_arrays(reference), (
        f"host snapshot diverged from rebuild {context}"
    )


def stats_fingerprint(stats):
    """Everything the paper's figures could be derived from."""
    return (
        stats.host_time,
        stats.cpc_time,
        stats.ipc_time,
        stats.pim_time,
        tuple(stats.phase_pim_times),
        stats.cpc.bytes_moved,
        stats.cpc.transfers,
        stats.ipc.bytes_moved,
        stats.ipc.transfers,
        dict(stats.counters),
    )


def build_systems(graph, **config_kwargs):
    """The same graph loaded into one system per backend."""
    systems = {}
    for engine in ENGINES:
        config = MoctopusConfig(
            cost_model=CostModel(num_modules=8), engine=engine, **config_kwargs
        )
        systems[engine] = Moctopus.from_graph(graph, config)
    return systems


def assert_equivalent(outcomes, context=""):
    """``outcomes`` maps engine name -> ``(result, stats)``; all must agree."""
    reference_result, reference_stats = outcomes["python"]
    reference_print = stats_fingerprint(reference_stats)
    for engine, (result, stats) in outcomes.items():
        assert result == reference_result, f"{engine} result mismatch {context}"
        assert stats_fingerprint(stats) == reference_print, (
            f"{engine} stats mismatch {context}"
        )


def assert_update_stats_agree(per_engine_stats, context=""):
    reference = stats_fingerprint(per_engine_stats["python"])
    for engine, stats in per_engine_stats.items():
        assert stats_fingerprint(stats) == reference, (
            f"{engine} update stats mismatch {context}"
        )


def assert_placements_agree(systems, context=""):
    reference = dict(systems["python"]._partitioner.partition_map.items())
    for engine, system in systems.items():
        assert dict(system._partitioner.partition_map.items()) == reference, (
            f"{engine} placement diverged {context}"
        )


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------
def test_config_selects_engine():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    system = Moctopus.from_graph(
        graph, MoctopusConfig(cost_model=CostModel(num_modules=4))
    )
    assert system.engine_name == "python"
    system.use_engine("vectorized")
    assert system.engine_name == "vectorized"
    system.use_engine("matrix")
    assert system.engine_name == "matrix"
    for engine, engine_type in (
        ("vectorized", VectorizedEngine),
        ("matrix", MatrixEngine),
    ):
        built = Moctopus.from_graph(
            graph,
            MoctopusConfig(cost_model=CostModel(num_modules=4), engine=engine),
        )
        assert built.engine_name == engine
        assert type(built._query_processor.engine) is engine_type


def test_config_rejects_unknown_engine():
    with pytest.raises(ValueError):
        MoctopusConfig(engine="fortran")
    system = Moctopus.from_graph(
        DiGraph.from_edges([(0, 1)]),
        MoctopusConfig(cost_model=CostModel(num_modules=4)),
    )
    with pytest.raises(ValueError):
        system.use_engine("fortran")


def test_create_engine_factory():
    graph = DiGraph.from_edges([(0, 1)])
    system = Moctopus.from_graph(
        graph, MoctopusConfig(cost_model=CostModel(num_modules=4))
    )
    runtime = system._query_processor._runtime
    assert isinstance(create_engine("python", runtime), PythonEngine)
    assert type(create_engine("vectorized", runtime)) is VectorizedEngine
    assert type(create_engine("matrix", runtime)) is MatrixEngine
    with pytest.raises(ValueError):
        create_engine("gpu", runtime)


# ----------------------------------------------------------------------
# Hypothesis differential suite
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    hops=st.integers(min_value=1, max_value=4),
    batch=st.integers(min_value=1, max_value=24),
)
def test_khop_parity_on_random_graphs(seed, hops, batch):
    graph = random_graph(60, 240, seed=seed)
    systems = build_systems(graph)
    sources = random_source_batch(list(graph.nodes()), batch, seed=seed)
    assert_equivalent(
        {
            engine: system.batch_khop(sources, hops)
            for engine, system in systems.items()
        },
        context=f"khop seed={seed} hops={hops}",
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    expression=st.sampled_from([".{1}", ".{2}", ".{3}", ".+", ".*", ".{1,3}"]),
)
def test_rpq_parity_on_random_graphs(seed, expression):
    graph = random_graph(40, 150, seed=seed)
    systems = build_systems(graph)
    sources = random_source_batch(list(graph.nodes()), 6, seed=seed)
    query = RPQuery(expression, sources)
    assert_equivalent(
        {engine: system.execute(query) for engine, system in systems.items()},
        context=f"rpq seed={seed} expr={expression}",
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_labeled_rpq_parity(seed):
    rng = random.Random(seed)
    graph = DiGraph()
    for _ in range(120):
        graph.add_edge(rng.randrange(30), rng.randrange(30), label=rng.randrange(1, 4))
    labels = {1: "a", 2: "b", 3: "c"}
    systems = {}
    for engine in ENGINES:
        config = MoctopusConfig(cost_model=CostModel(num_modules=8), engine=engine)
        systems[engine] = Moctopus.from_graph(graph, config, label_names=labels)
    sources = random_source_batch(list(graph.nodes()), 5, seed=seed)
    for expression in ("a/b", "(a|b)/c", "a+", "a/b*"):
        query = RPQuery(expression, sources)
        assert_equivalent(
            {engine: system.execute(query) for engine, system in systems.items()},
            context=f"labeled seed={seed} expr={expression}",
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parity_with_interleaved_updates(seed):
    """Queries ≡ across engines while inserts/deletes churn the storages.

    This is the CSR-snapshot invalidation test: every update batch
    dirties storage segments between queries (invalidating the matrix
    engine's per-snapshot transposed blocks along with the CSR arrays),
    every query may trigger post-query migrations that move whole rows,
    and every engine must keep producing identical answers, statistics
    and placement.
    """
    rng = random.Random(seed)
    graph = random_graph(50, 180, seed=seed)
    systems = build_systems(graph)
    for step in range(8):
        kind = rng.choice(["khop", "rpq", "insert", "delete"])
        if kind == "khop":
            sources = random_source_batch(list(range(60)), 6, seed=seed + step)
            hops = rng.randint(1, 3)
            assert_equivalent(
                {
                    engine: system.batch_khop(sources, hops)
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} khop",
            )
        elif kind == "rpq":
            sources = random_source_batch(list(range(50)), 4, seed=seed + step)
            query = RPQuery(".+", sources)
            assert_equivalent(
                {
                    engine: system.execute(query)
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} rpq",
            )
        elif kind == "insert":
            edges = [(rng.randrange(70), rng.randrange(70)) for _ in range(8)]
            assert_update_stats_agree(
                {
                    engine: system.insert_edges(list(edges))
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} insert",
            )
        else:
            existing = list(systems["python"].graph.edges())
            edges = [rng.choice(existing) for _ in range(5)] if existing else []
            assert_update_stats_agree(
                {
                    engine: system.delete_edges(list(edges))
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} delete",
            )
        # Placement (including post-query migrations) must stay in step.
        assert_placements_agree(systems, context=f"seed={seed} step={step}")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parity_with_heavy_update_batches(seed):
    """Hub-concentrated update batches ≡ across engines, snapshots included.

    Batches big enough to promote sources mid-batch exercise the
    vectorized update path's stateful remainder (placement of brand-new
    nodes, threshold crossings, requeues) against the scalar reference,
    and after every step each storage's incrementally-maintained CSR
    snapshot must equal a from-scratch rebuild array-for-array.
    """
    rng = random.Random(seed)
    graph = random_graph(50, 180, seed=seed)
    systems = build_systems(graph, high_degree_threshold=8)
    for step in range(6):
        kind = rng.choice(["khop", "insert", "hub_insert", "delete"])
        if kind == "khop":
            sources = random_source_batch(list(range(60)), 8, seed=seed + step)
            assert_equivalent(
                {
                    engine: system.batch_khop(sources, 2)
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} khop",
            )
        elif kind == "insert":
            # Wide batch with a slice of brand-new node ids.
            edges = [
                (rng.randrange(90), rng.randrange(90)) for _ in range(48)
            ]
            labels = [rng.randrange(1, 4) for _ in edges]
            assert_update_stats_agree(
                {
                    engine: system.insert_edges(list(edges), labels=list(labels))
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} insert",
            )
        elif kind == "hub_insert":
            # Concentrate inserts on a few sources so some cross the
            # high-degree threshold mid-batch (promotion + requeue).
            hubs = [rng.randrange(70) for _ in range(3)]
            edges = [(rng.choice(hubs), rng.randrange(150)) for _ in range(40)]
            assert_update_stats_agree(
                {
                    engine: system.insert_edges(list(edges))
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} hub_insert",
            )
        else:
            existing = list(systems["python"].graph.edges())
            edges = [rng.choice(existing) for _ in range(16)] if existing else []
            assert_update_stats_agree(
                {
                    engine: system.delete_edges(list(edges))
                    for engine, system in systems.items()
                },
                context=f"seed={seed} step={step} delete",
            )
        assert_placements_agree(systems, context=f"seed={seed} step={step}")
        for engine, system in systems.items():
            assert_snapshots_match_rebuild(
                system, context=f"({engine} seed={seed} step={step})"
            )
    reference_edges = sorted(systems["python"].graph.edges())
    for engine, system in systems.items():
        assert sorted(system.graph.edges()) == reference_edges, engine


def test_update_engine_follows_use_engine():
    """``use_engine`` swaps the update-partitioning backend too."""
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    system = Moctopus.from_graph(
        graph, MoctopusConfig(cost_model=CostModel(num_modules=4))
    )
    assert system._update_processor.engine_name == "python"
    system.use_engine("vectorized")
    assert system._update_processor.engine_name == "vectorized"
    system.use_engine("matrix")
    assert system._update_processor.engine_name == "matrix"
    with pytest.raises(ValueError):
        system._update_processor.use_engine("fortran")


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def test_fixpoint_bound_covers_state_revisits():
    """Kleene closures whose accepting paths revisit nodes in different
    automaton states need rows x states iterations, not just rows
    (regression: a 3-cycle with ``(a/a/a/a)*`` reaches node 2 only at
    path length 8)."""
    from repro.rpq import evaluate_rpq

    graph = DiGraph()
    graph.add_edge(0, 1, label=1)
    graph.add_edge(1, 2, label=1)
    graph.add_edge(2, 0, label=1)
    labels = {1: "a"}
    query = RPQuery("(a/a/a/a)*", [0])
    reference = evaluate_rpq(graph, query, label_names=labels)
    assert reference.destinations_of(0) == {0, 1, 2}
    for engine in ENGINES:
        config = MoctopusConfig(cost_model=CostModel(num_modules=4), engine=engine)
        system = Moctopus.from_graph(graph, config, label_names=labels)
        result, _ = system.execute(query)
        assert result == reference, engine


def test_parity_with_wide_batches():
    """Batches past 64 rows exercise the multi-word bit-mask path of the
    numpy k-hop engines (two+ uint64 words per node)."""
    graph = random_graph(50, 200, seed=11)
    systems = build_systems(graph)
    sources = random_source_batch(list(graph.nodes()), 150, seed=11)
    for hops in (1, 3):
        assert_equivalent(
            {
                engine: system.batch_khop(sources, hops)
                for engine, system in systems.items()
            },
            context=f"wide batch hops={hops}",
        )


def test_parity_with_sparse_node_ids():
    """Huge, sparse node ids exercise the sorted-pairs owner-lookup
    fallback (a dense id-indexed vector would be gigabytes)."""
    graph = DiGraph()
    base = 10 ** 9
    for offset in range(20):
        graph.add_edge(base + offset * 7_919, base + ((offset + 1) % 20) * 7_919)
    systems = build_systems(graph)
    sources = [base, base + 7_919, base + 3]  # last one is unknown
    assert_equivalent(
        {
            engine: system.batch_khop(sources, 2)
            for engine, system in systems.items()
        },
        context="sparse ids",
    )


def test_pack_overflow_guard():
    """Node ids beyond the 64-bit packed-key range raise instead of
    silently wrapping (keys path only; k-hop masks don't pack)."""
    graph = DiGraph()
    huge = 2 ** 61
    graph.add_edge(huge, huge + 1)
    for engine in ("vectorized", "matrix"):
        config = MoctopusConfig(cost_model=CostModel(num_modules=4), engine=engine)
        system = Moctopus.from_graph(graph, config)
        with pytest.raises(OverflowError):
            system.execute(RPQuery(".{2}", [huge] * 8))


def test_parity_with_unknown_sources():
    graph = random_graph(30, 90, seed=3)
    systems = build_systems(graph)
    sources = [0, 424242, 5, 999999]
    assert_equivalent(
        {
            engine: system.batch_khop(sources, 2)
            for engine, system in systems.items()
        },
        context="unknown sources",
    )


def test_parity_with_duplicate_sources():
    graph = random_graph(30, 90, seed=4)
    systems = build_systems(graph)
    sources = [1, 1, 2, 2, 1]
    assert_equivalent(
        {
            engine: system.batch_khop(sources, 3)
            for engine, system in systems.items()
        },
        context="duplicate sources",
    )


def test_parity_on_empty_batch():
    graph = random_graph(20, 50, seed=5)
    systems = build_systems(graph)
    assert_equivalent(
        {
            engine: system.batch_khop([], 2)
            for engine, system in systems.items()
        },
        context="empty batch",
    )


def test_parity_without_labor_division():
    graph = random_graph(40, 200, seed=6)
    systems = build_systems(graph, high_degree_threshold=None)
    sources = random_source_batch(list(graph.nodes()), 12, seed=6)
    assert_equivalent(
        {
            engine: system.batch_khop(sources, 3)
            for engine, system in systems.items()
        },
        context="no labor division",
    )


def test_parity_with_migration_disabled():
    graph = random_graph(40, 200, seed=7)
    systems = build_systems(graph, enable_migration=False)
    sources = random_source_batch(list(graph.nodes()), 12, seed=7)
    for hops in (1, 2, 3):
        assert_equivalent(
            {
                engine: system.batch_khop(sources, hops)
                for engine, system in systems.items()
            },
            context=f"migration off hops={hops}",
        )
