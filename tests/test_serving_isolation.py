"""Model-based differential tests of the snapshot-isolated serving layer.

Three layers of evidence, all against :class:`tests.model.ReferenceModel`
(a pure-python oracle sharing no code with the engines or storages):

* **seeded replay** — deterministic randomized schedules interleaving
  writer batches, live queries, and 200+ snapshot-isolated sessions per
  engine, asserting epoch isolation (a pinned session's answers never
  change while the writer advances), read-your-writes (staged updates
  are visible to their session immediately, invisible to everyone else
  until commit), and refresh/commit semantics;
* **cross-engine lockstep** — the same schedule driven through a
  ``python``-engine and a ``vectorized``-engine system side by side,
  asserting bit-identical results *and* bit-identical simulated
  statistics for every pinned execution;
* **hypothesis stateful** — a rule-based state machine that lets
  hypothesis hunt for interleavings the seeded schedules miss
  (reproduce failures with ``--hypothesis-seed``).

The batch scheduler rides the same oracle: coalesced answers must equal
the model's, and the bounded admission queue must push back when full.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from model import ReferenceModel
from repro.core import Moctopus, MoctopusConfig
from repro.graph import random_graph
from repro.pim import CostModel
from repro.rpq import RPQuery
from repro.serve import SchedulerSaturated

ENGINES = ("python", "vectorized", "matrix")

#: Sessions each engine's replay sweep must exercise (acceptance bar).
MIN_SESSIONS = 200

LABEL_NAMES = {1: "a", 2: "b", 3: "c"}
RPQ_EXPRESSIONS = (".{1}", ".{2}", ".+", "a", "a/b", "(a|b)+")


def build_system(seed: int, engine: str) -> Moctopus:
    graph = random_graph(28, 90, seed=seed)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        engine=engine,
        high_degree_threshold=8,
    )
    return Moctopus.from_graph(graph, config, label_names=LABEL_NAMES)


def build_model(seed: int) -> ReferenceModel:
    return ReferenceModel.from_digraph(random_graph(28, 90, seed=seed))


def stats_fingerprint(stats):
    """Everything the paper's figures could be derived from."""
    return (
        stats.host_time,
        stats.cpc_time,
        stats.ipc_time,
        stats.pim_time,
        tuple(stats.phase_pim_times),
        stats.cpc.bytes_moved,
        stats.cpc.transfers,
        stats.ipc.bytes_moved,
        stats.ipc.transfers,
        dict(stats.counters),
    )


class SessionUnderTest:
    """One open session paired with its frozen model state."""

    def __init__(self, session, model: ReferenceModel) -> None:
        self.session = session
        self.model = model
        #: Every (query, expected answer) this session has asserted —
        #: replayed after writer batches to prove epoch isolation.
        self.history = []


def random_update_batch(rng: random.Random, model: ReferenceModel):
    """A mixed batch: known edges, brand-new nodes, deletes (some missing)."""
    inserts, deletes, labels = [], [], []
    for _ in range(rng.randint(1, 6)):
        if rng.random() < 0.65 or not model.num_edges:
            src = rng.randrange(40)
            dst = rng.randrange(40)
            inserts.append((src, dst))
            labels.append(rng.choice((0, 1, 2, 3)))
        else:
            existing = model.edges()
            if existing and rng.random() < 0.8:
                deletes.append(rng.choice(existing))
            else:
                deletes.append((rng.randrange(40), rng.randrange(40)))
    return inserts, labels, deletes


def assert_session_matches_model(under_test: SessionUnderTest, rng, context):
    """Run one fresh random query on the session and check the oracle."""
    if rng.random() < 0.75:
        sources = [rng.randrange(45) for _ in range(rng.randint(1, 5))]
        hops = rng.randint(1, 3)
        result, stats = under_test.session.batch_khop(sources, hops)
        expected = under_test.model.khop(sources, hops)
        query = ("khop", tuple(sources), hops)
    else:
        sources = [rng.randrange(30) for _ in range(rng.randint(1, 3))]
        expression = rng.choice(RPQ_EXPRESSIONS)
        result, stats = under_test.session.execute(RPQuery(expression, sources))
        expected = under_test.model.rpq(expression, sources, LABEL_NAMES)
        query = ("rpq", tuple(sources), expression)
    assert result.destinations == expected, (
        f"session diverged from model {context}: {query}"
    )
    assert stats.counters.get("epoch") == under_test.session.epoch_id
    under_test.history.append((query, result.destinations))
    return stats


def replay_session_history(under_test: SessionUnderTest, context):
    """Epoch isolation: every past answer must be reproducible verbatim."""
    for query, expected in under_test.history:
        if query[0] == "khop":
            result, _ = under_test.session.batch_khop(list(query[1]), query[2])
        else:
            result, _ = under_test.session.execute(
                RPQuery(query[2], list(query[1]))
            )
        assert result.destinations == expected, (
            f"pinned session observed later writes {context}: {query}"
        )


def run_differential_schedule(seed: int, engine: str, steps: int = 26) -> int:
    """One randomized interleaved schedule; returns sessions exercised."""
    rng = random.Random(seed)
    system = build_system(seed, engine)
    model = build_model(seed)
    open_sessions: list = []
    sessions_exercised = 0

    def begin():
        nonlocal sessions_exercised
        under_test = SessionUnderTest(system.begin(), model.copy())
        open_sessions.append(under_test)
        sessions_exercised += 1

    begin()
    for step in range(steps):
        context = f"(seed={seed} step={step} engine={engine})"
        action = rng.choice(
            (
                "writer", "writer", "session_query", "session_query",
                "session_query", "begin", "session_write", "refresh",
                "commit", "live_query", "close",
            )
        )
        if action == "begin" and len(open_sessions) < 4:
            begin()
        elif action == "writer":
            inserts, labels, deletes = random_update_batch(rng, model)
            if inserts:
                system.insert_edges(list(inserts), labels=list(labels))
                for (src, dst), label in zip(inserts, labels):
                    model.insert(src, dst, label)
            if deletes:
                system.delete_edges(list(deletes))
                for src, dst in deletes:
                    model.delete(src, dst)
            # The isolation assertion: pinned answers survive the batch.
            for under_test in open_sessions:
                replay_session_history(under_test, context)
        elif action == "session_query" and open_sessions:
            assert_session_matches_model(
                rng.choice(open_sessions), rng, context
            )
        elif action == "session_write" and open_sessions:
            under_test = rng.choice(open_sessions)
            inserts, labels, deletes = random_update_batch(rng, under_test.model)
            under_test.session.insert_edges(list(inserts), labels=list(labels))
            under_test.session.delete_edges(list(deletes))
            for (src, dst), label in zip(inserts, labels):
                under_test.model.insert(src, dst, label)
            for src, dst in deletes:
                under_test.model.delete(src, dst)
            # Read-your-writes: the staged batch is immediately visible.
            under_test.history.clear()
            assert_session_matches_model(under_test, rng, context + " ryw")
        elif action == "refresh" and open_sessions:
            under_test = rng.choice(open_sessions)
            staged = list(under_test.session._ops)
            under_test.session.refresh()
            under_test.model = model.copy()
            for kind, src, dst, label in staged:
                if kind.value == "insert":
                    under_test.model.insert(src, dst, label)
                else:
                    under_test.model.delete(src, dst)
            under_test.history.clear()
            assert_session_matches_model(under_test, rng, context + " refresh")
        elif action == "commit" and open_sessions:
            under_test = rng.choice(open_sessions)
            staged = list(under_test.session._ops)
            under_test.session.commit()
            for kind, src, dst, label in staged:
                if kind.value == "insert":
                    model.insert(src, dst, label)
                else:
                    model.delete(src, dst)
            under_test.model = model.copy()
            under_test.history.clear()
            assert_session_matches_model(under_test, rng, context + " commit")
            # Committed writes are now live: other sessions still pinned.
            for other in open_sessions:
                if other is not under_test:
                    replay_session_history(other, context + " post-commit")
        elif action == "live_query":
            sources = [rng.randrange(45) for _ in range(rng.randint(1, 5))]
            hops = rng.randint(1, 3)
            result, _ = system.batch_khop(sources, hops)
            assert result.destinations == model.khop(sources, hops), (
                f"live system diverged from model {context}"
            )
        elif action == "close" and len(open_sessions) > 1:
            open_sessions.pop(rng.randrange(len(open_sessions))).session.close()
        # Writer-level state stays in lockstep with the model throughout.
        assert system.num_edges == model.num_edges, context
    for under_test in open_sessions:
        under_test.session.close()
    return sessions_exercised


# ----------------------------------------------------------------------
# Seeded replay sweep (the >= 200 sessions/engine acceptance bar)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_differential_replay_sweep(engine):
    sessions = 0
    seed = 0
    while sessions < MIN_SESSIONS:
        sessions += run_differential_schedule(seed, engine)
        seed += 1
    assert sessions >= MIN_SESSIONS
    assert seed >= 10, "schedules should spread across many seeds"


# ----------------------------------------------------------------------
# Cross-engine lockstep: bit-identical pinned execution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_cross_engine_sessions_bit_identical(seed):
    rng = random.Random(1000 + seed)
    systems = {engine: build_system(seed, engine) for engine in ENGINES}
    sessions = {engine: systems[engine].begin() for engine in ENGINES}
    for step in range(12):
        context = f"(seed={seed} step={step})"
        action = rng.choice(("query", "query", "writer", "stage", "refresh"))
        if action == "query":
            if rng.random() < 0.7:
                sources = [rng.randrange(40) for _ in range(rng.randint(1, 6))]
                hops = rng.randint(1, 3)
                outcomes = {
                    engine: sessions[engine].batch_khop(sources, hops)
                    for engine in ENGINES
                }
            else:
                sources = [rng.randrange(30) for _ in range(rng.randint(1, 3))]
                expression = rng.choice(RPQ_EXPRESSIONS)
                outcomes = {
                    engine: sessions[engine].execute(
                        RPQuery(expression, sources)
                    )
                    for engine in ENGINES
                }
            result_py, stats_py = outcomes["python"]
            for engine in ENGINES[1:]:
                result_eng, stats_eng = outcomes[engine]
                assert result_py == result_eng, (
                    f"{engine} result mismatch {context}"
                )
                assert stats_fingerprint(stats_py) == stats_fingerprint(
                    stats_eng
                ), f"{engine} stats mismatch {context}"
        elif action == "writer":
            edges = [
                (rng.randrange(40), rng.randrange(40))
                for _ in range(rng.randint(1, 6))
            ]
            for engine in ENGINES:
                systems[engine].insert_edges(list(edges))
        elif action == "stage":
            edges = [
                (rng.randrange(45), rng.randrange(45))
                for _ in range(rng.randint(1, 4))
            ]
            for engine in ENGINES:
                sessions[engine].insert_edges(list(edges))
        else:
            epoch_ids = {
                engine: sessions[engine].refresh() for engine in ENGINES
            }
            assert len(set(epoch_ids.values())) == 1, context
    for engine in ENGINES:
        sessions[engine].close()


# ----------------------------------------------------------------------
# Scheduler: coalesced answers match the oracle; admission is bounded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_scheduler_answers_match_model(engine):
    system = build_system(3, engine)
    model = build_model(3)
    with system.serve() as scheduler:
        futures = [
            (source, hops, scheduler.submit(source, hops))
            for source in range(10)
            for hops in (1, 2)
        ]
        for source, hops, future in futures:
            destinations, stats = future.outcome(timeout=10)
            assert destinations == model.khop([source], hops)[0], (
                f"scheduler diverged at source={source} hops={hops}"
            )
            assert stats.counters.get("coalesced_queries", 0) >= 1
        assert scheduler.queries_served == len(futures)
    # Coalescing must actually happen: far fewer batches than queries.
    assert scheduler.batches_executed < len(futures)


def test_scheduler_admission_queue_is_bounded():
    system = build_system(4, "vectorized")
    scheduler = system.serve(queue_depth=4, autostart=False)
    for source in range(4):
        scheduler.submit(source, 1)
    with pytest.raises(SchedulerSaturated):
        scheduler.submit(99, 1, block=False)
    with pytest.raises(SchedulerSaturated):
        scheduler.submit(99, 1, timeout=0.01)
    # Draining the queue un-saturates admission.
    scheduler._worker.start()
    scheduler.submit(5, 1).result(timeout=10)
    scheduler.close()


def test_scheduler_close_strands_no_future():
    """Futures enqueued around close() fail instead of blocking forever."""
    system = build_system(6, "vectorized")
    scheduler = system.serve(autostart=False)
    stranded = scheduler.submit(0, 1)
    scheduler.close(timeout=1)
    with pytest.raises(RuntimeError):
        stranded.result(timeout=1)
    with pytest.raises(RuntimeError):
        scheduler.submit(1, 1)


def test_serving_report_retires_with_epochs():
    """Per-epoch counters do not accumulate past the retention bound."""
    system = build_system(7, "vectorized")
    config_retention = system.config.epoch_retention
    for round_id in range(config_retention + 5):
        system.insert_edges([(round_id, 500 + round_id)])
        with system.begin() as session:
            session.batch_khop([0], 1)
    assert len(system.serving_report()) <= config_retention + 1


def test_scheduler_sees_new_epochs():
    """Scheduled queries run on the *latest* epoch, not a stale pin."""
    system = build_system(5, "vectorized")
    model = build_model(5)
    with system.serve() as scheduler:
        before = scheduler.query(0, 1)
        assert before == model.khop([0], 1)[0]
        system.insert_edges([(0, 333)])
        model.insert(0, 333)
        after = scheduler.query(0, 1)
        assert after == model.khop([0], 1)[0]
        assert 333 in after


# ----------------------------------------------------------------------
# Pin accounting: injected failures must never leak an epoch pin
# ----------------------------------------------------------------------
def test_refresh_failure_leaks_no_pin(monkeypatch):
    """A refresh that raises mid-swap rolls back: same epoch, same staged
    ops, balanced pin counts — retention eviction stays unblocked."""
    system = build_system(21, "vectorized")
    manager = system._epochs
    session = system.begin()
    session.insert_edges([(0, 99)])
    staged_before = session.pending_updates
    epoch_before = session.epoch_id
    system.insert_edges([(1, 2)])  # make the next refresh a real move
    assert manager.pins() == 1

    from repro.serve.session import Session

    def exploding_rebase(self):
        raise RuntimeError("injected rebase failure")

    monkeypatch.setattr(Session, "_rebase_local", exploding_rebase)
    with pytest.raises(RuntimeError, match="injected rebase"):
        session.refresh()
    assert manager.pins() == 1, "failed refresh leaked an epoch pin"
    assert session.epoch_id == epoch_before, "failed refresh moved epochs"
    assert session.pending_updates == staged_before, (
        "failed refresh lost staged updates"
    )
    monkeypatch.undo()
    # The session is still fully usable, and a successful refresh moves.
    assert session.refresh() > epoch_before
    result, _ = session.batch_khop([0], 1)
    assert 99 in result.destinations_of(0), "read-your-writes survived"
    session.close()
    assert manager.pins() == 0
    session.close()  # idempotent


def test_commit_failure_keeps_pins_balanced(monkeypatch):
    """A writer failure during commit leaves the session pinned exactly
    once (on its old epoch) and the staged batch intact for a retry."""
    system = build_system(22, "python")
    manager = system._epochs
    session = system.begin()
    session.insert_edges([(3, 77)])
    assert manager.pins() == 1

    def exploding_apply(ops, labels=None):
        raise RuntimeError("injected writer failure")

    monkeypatch.setattr(system, "apply_updates", exploding_apply)
    with pytest.raises(RuntimeError, match="injected writer"):
        session.commit()
    assert manager.pins() == 1, "failed commit leaked an epoch pin"
    assert session.pending_updates == 1, "failed commit dropped staged ops"
    monkeypatch.undo()
    session.commit()
    assert system.has_edge(3, 77)
    session.close()
    assert manager.pins() == 0


def test_epoch_retention_under_concurrent_churn():
    """500 threaded sessions under writer churn: pins return to zero,
    retired epochs really free their snapshot references."""
    import gc
    import threading

    from repro.serve.epoch import Epoch

    system = build_system(23, "vectorized")
    manager = system._epochs
    num_threads, per_thread = 8, 63  # 504 sessions
    errors: list = []
    stop_writer = threading.Event()

    def writer():
        round_id = 0
        while not stop_writer.is_set():
            system.insert_edges([(round_id % 40, 40 + round_id % 40)])
            round_id += 1
            time.sleep(0.001)

    def churn(thread_id: int):
        try:
            for index in range(per_thread):
                with system.begin() as session:
                    session.batch_khop([(thread_id + index) % 28], 1)
                    if index % 7 == 0:
                        session.refresh()
        except BaseException as error:  # pragma: no cover - debugging aid
            errors.append(error)

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    threads = [
        threading.Thread(target=churn, args=(thread_id,))
        for thread_id in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop_writer.set()
    writer_thread.join()
    assert not errors, errors
    assert manager.pins() == 0, "churned sessions left pins behind"
    assert len(manager.retained_ids()) <= system.config.epoch_retention
    # Retired epochs must actually be freed: the only live Epoch objects
    # are the retained ones (plus nothing lingering in session scratch).
    gc.collect()
    live_epochs = [
        obj for obj in gc.get_objects() if isinstance(obj, Epoch)
    ]
    assert len(live_epochs) <= system.config.epoch_retention, (
        f"{len(live_epochs)} live Epoch objects after churn "
        f"(retention={system.config.epoch_retention})"
    )


def test_scheduler_close_is_idempotent_and_concurrent():
    """Double close, concurrent close, and close-with-queued-work all
    resolve every admitted future exactly once."""
    import threading

    system = build_system(24, "vectorized")
    scheduler = system.serve()
    futures = [scheduler.submit(source, 1) for source in range(6)]
    closers = [
        threading.Thread(target=scheduler.close) for _ in range(3)
    ]
    for thread in closers:
        thread.start()
    for thread in closers:
        thread.join()
    scheduler.close()  # and once more after the fact
    for future in futures:
        # Admitted before close: either answered (drained) or cleanly
        # failed — never stranded.
        assert future.done()
    assert system._epochs.pins() == 0


def test_scheduler_linger_window_answers_correctly():
    """A lingering drain window (monotonic timing) still answers every
    query against the oracle."""
    system = build_system(25, "vectorized")
    model = build_model(25)
    with system.serve(linger=0.02) as scheduler:
        futures = [
            (source, scheduler.submit(source, 2)) for source in range(12)
        ]
        for source, future in futures:
            assert future.result(timeout=30) == model.khop([source], 2)[0]


# ----------------------------------------------------------------------
# Hypothesis stateful machine (seedable interleaving search)
# ----------------------------------------------------------------------
node_ids = st.integers(min_value=0, max_value=40)
edge_lists = st.lists(
    st.tuples(node_ids, node_ids), min_size=1, max_size=5
)


class ServingMachine(RuleBasedStateMachine):
    """Random session/writer interleavings checked against the oracle."""

    engine = "python"

    def __init__(self) -> None:
        super().__init__()
        self.system = build_system(11, self.engine)
        self.model = build_model(11)
        self.sessions: list = []

    def _pick(self, index: int):
        if not self.sessions:
            return None
        return self.sessions[index % len(self.sessions)]

    @rule()
    def begin_session(self):
        if len(self.sessions) < 4:
            self.sessions.append(
                SessionUnderTest(self.system.begin(), self.model.copy())
            )

    @rule(edges=edge_lists)
    def writer_insert(self, edges):
        self.system.insert_edges(list(edges))
        for src, dst in edges:
            self.model.insert(src, dst)
        for under_test in self.sessions:
            replay_session_history(under_test, "(stateful writer_insert)")

    @rule(edges=edge_lists)
    def writer_delete(self, edges):
        self.system.delete_edges(list(edges))
        for src, dst in edges:
            self.model.delete(src, dst)
        for under_test in self.sessions:
            replay_session_history(under_test, "(stateful writer_delete)")

    @rule(
        index=st.integers(min_value=0, max_value=3),
        sources=st.lists(node_ids, min_size=1, max_size=4),
        hops=st.integers(min_value=1, max_value=3),
    )
    def session_khop(self, index, sources, hops):
        under_test = self._pick(index)
        if under_test is None:
            return
        result, _ = under_test.session.batch_khop(sources, hops)
        assert result.destinations == under_test.model.khop(sources, hops)
        under_test.history.append(
            (("khop", tuple(sources), hops), result.destinations)
        )

    @rule(index=st.integers(min_value=0, max_value=3), edges=edge_lists)
    def session_stage(self, index, edges):
        under_test = self._pick(index)
        if under_test is None:
            return
        under_test.session.insert_edges(list(edges))
        for src, dst in edges:
            under_test.model.insert(src, dst)
        under_test.history.clear()

    @rule(index=st.integers(min_value=0, max_value=3))
    def session_commit(self, index):
        under_test = self._pick(index)
        if under_test is None:
            return
        staged = list(under_test.session._ops)
        under_test.session.commit()
        for kind, src, dst, label in staged:
            if kind.value == "insert":
                self.model.insert(src, dst, label)
            else:
                self.model.delete(src, dst)
        under_test.model = self.model.copy()
        under_test.history.clear()

    @rule(index=st.integers(min_value=0, max_value=3))
    def session_refresh(self, index):
        under_test = self._pick(index)
        if under_test is None:
            return
        staged = list(under_test.session._ops)
        under_test.session.refresh()
        under_test.model = self.model.copy()
        for kind, src, dst, label in staged:
            if kind.value == "insert":
                under_test.model.insert(src, dst, label)
            else:
                under_test.model.delete(src, dst)
        under_test.history.clear()

    @rule(index=st.integers(min_value=0, max_value=3))
    def close_session(self, index):
        under_test = self._pick(index)
        if under_test is None:
            return
        under_test.session.close()
        self.sessions.remove(under_test)

    def teardown(self):
        for under_test in self.sessions:
            under_test.session.close()
        assert self.system.num_edges == self.model.num_edges


class ServingMachinePython(ServingMachine):
    engine = "python"


class ServingMachineVectorized(ServingMachine):
    engine = "vectorized"


TestServingMachinePython = ServingMachinePython.TestCase
TestServingMachinePython.settings = settings(
    max_examples=10, stateful_step_count=16, deadline=None
)
TestServingMachineVectorized = ServingMachineVectorized.TestCase
TestServingMachineVectorized.settings = settings(
    max_examples=10, stateful_step_count=16, deadline=None
)
