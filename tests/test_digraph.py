"""Unit tests for the directed graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph


def test_add_edge_registers_nodes_lazily():
    graph = DiGraph()
    assert graph.add_edge(1, 2) is True
    assert graph.has_node(1) and graph.has_node(2)
    assert graph.num_nodes == 2
    assert graph.num_edges == 1


def test_duplicate_edge_is_not_counted_twice():
    graph = DiGraph()
    assert graph.add_edge(1, 2) is True
    assert graph.add_edge(1, 2) is False
    assert graph.num_edges == 1


def test_duplicate_edge_refreshes_label():
    graph = DiGraph()
    graph.add_edge(1, 2, label=3)
    graph.add_edge(1, 2, label=5)
    assert graph.edge_label(1, 2) == 5


def test_remove_edge_updates_degrees():
    graph = DiGraph.from_edges([(1, 2), (1, 3), (2, 3)])
    assert graph.remove_edge(1, 2) is True
    assert graph.remove_edge(1, 2) is False
    assert graph.out_degree(1) == 1
    assert graph.in_degree(2) == 0
    assert graph.num_edges == 2


def test_remove_node_drops_incident_edges():
    graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
    graph.remove_node(2)
    assert not graph.has_node(2)
    assert not graph.has_edge(1, 2)
    assert not graph.has_edge(2, 3)
    assert graph.num_edges == 1


def test_remove_missing_node_raises():
    graph = DiGraph()
    with pytest.raises(KeyError):
        graph.remove_node(42)


def test_first_neighbor_preserves_insertion_order():
    graph = DiGraph()
    graph.add_edge(1, 9)
    graph.add_edge(1, 2)
    graph.add_edge(1, 5)
    assert graph.first_neighbor(1) == 9
    assert graph.first_neighbor(7) is None


def test_successors_in_insertion_order():
    graph = DiGraph()
    graph.add_edge(0, 3)
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    assert graph.successors(0) == [3, 1, 2]


def test_high_degree_classification():
    graph = DiGraph()
    for dst in range(1, 20):
        graph.add_edge(0, dst)
    graph.add_edge(1, 0)
    assert graph.high_degree_nodes(16) == {0}
    assert graph.high_degree_fraction(16) == pytest.approx(1 / 20)
    assert graph.high_degree_nodes(19) == set()


def test_degree_histogram():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
    histogram = graph.degree_histogram()
    assert histogram == {2: 1, 1: 1, 0: 1}


def test_copy_is_independent():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    clone = graph.copy()
    clone.add_edge(2, 0)
    assert graph.num_edges == 2
    assert clone.num_edges == 3


def test_reverse_flips_edges_and_keeps_labels():
    graph = DiGraph()
    graph.add_edge(0, 1, label=7)
    reversed_graph = graph.reverse()
    assert reversed_graph.has_edge(1, 0)
    assert not reversed_graph.has_edge(0, 1)
    assert reversed_graph.edge_label(1, 0) == 7


def test_labeled_edges_roundtrip():
    edges = [(0, 1, 2), (1, 2, 3), (2, 0, 2)]
    graph = DiGraph.from_labeled_edges(edges)
    assert sorted(graph.labeled_edges()) == sorted(edges)


def test_contains_and_len():
    graph = DiGraph(num_nodes=4)
    assert 3 in graph
    assert 4 not in graph
    assert len(graph) == 4


@st.composite
def edge_lists(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=30))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ),
            max_size=120,
        )
    )
    return [(src, dst) for src, dst in edges if src != dst]


@settings(max_examples=50, deadline=None)
@given(edge_lists())
def test_edge_count_matches_distinct_edges(edges):
    graph = DiGraph.from_edges(edges)
    assert graph.num_edges == len(set(edges))


@settings(max_examples=50, deadline=None)
@given(edge_lists())
def test_degree_sums_equal_edge_count(edges):
    graph = DiGraph.from_edges(edges)
    out_total = sum(graph.out_degree(node) for node in graph.nodes())
    in_total = sum(graph.in_degree(node) for node in graph.nodes())
    assert out_total == in_total == graph.num_edges


@settings(max_examples=30, deadline=None)
@given(edge_lists())
def test_reverse_twice_is_identity(edges):
    graph = DiGraph.from_edges(edges)
    double_reversed = graph.reverse().reverse()
    assert sorted(graph.edges()) == sorted(double_reversed.edges())
