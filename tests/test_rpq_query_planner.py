"""Tests for query objects, the logical planner and the reference evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, random_graph
from repro.rpq import (
    BatchResult,
    ExpandStep,
    FixpointStep,
    KHopQuery,
    ReduceStep,
    RPQuery,
    count_khop_paths,
    evaluate_khop,
    evaluate_rpq,
    make_batch_khop,
    plan_khop,
    plan_query,
    plan_rpq,
    random_source_batch,
)


# ----------------------------------------------------------------------
# Query objects
# ----------------------------------------------------------------------
def test_khop_query_validation_and_conversion():
    query = KHopQuery(hops=2, sources=[1, 2, 3])
    assert query.batch_size == 3
    assert query.expression() == ".{2}"
    assert query.to_rpq().sources == [1, 2, 3]
    with pytest.raises(ValueError):
        KHopQuery(hops=0)


def test_rpq_fixed_length_detection():
    assert RPQuery("a/b", [0]).is_fixed_length()
    assert RPQuery("a/b", [0]).fixed_length() == 2
    assert not RPQuery("a+", [0]).is_fixed_length()
    with pytest.raises(ValueError):
        RPQuery("a+", [0]).fixed_length()


def test_batch_result_accessors():
    result = BatchResult(sources=[1, 1, 2], destinations=[{3}, {4}, set()])
    assert result.total_matches == 2
    assert result.pairs() == {(1, 3), (1, 4)}
    assert result.destinations_of(1) == {4}
    assert result.as_dict() == {1: {3, 4}, 2: set()}


def test_random_source_batch_is_deterministic():
    nodes = list(range(50))
    a = random_source_batch(nodes, 10, seed=3)
    b = random_source_batch(nodes, 10, seed=3)
    assert a == b
    assert len(a) == 10
    assert all(source in nodes for source in a)
    with pytest.raises(ValueError):
        random_source_batch([], 5)


def test_make_batch_khop():
    query = make_batch_khop(range(5), hops=3)
    assert query.hops == 3 and query.batch_size == 5


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
def test_plan_khop_structure():
    plan = plan_khop(KHopQuery(hops=3, sources=[0]))
    assert [type(step) for step in plan.steps] == [
        ExpandStep, ExpandStep, ExpandStep, ReduceStep,
    ]
    assert plan.num_expansions == 3
    assert not plan.accumulate_results
    assert "smxm" in plan.explain()


def test_plan_rpq_fixed_length_uses_expand_chain():
    plan = plan_rpq(RPQuery("a/b", [0]))
    assert plan.num_expansions == 2
    assert plan.dfa is not None
    assert not plan.accumulate_results


def test_plan_rpq_variable_length_uses_fixpoint():
    plan = plan_rpq(RPQuery("a+", [0]))
    assert any(isinstance(step, FixpointStep) for step in plan.steps)
    assert plan.accumulate_results
    assert "fixpoint" in plan.explain()


def test_plan_query_dispatch():
    assert plan_query(KHopQuery(hops=1, sources=[0])).num_expansions == 1
    assert plan_query(RPQuery("a", [0])).num_expansions == 1
    with pytest.raises(TypeError):
        plan_query("not a query")


# ----------------------------------------------------------------------
# Reference evaluator
# ----------------------------------------------------------------------
def chain_graph(length: int) -> DiGraph:
    return DiGraph.from_edges([(i, i + 1) for i in range(length)])


def test_evaluate_khop_exact_semantics():
    graph = chain_graph(5)
    result = evaluate_khop(graph, KHopQuery(hops=2, sources=[0, 3, 99]))
    assert result.destinations == [{2}, {5}, set()]


def test_evaluate_rpq_with_labels():
    graph = DiGraph()
    graph.add_edge(0, 1, label=1)
    graph.add_edge(1, 2, label=2)
    graph.add_edge(0, 3, label=2)
    label_names = {1: "a", 2: "b"}
    result = evaluate_rpq(graph, RPQuery("a/b", [0]), label_names=label_names)
    assert result.destinations == [{2}]
    result = evaluate_rpq(graph, RPQuery("b", [0]), label_names=label_names)
    assert result.destinations == [{3}]


def test_evaluate_rpq_kleene_includes_source():
    graph = chain_graph(3)
    result = evaluate_rpq(graph, RPQuery(".*", [1]))
    assert result.destinations == [{1, 2, 3}]


def test_evaluate_rpq_plus_excludes_source_unless_cycle():
    graph = DiGraph.from_edges([(0, 1), (1, 0)])
    result = evaluate_rpq(graph, RPQuery(".+", [0]))
    assert result.destinations == [{0, 1}]
    chain = chain_graph(2)
    result = evaluate_rpq(chain, RPQuery(".+", [0]))
    assert result.destinations == [{1, 2}]


def test_khop_equals_rpq_wildcard_expression():
    graph = random_graph(60, 240, seed=8)
    sources = random_source_batch(list(graph.nodes()), 10, seed=1)
    khop = evaluate_khop(graph, KHopQuery(hops=2, sources=sources))
    rpq = evaluate_rpq(graph, RPQuery(".{2}", sources))
    assert khop.destinations == rpq.destinations


def test_count_khop_paths_counts_multiplicity():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    assert count_khop_paths(graph, [0], 2) == 2
    assert count_khop_paths(graph, [0], 0) == 1
    with pytest.raises(ValueError):
        count_khop_paths(graph, [0], -1)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=300), st.integers(min_value=1, max_value=3))
def test_khop_destinations_subset_of_reachable(seed, hops):
    graph = random_graph(40, 160, seed=seed)
    sources = random_source_batch(list(graph.nodes()), 5, seed=seed)
    exact = evaluate_khop(graph, KHopQuery(hops=hops, sources=sources))
    accumulated = evaluate_rpq(graph, RPQuery(".+", sources))
    for exact_set, reach_set in zip(exact.destinations, accumulated.destinations):
        assert exact_set <= reach_set
