"""Tests for the batch update path: requeue indexing and backend parity."""

from __future__ import annotations

import pytest

from repro.core import Moctopus, MoctopusConfig
from repro.core.update_processor import _PendingBatch
from repro.graph import DiGraph
from repro.graph.stream import UpdateKind, UpdateOp
from repro.partition.base import HOST_PARTITION
from repro.pim import CostModel


# ----------------------------------------------------------------------
# _PendingBatch (the per-source requeue index)
# ----------------------------------------------------------------------
def test_pending_batch_requeue_is_per_source():
    pending = _PendingBatch()
    pending.queue_add(0, seq=0, src=1, dst=10, label=0)
    pending.queue_add(0, seq=1, src=2, dst=20, label=0)
    pending.queue_add(0, seq=2, src=1, dst=11, label=3)
    pending.queue_sub(0, seq=3, src=1, dst=12)
    pending.queue_sub(0, seq=4, src=3, dst=30)
    requeued = pending.requeue_source(1, module=0)
    # src 1's entries come back in batch order; others are untouched.
    assert requeued == [
        (0, UpdateKind.INSERT, 1, 10, 0),
        (2, UpdateKind.INSERT, 1, 11, 3),
        (3, UpdateKind.DELETE, 1, 12, 0),
    ]
    module_ops = pending.finalize()
    entries, has_adds, has_subs = module_ops[0]
    assert entries == [
        (1, UpdateKind.INSERT, 2, 20, 0),
        (4, UpdateKind.DELETE, 3, 30, 0),
    ]
    assert has_adds and has_subs


def test_pending_batch_keeps_emptied_module_operator():
    """A module whose whole payload was requeued still gets an operator.

    The scalar path always dispatched (and charged a kernel launch for)
    an operator to a module that had entries queued, even if a promotion
    drained them all; the tombstone finalize must preserve that.
    """
    pending = _PendingBatch()
    pending.queue_add(2, seq=0, src=7, dst=70, label=0)
    pending.requeue_source(7, module=2)
    module_ops = pending.finalize()
    assert module_ops == {2: ([], True, False)}


def test_pending_batch_untracked_bulk_entries_are_not_requeued():
    pending = _PendingBatch()
    pending.extend_adds(1, [(0, 5, 50, 0), (1, 6, 60, 0)])
    pending.queue_add(1, seq=2, src=5, dst=51, label=0)
    requeued = pending.requeue_source(5, module=1)
    # Only the tracked entry moves; the bulk (never-promotable) ones stay.
    assert requeued == [(2, UpdateKind.INSERT, 5, 51, 0)]
    entries, has_adds, has_subs = pending.finalize()[1]
    assert entries == [
        (0, UpdateKind.INSERT, 5, 50, 0),
        (1, UpdateKind.INSERT, 6, 60, 0),
    ]
    assert has_adds and not has_subs


def test_pending_batch_finalize_orders_by_batch_position():
    """Bulk-queued adds and subs interleave back into batch order."""
    pending = _PendingBatch()
    pending.extend_subs(0, [(0, 1, 10), (2, 1, 11)])
    pending.extend_adds(0, [(1, 1, 10, 0), (3, 2, 20, 0)])
    entries, _, _ = pending.finalize()[0]
    assert [entry[0] for entry in entries] == [0, 1, 2, 3]


def test_pending_batch_requeue_of_unknown_source_is_empty():
    pending = _PendingBatch()
    pending.queue_add(0, seq=0, src=1, dst=10, label=0)
    assert pending.requeue_source(99, module=0) == []
    assert pending.requeue_source(1, module=5) == []


# ----------------------------------------------------------------------
# Promotions mid-batch (requeue through the real update path)
# ----------------------------------------------------------------------
def promotion_system(engine="python", threshold=4):
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        high_degree_threshold=threshold,
        engine=engine,
    )
    return Moctopus.from_graph(graph, config)


@pytest.mark.parametrize("engine", ["python", "vectorized", "matrix"])
def test_multiple_promotions_in_one_batch(engine):
    """Two sources crossing the threshold in the same batch both requeue."""
    system = promotion_system(engine=engine)
    assert system.partition_of(0) != HOST_PARTITION
    assert system.partition_of(1) != HOST_PARTITION
    edges = []
    for dst in range(10, 15):
        edges.append((0, dst))
        edges.append((1, dst + 10))
    stats = system.insert_edges(edges)
    assert stats.counters["updates"] == len(edges)
    # Both sources ended up promoted, with every inserted edge applied
    # exactly once (requeued entries must not double-apply).
    assert system.partition_of(0) == HOST_PARTITION
    assert system.partition_of(1) == HOST_PARTITION
    assert system._partitioner.promotions() == 2
    for src, dst in edges:
        assert system.has_edge(src, dst)
        assert system._host_storage.has_edge(src, dst)
    result, _ = system.batch_khop([0, 1], hops=1)
    assert result.destinations_of(0) == set(system.graph.successors(0))
    assert result.destinations_of(1) == set(system.graph.successors(1))


@pytest.mark.parametrize("engine", ["python", "vectorized", "matrix"])
def test_promotion_requeues_pending_deletes_too(engine):
    system = promotion_system(engine=engine)
    ops = [UpdateOp(UpdateKind.DELETE, 0, 1)]  # queued for 0's module first
    ops += [UpdateOp(UpdateKind.INSERT, 0, dst) for dst in range(20, 25)]
    system.apply_updates(ops)
    assert system.partition_of(0) == HOST_PARTITION
    assert not system.has_edge(0, 1)  # the requeued delete was applied
    for dst in range(20, 25):
        assert system.has_edge(0, dst)


@pytest.mark.parametrize("engine", ["python", "vectorized", "matrix"])
def test_same_edge_delete_then_insert_in_one_batch(engine):
    """A batch replays sequentially per edge: the last op wins.

    Regression test: applying whole ``add`` operators before ``sub``
    operators used to resolve [DELETE e, DELETE e, INSERT e] to *absent*
    (the insert landed first and the deletes erased it).
    """
    graph = DiGraph.from_edges([(0, 1), (0, 2), (3, 0)])
    config = MoctopusConfig(cost_model=CostModel(num_modules=4), engine=engine)
    system = Moctopus.from_graph(graph, config)
    system.apply_updates(
        [
            UpdateOp(UpdateKind.DELETE, 0, 1),
            UpdateOp(UpdateKind.DELETE, 0, 1),
            UpdateOp(UpdateKind.INSERT, 0, 1),
        ]
    )
    assert system.has_edge(0, 1)
    result, _ = system.batch_khop([0], hops=1)
    assert result.destinations_of(0) == {1, 2}
    # And the mirror graph agrees with the storages.
    assert 1 in set(system.graph.successors(0))

    system.apply_updates(
        [
            UpdateOp(UpdateKind.INSERT, 0, 9),
            UpdateOp(UpdateKind.DELETE, 0, 9),
        ]
    )
    assert not system.has_edge(0, 9)


def test_mixed_batch_stats_match_insert_then_delete_state():
    """apply_updates on a mixed stream leaves the same graph as the parts."""
    system = promotion_system()
    ops = [
        UpdateOp(UpdateKind.INSERT, 2, 40),
        UpdateOp(UpdateKind.DELETE, 2, 3),
        UpdateOp(UpdateKind.INSERT, 5, 2),
        UpdateOp(UpdateKind.DELETE, 3, 0),
    ]
    system.apply_updates(ops)
    assert system.has_edge(2, 40)
    assert not system.has_edge(2, 3)
    assert system.has_edge(5, 2)
    assert not system.has_edge(3, 0)
