"""Tests of the ``repro.analysis`` subsystem.

Three layers:

* lint framework — finding identity, inline ``# repro: noqa`` handling,
  baseline load/cover/update round-trips, the CLI exit contract;
* the project rules REP001-REP006 — for each rule a fixture snippet the
  rule must flag and close negative variants it must stay quiet on
  (every positive test fails if its rule is disabled or removed from
  the registry);
* the runtime lock-order checker — a constructed ABBA cycle is
  *reported* without any thread deadlocking, hazards fire for
  join/blocking-queue-ops under a lock, Condition/Event semantics
  survive instrumentation, and the real scheduler/server ``close()``
  paths produce zero hazards and zero cycles (the regression tests for
  the join-under-``_close_lock`` bug this PR fixes).
"""

from __future__ import annotations

import asyncio
import textwrap
import threading
import time

import pytest

from repro.analysis import Baseline, Finding, LintRunner
from repro.analysis import lockcheck
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.lockcheck import InstrumentedLock, lock_order_checker
from repro.analysis.rules import all_rules, rule_by_id
from repro.core import Moctopus, MoctopusConfig
from repro.graph import random_graph
from repro.net import MoctopusClient, MoctopusServer
from repro.pim import CostModel
from repro.serve import BatchScheduler


def lint(rule_id, source, relpath="src/repro/sample.py"):
    """Run exactly one rule over a dedented snippet."""
    runner = LintRunner(rules=[rule_by_id(rule_id)])
    return runner.check_source(textwrap.dedent(source), relpath)


def lint_all(source, relpath="src/repro/sample.py"):
    runner = LintRunner(rules=all_rules())
    return runner.check_source(textwrap.dedent(source), relpath)


@pytest.fixture(scope="module")
def system():
    graph = random_graph(24, 80, seed=3)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4), high_degree_threshold=8
    )
    return Moctopus.from_graph(graph, config)


# ----------------------------------------------------------------------
# Framework: findings, noqa, baseline
# ----------------------------------------------------------------------
class TestFramework:
    def test_finding_key_is_line_number_free(self):
        a = Finding("REP001", "a.py", 10, "m", "h", scope="C.f", detail="d")
        b = Finding("REP001", "a.py", 99, "m2", "h", scope="C.f", detail="d")
        assert a.key() == b.key()

    def test_inline_noqa_suppresses_only_named_rule(self):
        source = """
        def flush(self):
            with self._cache_lock:
                snapshot = deepcopy(self._cache)  # repro: noqa REP001 — bench-only path
        """
        assert lint("REP001", source) == []
        # Same snippet without the noqa: the rule fires.
        assert lint("REP001", source.replace("# repro: noqa REP001 — bench-only path", ""))
        # A noqa for a different rule does not cover REP001.
        other = source.replace("REP001 —", "REP003 —")
        assert lint("REP001", other)

    def test_noqa_on_comment_line_covers_next_code_line(self):
        source = """
        def flush(self):
            with self._cache_lock:
                # repro: noqa REP001 — long justification sits on its own line
                snapshot = deepcopy(self._cache)
        """
        assert lint("REP001", source) == []

    def test_baseline_covers_by_key_and_keeps_justification(self):
        finding = Finding(
            "REP001", "a.py", 10, "m", "h", scope="C.f", detail="d"
        )
        empty = Baseline()
        assert not empty.covers(finding)
        updated = Baseline.from_findings([finding], empty)
        assert updated.covers(finding)
        # Re-deriving from findings preserves a hand-written justification.
        updated.entries[0]["justification"] = "deliberate: benchmark path"
        rebuilt = Baseline.from_findings([finding], Baseline(updated.entries))
        assert rebuilt.entries[0]["justification"] == "deliberate: benchmark path"

    def test_baseline_round_trip(self, tmp_path):
        finding = Finding(
            "REP002", "b.py", 3, "m", "h", scope="S.refresh", detail="pin"
        )
        baseline = Baseline.from_findings([finding], Baseline())
        path = str(tmp_path / "baseline.json")
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.covers(finding)
        assert Baseline.load(str(tmp_path / "missing.json")).entries == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "pkg"
        dirty.mkdir()
        (dirty / "mod.py").write_text(
            textwrap.dedent(
                """
                def close(self):
                    with self._close_lock:
                        self._worker.join()
                """
            )
        )
        baseline = str(tmp_path / "baseline.json")
        # Finding, no baseline -> exit 1.
        assert analysis_main([str(dirty), "--baseline", baseline]) == 1
        capsys.readouterr()
        # Accept it into the baseline -> exit 0 afterwards.
        assert analysis_main(
            [str(dirty), "--baseline", baseline, "--update-baseline"]
        ) == 0
        capsys.readouterr()
        assert analysis_main([str(dirty), "--baseline", baseline]) == 0
        # --no-baseline reports it again.
        assert analysis_main(
            [str(dirty), "--baseline", baseline, "--no-baseline"]
        ) == 1
        capsys.readouterr()
        # Nonexistent path -> exit 2.
        assert analysis_main([str(tmp_path / "nope")]) == 2

    def test_cli_json_format(self, tmp_path, capsys):
        import json as json_module

        dirty = tmp_path / "pkg"
        dirty.mkdir()
        (dirty / "mod.py").write_text(
            "def f(self):\n    with self._lock:\n        self._worker.join()\n"
        )
        assert analysis_main(
            [str(dirty), "--format", "json", "--no-baseline"]
        ) == 1
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "REP001"
        assert payload["findings"][0]["line"] == 3


# ----------------------------------------------------------------------
# REP001 — no blocking calls while holding a lock
# ----------------------------------------------------------------------
class TestRep001:
    def test_flags_join_under_lock(self):
        findings = lint(
            "REP001",
            """
            def close(self):
                with self._close_lock:
                    self._worker.join(timeout)
            """,
        )
        assert [f.rule for f in findings] == ["REP001"]
        assert findings[0].scope == "close"
        assert "join" in findings[0].detail

    def test_flags_blocking_queue_and_deepcopy_and_wait(self):
        findings = lint(
            "REP001",
            """
            def drain(self):
                with self._lock:
                    item = self.task_queue.get()
                    payload = deepcopy(item)
                    self._done_event.wait()
            """,
        )
        assert len(findings) == 3

    def test_release_then_act_is_clean(self):
        # The false-positive guard: blocking call AFTER the lock body
        # exits (the fixed close() shape) must not be flagged.
        findings = lint(
            "REP001",
            """
            def close(self):
                with self._close_lock:
                    self._closed = True
                self._worker.join(timeout)
                self.task_queue.put(None)
            """,
        )
        assert findings == []

    def test_nonblocking_variants_are_clean(self):
        findings = lint(
            "REP001",
            """
            def poke(self):
                with self._lock:
                    self.task_queue.put_nowait(None)
                    self.task_queue.put(None, block=False)
                    item = self.task_queue.get(timeout=0)
            """,
        )
        assert findings == []

    def test_nested_function_defined_under_lock_is_clean(self):
        findings = lint(
            "REP001",
            """
            def schedule(self):
                with self._lock:
                    def _later():
                        self._worker.join()
                    self._callbacks.append(_later)
            """,
        )
        assert findings == []

    def test_non_lock_with_is_ignored(self):
        findings = lint(
            "REP001",
            """
            def dump(self):
                with open(self.path) as handle:
                    self._worker.join()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP002 — pins released on all paths
# ----------------------------------------------------------------------
class TestRep002:
    def test_flags_unpaired_pin(self):
        findings = lint(
            "REP002",
            """
            def refresh(self):
                epoch = self.manager.pin()
                self.rebase(epoch)
                self.manager.unpin(epoch)
            """,
        )
        assert [f.rule for f in findings] == ["REP002"]
        assert findings[0].scope == "refresh"

    def test_try_finally_is_clean(self):
        findings = lint(
            "REP002",
            """
            def execute(self):
                epoch = self.manager.pin()
                try:
                    return self.run(epoch)
                finally:
                    self.manager.unpin(epoch)
            """,
        )
        assert findings == []

    def test_except_rollback_is_clean(self):
        findings = lint(
            "REP002",
            """
            def swap(self):
                epoch = self.manager.pin()
                try:
                    self.rebase(epoch)
                except Exception:
                    self.manager.unpin(epoch)
                    raise
            """,
        )
        assert findings == []

    def test_pin_only_ownership_escape_is_clean(self):
        findings = lint(
            "REP002",
            """
            def __init__(self, manager):
                self.epoch = manager.pin()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP003 — durable bytes funnel through wal_write/fsync_directory
# ----------------------------------------------------------------------
class TestRep003:
    DURABILITY = "src/repro/durability/extra.py"

    def test_flags_raw_write_and_fsync_in_durability(self):
        findings = lint(
            "REP003",
            """
            import os

            def checkpoint(handle, payload):
                handle.write(payload)
                os.fsync(handle.fileno())
            """,
            relpath=self.DURABILITY,
        )
        assert len(findings) == 2
        assert all(f.rule == "REP003" for f in findings)

    def test_funnel_functions_themselves_are_exempt(self):
        findings = lint(
            "REP003",
            """
            import os

            def wal_write(handle, payload):
                handle.write(payload)

            def fsync_directory(path):
                fd = os.open(path, os.O_RDONLY)
                os.fsync(fd)
            """,
            relpath=self.DURABILITY,
        )
        assert findings == []

    def test_rule_is_scoped_to_durability_files(self):
        findings = lint(
            "REP003",
            """
            def dump(handle, payload):
                handle.write(payload)
            """,
            relpath="src/repro/serve/dump.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP004 — no in-place mutation of frozen snapshot arrays
# ----------------------------------------------------------------------
class TestRep004:
    def test_flags_subscript_store_into_snapshot(self):
        findings = lint(
            "REP004",
            """
            def tamper(graph):
                csr = graph.to_csr()
                csr[0] = 1
            """,
        )
        assert [f.rule for f in findings] == ["REP004"]

    def test_flags_mutator_on_attribute_of_snapshot(self):
        findings = lint(
            "REP004",
            """
            def tamper(manager):
                snap = manager.snapshot_of(3)
                indptr = snap.indptr
                indptr.sort()
            """,
        )
        assert [f.rule for f in findings] == ["REP004"]

    def test_flags_out_kwarg_into_snapshot(self):
        findings = lint(
            "REP004",
            """
            def reduce(graph, np):
                degrees = graph.degree_histogram()
                np.cumsum(degrees, out=degrees)
            """,
        )
        assert [f.rule for f in findings] == ["REP004"]

    def test_copy_clears_taint(self):
        findings = lint(
            "REP004",
            """
            def safe(graph):
                csr = graph.to_csr()
                csr = csr.copy()
                csr[0] = 1
                csr.sort()
            """,
        )
        assert findings == []

    def test_untainted_arrays_are_clean(self):
        findings = lint(
            "REP004",
            """
            def build(self, np):
                scratch = np.zeros(16)
                scratch[0] = 1
                scratch.sort()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP005 — no blocking calls on the event loop (net/ only)
# ----------------------------------------------------------------------
class TestRep005:
    NET = "src/repro/net/sample.py"

    def test_flags_blocking_get_in_async_def(self):
        findings = lint(
            "REP005",
            """
            async def answer(self):
                frame = self.reply_queue.get()
            """,
            relpath=self.NET,
        )
        assert [f.rule for f in findings] == ["REP005"]
        assert "answer" in findings[0].detail

    def test_flags_scheduler_close_and_gate_outcome(self):
        findings = lint(
            "REP005",
            """
            async def shutdown(self):
                payload = self.gate.outcome(timeout=5)
                self.scheduler.close()
            """,
            relpath=self.NET,
        )
        assert len(findings) == 2

    def test_nested_sync_def_is_clean(self):
        # A callback body defined inside the coroutine runs wherever it
        # is invoked (scheduler thread, call_soon_threadsafe), not on
        # the awaiting path — the shipped `_transfer` shape.
        findings = lint(
            "REP005",
            """
            async def answer(self, gate):
                def _transfer():
                    return gate.outcome()
                gate.add_done_callback(_transfer)
            """,
            relpath=self.NET,
        )
        assert findings == []

    def test_asyncio_primitives_are_clean(self):
        findings = lint(
            "REP005",
            """
            async def drain(self, tasks):
                await asyncio.wait(tasks)
                await asyncio.get_running_loop().run_in_executor(
                    None, self.scheduler.close
                )
            """,
            relpath=self.NET,
        )
        assert findings == []

    def test_rule_is_scoped_to_net_files(self):
        findings = lint(
            "REP005",
            """
            async def answer(self):
                frame = self.reply_queue.get()
            """,
            relpath="src/repro/serve/sample.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP006 — no unordered set iteration feeding stats/wire sinks
# ----------------------------------------------------------------------
class TestRep006:
    def test_flags_set_iteration_feeding_counter(self):
        findings = lint(
            "REP006",
            """
            def publish(self, stats):
                pending = {1, 2, 3}
                for item in pending:
                    stats.add_counter("served", item)
            """,
        )
        assert [f.rule for f in findings] == ["REP006"]

    def test_flags_set_call_and_set_algebra(self):
        findings = lint(
            "REP006",
            """
            def emit(self, conn, frontier, visited):
                frontier = set(frontier)
                visited = set(visited)
                for node in frontier | visited:
                    conn.send(node)
            """,
        )
        assert [f.rule for f in findings] == ["REP006"]

    def test_sorted_iteration_is_clean(self):
        findings = lint(
            "REP006",
            """
            def publish(self, stats):
                pending = {1, 2, 3}
                for item in sorted(pending):
                    stats.add_counter("served", item)
            """,
        )
        assert findings == []

    def test_list_iteration_and_sinkless_loops_are_clean(self):
        findings = lint(
            "REP006",
            """
            def tally(self, stats):
                pending = [1, 2, 3]
                for item in pending:
                    stats.add_counter("served", item)
                seen = {4, 5}
                total = 0
                for item in seen:
                    total += item
                return total
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_six_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006"
        ]

    def test_rule_by_id_rejects_unknown(self):
        with pytest.raises(KeyError):
            rule_by_id("REP999")

    def test_default_runner_uses_full_registry(self):
        findings = lint_all(
            """
            def close(self):
                with self._close_lock:
                    self._worker.join()
            """
        )
        assert [f.rule for f in findings] == ["REP001"]


# ----------------------------------------------------------------------
# Runtime lock-order checker
# ----------------------------------------------------------------------
class TestLockcheck:
    def test_abba_cycle_is_reported_without_deadlocking(self):
        # Single thread, sequential acquisitions: nothing can deadlock,
        # yet the opposite orders are exactly what would deadlock two
        # interleaving threads — the checker must report the cycle.
        with lock_order_checker() as checker:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with lock_a:
                    pass
        cycles = checker.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 3  # A -> B -> A, by creation site
        assert "POTENTIAL DEADLOCKS" in checker.report()

    def test_contended_abba_with_timeouts_is_detected(self):
        # The fully contended interleaving: each thread holds what the
        # other wants, so neither nested acquire ever SUCCEEDS — edges
        # must be recorded at blocking-attempt time or this exact
        # demonstration of the deadlock leaves no trace in the graph.
        with lock_order_checker() as checker:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            barrier = threading.Barrier(2)

            def first():
                with lock_a:
                    barrier.wait()
                    if lock_b.acquire(timeout=0.2):
                        lock_b.release()

            def second():
                with lock_b:
                    barrier.wait()
                    if lock_a.acquire(timeout=0.2):
                        lock_a.release()

            threads = [
                threading.Thread(target=first),
                threading.Thread(target=second),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        assert len(checker.cycles()) == 1

    def test_consistent_order_has_no_cycle(self):
        with lock_order_checker() as checker:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            for _ in range(3):
                with lock_a:
                    with lock_b:
                        pass
        assert checker.cycles() == []
        assert checker.edge_count() == 1
        assert "no lock-order cycles" in checker.report()

    def test_join_under_lock_is_a_hazard(self):
        # The shape of the bug this PR fixes in BatchScheduler.close /
        # MoctopusServer.close: joining a worker while holding the lock.
        with lock_order_checker() as checker:
            lock = threading.Lock()
            worker = threading.Thread(target=time.sleep, args=(0.01,))
            worker.start()
            with lock:
                worker.join()
        kinds = [hazard.kind for hazard in checker.hazards]
        assert any(kind.startswith("Thread.join") for kind in kinds)
        assert "HAZARDS" in checker.report()

    def test_join_outside_lock_is_clean(self):
        with lock_order_checker() as checker:
            lock = threading.Lock()
            worker = threading.Thread(target=time.sleep, args=(0.01,))
            worker.start()
            with lock:
                closed = True
            worker.join()
        assert checker.hazards == []

    def test_blocking_queue_ops_under_lock_are_hazards(self):
        import queue

        with lock_order_checker() as checker:
            lock = threading.Lock()
            unbounded = queue.Queue()
            bounded = queue.Queue(maxsize=1)
            unbounded.put("item")
            with lock:
                unbounded.get()          # blocking get: hazard
                bounded.put("x")         # bounded put: hazard
            with lock:
                unbounded.put("y")       # unbounded put: cannot block
                unbounded.get_nowait()   # non-blocking get
        kinds = [hazard.kind for hazard in checker.hazards]
        assert kinds.count("Queue.get(block=True)") == 1
        assert kinds.count("Queue.put(block=True)") == 1

    def test_event_and_condition_survive_instrumentation(self):
        with lock_order_checker():
            event = threading.Event()
            results = []

            def waiter():
                event.wait(timeout=5)
                results.append("woke")

            thread = threading.Thread(target=waiter)
            thread.start()
            event.set()
            thread.join(timeout=5)
        assert results == ["woke"]

    def test_rlock_reentrancy_is_not_a_self_edge(self):
        with lock_order_checker() as checker:
            rlock = threading.RLock()
            with rlock:
                with rlock:
                    pass
        assert checker.cycles() == []
        assert checker.edge_count() == 0

    def test_install_is_exclusive_and_uninstall_restores(self):
        with lock_order_checker():
            assert isinstance(threading.Lock(), InstrumentedLock)
            with pytest.raises(RuntimeError):
                lockcheck.install()
        assert lockcheck.active_checker() is None
        assert not isinstance(threading.Lock(), InstrumentedLock)


# ----------------------------------------------------------------------
# Regression: close() paths under the lock-order checker
# ----------------------------------------------------------------------
class TestCloseRegression:
    """Red on the pre-fix tree: the old ``close()`` joined its worker
    while holding ``_close_lock``, which the checker records as a
    ``Thread.join`` hazard.  The fixed mark-under-lock / join-outside
    shape must produce zero hazards and zero cycles — including when
    several closers race."""

    def _join_hazards(self, checker):
        return [
            hazard
            for hazard in checker.hazards
            if hazard.kind.startswith("Thread.join")
        ]

    def test_scheduler_concurrent_close_is_hazard_free(self, system):
        with lock_order_checker() as checker:
            scheduler = BatchScheduler(system)
            assert scheduler.query(0, 2) == set(
                system.batch_khop(sources=[0], hops=2)[0].destinations_of(0)
            )
            closers = [
                threading.Thread(target=scheduler.close) for _ in range(3)
            ]
            for thread in closers:
                thread.start()
            for thread in closers:
                thread.join(timeout=15)
            assert not any(thread.is_alive() for thread in closers)
        assert self._join_hazards(checker) == []
        assert checker.cycles() == []

    def test_server_concurrent_close_is_hazard_free(self, system):
        with lock_order_checker() as checker:
            scheduler = BatchScheduler(system)
            server = MoctopusServer(
                system, scheduler=scheduler, port=0
            ).start()
            try:
                with MoctopusClient("127.0.0.1", server.port) as cli:
                    cli.khop(0, 2, timeout=10)
                closers = [
                    threading.Thread(target=server.close) for _ in range(2)
                ]
                for thread in closers:
                    thread.start()
                for thread in closers:
                    thread.join(timeout=20)
                assert not any(thread.is_alive() for thread in closers)
            finally:
                server.close()
                scheduler.close()
        assert self._join_hazards(checker) == []
        assert checker.cycles() == []

    def test_shutdown_async_keeps_loop_responsive(self, system):
        # REP005 regression: shutdown_async offloads the scheduler's
        # blocking close() to the executor, so other tasks on the loop
        # keep ticking through the drain.  Before the fix the heartbeat
        # would freeze for the whole close.
        async def scenario():
            server = await MoctopusServer(system, port=0).start_async()
            original_close = server.scheduler.close

            def slow_close(timeout=5.0):
                time.sleep(0.5)
                original_close(timeout)

            server.scheduler.close = slow_close
            ticks = []

            async def heartbeat():
                while True:
                    ticks.append(time.monotonic())
                    await asyncio.sleep(0.05)

            beat = asyncio.create_task(heartbeat())
            await asyncio.sleep(0.1)
            await server.shutdown_async(drain_timeout=5)
            beat.cancel()
            return ticks

        ticks = asyncio.run(scenario())
        # 0.5s of blocking close at a 0.05s cadence: the loop must have
        # ticked through it many times, not frozen.
        assert len(ticks) >= 6
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert max(gaps) < 0.45, "event loop froze during shutdown_async"
