"""Integration tests: the three engines on realistic end-to-end scenarios."""

from __future__ import annotations

import pytest

from repro.baselines import PIMHashSystem, RedisGraphEngine
from repro.core import Moctopus, MoctopusConfig
from repro.graph import PropertyGraph, UpdateStream, load_dataset
from repro.pim import CostModel
from repro.rpq import KHopQuery, RPQuery, evaluate_khop, evaluate_rpq, random_source_batch


COST_MODEL = CostModel(num_modules=8)


def test_figure2_routing_scenario_end_to_end():
    """The paper's Figure 2: batch 2-hop query over a routing graph."""
    network = PropertyGraph()
    for node_id in range(10):
        network.add_node(node_id, label="Router",
                         properties={"ip": f"127.0.0.{node_id}"})
    for src, dst in [(0, 1), (1, 2), (2, 5), (5, 6), (5, 8), (2, 3), (3, 6),
                     (2, 4), (4, 9), (6, 9), (7, 8), (8, 7), (9, 0)]:
        network.add_edge(src, dst, label="CONNECTS")

    system = Moctopus.from_graph(
        network.adjacency(), MoctopusConfig(cost_model=COST_MODEL)
    )
    # UNWIND ['127.0.0.2', '127.0.0.3'] AS ip MATCH ({ip})-[2]->(t)
    sources = [record.node_id
               for ip in ("127.0.0.2", "127.0.0.3")
               for record in network.find_nodes(ip=ip)]
    result, stats = system.batch_khop(sources, hops=2)
    # The paper's stated answer: 127.0.0.2 reaches nodes 6, 8, 9 and
    # 127.0.0.3 reaches node 9 in exactly two hops.
    assert result.destinations_of(0) == {6, 8, 9}
    assert result.destinations_of(1) == {9}
    assert result == evaluate_khop(
        network.adjacency(), KHopQuery(hops=2, sources=sources)
    )
    assert stats.total_time > 0


def test_dynamic_graph_scenario_consistency():
    """Load a dataset, interleave queries and updates, check all engines agree."""
    graph = load_dataset("com-amazon", scale=0.2)
    moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=COST_MODEL))
    pim_hash = PIMHashSystem.from_graph(graph, cost_model=COST_MODEL)
    redis = RedisGraphEngine.from_graph(graph, cost_model=COST_MODEL)
    stream = UpdateStream(graph, seed=13)

    for round_index in range(3):
        inserts = [op.edge for op in stream.insertion_batch(20)]
        deletes = [op.edge for op in stream.deletion_batch(20)]
        for engine in (moctopus, pim_hash):
            engine.insert_edges(inserts)
            engine.delete_edges(deletes)
        redis.insert_edges(inserts)
        redis.delete_edges(deletes)

        sources = random_source_batch(list(moctopus.graph.nodes()), 12,
                                      seed=round_index)
        expected = evaluate_khop(
            moctopus.graph, KHopQuery(hops=2, sources=sources)
        )
        assert moctopus.batch_khop(sources, 2)[0] == expected
        assert pim_hash.batch_khop(sources, 2)[0] == expected
        assert redis.batch_khop(sources, 2)[0] == expected

    # The three stores hold the same edge set at the end.
    assert moctopus.num_edges == pim_hash.num_edges == redis.num_edges


def test_rpq_agreement_on_labeled_knowledge_graph():
    """A small labeled graph queried with several path expressions."""
    knowledge = PropertyGraph()
    people = ["alice", "bob", "carol", "dave"]
    for index, name in enumerate(people):
        knowledge.add_node(index, label="Person", properties={"name": name})
    for index in range(4, 8):
        knowledge.add_node(index, label="Org")
    edges = [
        (0, 1, "knows"), (1, 2, "knows"), (2, 3, "knows"), (3, 0, "knows"),
        (0, 4, "works_at"), (1, 4, "works_at"), (2, 5, "works_at"),
        (4, 6, "part_of"), (5, 6, "part_of"), (6, 7, "part_of"),
    ]
    for src, dst, label in edges:
        knowledge.add_edge(src, dst, label=label)
    adjacency = knowledge.adjacency()
    label_names = {knowledge.edge_label_id(name): name
                   for name in ("knows", "works_at", "part_of")}

    moctopus = Moctopus.from_graph(
        adjacency, MoctopusConfig(cost_model=COST_MODEL), label_names=label_names
    )
    redis = RedisGraphEngine.from_graph(adjacency, label_names=label_names)

    expressions = [
        "knows",
        "knows/knows",
        "knows+",
        "knows*/works_at",
        "works_at/part_of+",
        "(knows|works_at){2}",
    ]
    for expression in expressions:
        query = RPQuery(expression, sources=[0, 1])
        expected = evaluate_rpq(adjacency, query, label_names=label_names)
        assert moctopus.execute(query)[0] == expected, expression
        assert redis.execute(query)[0] == expected, expression


def test_cost_breakdown_structure_is_consistent():
    """Latency components always add up and PIM systems actually use PIM."""
    graph = load_dataset("web-NotreDame", scale=0.2)
    moctopus = Moctopus.from_graph(graph, MoctopusConfig(cost_model=COST_MODEL))
    sources = random_source_batch(list(graph.nodes()), 32, seed=3)
    _, stats = moctopus.batch_khop(sources, hops=3)
    assert stats.total_time == pytest.approx(
        stats.host_time + stats.cpc_time + stats.ipc_time + stats.pim_time
    )
    assert stats.pim_time > 0
    assert stats.cpc.bytes_moved > 0
    assert len(stats.phase_pim_times) >= 4  # dispatch + 3 hops (+ mwait)
    assert stats.counters["results"] >= 0
    assert stats.counters["batch_size"] == 32
