"""Tests of the asyncio network serving front-end.

Three layers:

* protocol unit tests — frame round-trips, bound enforcement, malformed
  payload rejection;
* wire parity — answers (destinations *and* the full wire-form stats)
  served over a socket must be bit-identical to direct
  :class:`~repro.serve.scheduler.BatchScheduler` calls against the same
  epoch;
* behaviour under pressure — per-client in-flight BUSY, scheduler
  saturation BUSY, request timeouts, graceful shutdown answering every
  in-flight query, auth rejection, and the ``GET /metrics`` scrape
  sharing the query port.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.core import Moctopus, MoctopusConfig
from repro.graph import random_graph
from repro.net import (
    AsyncMoctopusClient,
    MAX_FRAME_BYTES,
    MoctopusClient,
    MoctopusServer,
    PROTOCOL_VERSION,
    ProtocolError,
    ServerBusy,
    ServerError,
    decode_frame,
    encode_frame,
    stats_to_wire,
)
from repro.net.protocol import decode_length, read_frame_blocking
from repro.pim import CostModel
from repro.rpq import RPQuery, evaluate_rpq
from repro.serve import BatchScheduler

LABEL_NAMES = {1: "a", 2: "b", 3: "c"}


@pytest.fixture(scope="module")
def system():
    graph = random_graph(30, 110, seed=7)
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4), high_degree_threshold=8
    )
    return Moctopus.from_graph(graph, config, label_names=LABEL_NAMES)


@pytest.fixture()
def server(system):
    with MoctopusServer(system, port=0).start() as srv:
        yield srv


@pytest.fixture()
def client(server):
    with MoctopusClient("127.0.0.1", server.port) as cli:
        yield cli


# ----------------------------------------------------------------------
# Protocol layer
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    frame = {"type": "query", "id": 3, "kind": "khop", "source": 1, "hops": 2}
    payload = encode_frame(frame)
    length = decode_length(payload[:4])
    assert length == len(payload) - 4
    assert decode_frame(payload[4:]) == frame


def test_encode_rejects_unknown_type_and_oversize():
    with pytest.raises(ProtocolError):
        encode_frame({"type": "warp"})
    with pytest.raises(ProtocolError):
        encode_frame({"type": "ping", "pad": "x" * (MAX_FRAME_BYTES + 1)})


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff\xfenot json")
    with pytest.raises(ProtocolError):
        decode_frame(b"[1,2,3]")  # not an object
    with pytest.raises(ProtocolError):
        decode_frame(b'{"type":"warp"}')  # unknown type
    with pytest.raises(ProtocolError):
        decode_length(struct.pack(">I", MAX_FRAME_BYTES + 1))


# ----------------------------------------------------------------------
# Handshake and authentication
# ----------------------------------------------------------------------
def test_welcome_carries_protocol_and_engine(client):
    assert client.server_info["protocol"] == PROTOCOL_VERSION
    assert client.server_info["server"] == "moctopus"
    assert client.server_info["engine"] == "python"
    assert client.server_info["max_inflight"] >= 1


def test_auth_token_enforced(system):
    with MoctopusServer(system, port=0, auth_token="sekrit").start() as srv:
        with pytest.raises(ServerError) as excinfo:
            MoctopusClient("127.0.0.1", srv.port, auth_token="wrong")
        assert excinfo.value.code == "auth"
        with pytest.raises(ServerError):
            MoctopusClient("127.0.0.1", srv.port)  # no token at all
        assert srv.metrics.snapshot()["auth_failures"] == 2
        with MoctopusClient(
            "127.0.0.1", srv.port, auth_token="sekrit"
        ) as cli:
            cli.ping(timeout=5)


def test_wrong_protocol_version_rejected(server):
    sock = socket.create_connection(("127.0.0.1", server.port), 5)
    try:
        sock.sendall(
            encode_frame({"type": "hello", "id": 0, "protocol": 999})
        )
        reply = read_frame_blocking(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad_request"
        assert read_frame_blocking(sock) is None  # server closed
    finally:
        sock.close()


def test_query_before_hello_rejected(server):
    sock = socket.create_connection(("127.0.0.1", server.port), 5)
    try:
        sock.sendall(
            encode_frame(
                {"type": "query", "id": 1, "kind": "khop", "source": 0,
                 "hops": 1}
            )
        )
        reply = read_frame_blocking(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad_request"
    finally:
        sock.close()


def test_malformed_frame_gets_error_frame(server):
    sock = socket.create_connection(("127.0.0.1", server.port), 5)
    try:
        sock.sendall(struct.pack(">I", 7) + b"notjson")
        reply = read_frame_blocking(sock)
        assert reply["type"] == "error"
        assert reply["code"] == "bad_request"
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Query parity: wire answers == direct scheduler answers
# ----------------------------------------------------------------------
def test_khop_wire_parity_with_direct_scheduler(system, client):
    with system.serve() as direct:
        for source in (0, 5, 11):
            for hops in (1, 2, 3):
                wire_dest, wire_stats = client.khop(source, hops, timeout=15)
                expect_dest, expect_stats = direct.submit(
                    source, hops
                ).outcome(timeout=15)
                assert wire_dest == expect_dest
                assert wire_stats == stats_to_wire(expect_stats)


def test_rpq_wire_parity_with_oracle(system, client):
    for source in (0, 3, 9):
        for expression in (".{2}", ".+", "a", "(a|b)+"):
            wire_dest, wire_stats = client.rpq(source, expression, timeout=15)
            oracle = evaluate_rpq(
                system.graph,
                RPQuery(expression, [source]),
                label_names=LABEL_NAMES,
            )
            assert wire_dest == set(oracle.destinations_of(0))
            assert wire_stats["total_time"] >= 0


def test_pipelined_queries_resolve_out_of_order(client):
    pending = [client.submit_khop(source, 2) for source in range(8)]
    pending += [client.submit_rpq(source, ".+") for source in range(4)]
    # Resolve in reverse submission order: ids must demux correctly.
    answers = [p.result(timeout=15) for p in reversed(pending)]
    assert len(answers) == 12
    for destinations, stats in answers:
        assert isinstance(destinations, set)
        assert stats["total_time"] >= 0


def test_bad_queries_are_bad_requests(client, server):
    before = server.metrics.snapshot()["bad_requests"]
    with pytest.raises(ServerError) as excinfo:
        client.khop(0, hops="two", timeout=5)
    assert excinfo.value.code == "bad_request"
    with pytest.raises(ServerError) as excinfo:
        client.rpq(0, "(((", timeout=5)  # unparsable expression
    assert excinfo.value.code == "bad_request"
    with pytest.raises(ServerError) as excinfo:
        client._send_request(
            {"type": "query", "kind": "teleport", "source": 0}
        ).result(5)
    assert excinfo.value.code == "bad_request"
    with pytest.raises(ServerError) as excinfo:
        client._send_request(
            {"type": "query", "kind": "khop", "source": "zero", "hops": 1}
        ).result(5)
    assert excinfo.value.code == "bad_request"
    assert server.metrics.snapshot()["bad_requests"] >= before + 4
    client.ping(timeout=5)  # connection survived every rejection


# ----------------------------------------------------------------------
# Backpressure: BUSY frames, server stays live
# ----------------------------------------------------------------------
def test_client_inflight_cap_sends_busy_then_timeout(system):
    # A scheduler that never drains (autostart=False) keeps the first
    # query in flight forever: the second must get BUSY immediately and
    # the first must time out — while the server keeps answering pings.
    scheduler = BatchScheduler(system, autostart=False)
    server = MoctopusServer(
        system,
        scheduler=scheduler,
        port=0,
        max_inflight_per_client=1,
        request_timeout=0.5,
    ).start()
    try:
        with MoctopusClient("127.0.0.1", server.port) as cli:
            stuck = cli.submit_khop(0, 2)
            with pytest.raises(ServerBusy) as excinfo:
                cli.khop(1, 2, timeout=5)
            assert excinfo.value.code == "client_inflight"
            cli.ping(timeout=5)  # rejection did not wedge the server
            with pytest.raises(ServerError) as timeout_info:
                stuck.result(timeout=10)
            assert timeout_info.value.code == "timeout"
            cli.ping(timeout=5)  # ...and neither did the timeout
            # Capacity freed by the timeout: the next query is admitted
            # (it times out too — nothing drains — but is not BUSY).
            with pytest.raises(ServerError) as follow_info:
                cli.khop(2, 2, timeout=10)
            assert follow_info.value.code == "timeout"
            snapshot = server.metrics.snapshot()
            assert snapshot["busy_client_inflight"] == 1
            assert snapshot["queries_timed_out"] == 2
            assert snapshot["queries_admitted"] == 2
            assert snapshot["admission_rejections"] >= 1
    finally:
        server.close()
        scheduler.close()


def test_scheduler_saturation_sends_busy(system):
    # queue_depth=1 and no drain thread: the first admitted query fills
    # the queue, the second bounces off it server-side.
    scheduler = BatchScheduler(system, autostart=False, queue_depth=1)
    server = MoctopusServer(
        system, scheduler=scheduler, port=0, request_timeout=0.5
    ).start()
    try:
        with MoctopusClient("127.0.0.1", server.port) as cli:
            cli.submit_khop(0, 2)
            with pytest.raises(ServerBusy) as excinfo:
                cli.khop(1, 2, timeout=5)
            assert excinfo.value.code == "server_saturated"
            cli.ping(timeout=5)
            assert server.metrics.snapshot()["busy_server_saturated"] == 1
    finally:
        server.close()
        scheduler.close()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
def test_shutdown_answers_inflight_queries(system):
    # Admit a query while the drain thread is stopped, then shut the
    # server down concurrently: close() must wait for the (late) answer
    # to go out before the socket dies.
    scheduler = BatchScheduler(system, autostart=False)
    server = MoctopusServer(
        system, scheduler=scheduler, port=0, request_timeout=30.0
    ).start()
    cli = MoctopusClient("127.0.0.1", server.port)
    try:
        pending = cli.submit_khop(0, 2)
        deadline = time.monotonic() + 10
        while server.metrics.snapshot()["queries_admitted"] < 1:
            assert time.monotonic() < deadline, "query never admitted"
            time.sleep(0.01)
        closer = threading.Thread(target=server.close)
        closer.start()
        scheduler._worker.start()  # now let the batch execute
        destinations, stats = pending.result(timeout=15)
        closer.join(timeout=15)
        assert not closer.is_alive()
        assert destinations == set(
            system.batch_khop(sources=[0], hops=2)[0].destinations_of(0)
        )
        assert stats["total_time"] >= 0
    finally:
        cli.close()
        scheduler.close()
        server.close()


def test_queries_after_shutdown_get_closed_error(system):
    scheduler = BatchScheduler(system)
    server = MoctopusServer(system, scheduler=scheduler, port=0).start()
    cli = MoctopusClient("127.0.0.1", server.port)
    try:
        cli.khop(0, 2, timeout=10)
        scheduler.close()  # backend gone, sockets still up
        with pytest.raises(ServerError) as excinfo:
            cli.khop(1, 2, timeout=5)
        assert excinfo.value.code == "closed"
    finally:
        cli.close()
        server.close()
        scheduler.close()


# ----------------------------------------------------------------------
# Metrics: STATS frame and HTTP scrape
# ----------------------------------------------------------------------
def test_stats_frame_reports_backend_gauges(system, client):
    client.khop(0, 2, timeout=10)
    metrics = client.stats(timeout=10)
    assert metrics["queries_admitted"] >= 1
    assert metrics["queries_answered"] >= 1
    assert metrics["scheduler_batches_executed"] >= 1
    assert metrics["scheduler_queries_served"] >= 1
    assert metrics["epochs_published"] >= 1
    assert metrics["served_total_time_seconds"] > 0
    assert metrics['client_inflight{client="1"}'] == 0
    assert any(key.startswith("cache_") for key in metrics)


def _http_get(port: int, path: str) -> tuple:
    sock = socket.create_connection(("127.0.0.1", port), 5)
    try:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        buf = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            buf += chunk
    finally:
        sock.close()
    head, _, body = buf.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body.decode()

def test_http_metrics_scrape_shares_the_port(server, client):
    client.khop(0, 2, timeout=10)
    status, body = _http_get(server.port, "/metrics")
    assert status == "HTTP/1.0 200 OK"
    lines = dict(
        line.rsplit(" ", 1) for line in body.strip().splitlines()
    )
    assert int(lines["moctopus_queries_answered"]) >= 1
    assert "moctopus_scheduler_batches_executed" in lines
    status, _ = _http_get(server.port, "/anything-else")
    assert status == "HTTP/1.0 404 Not Found"
    client.ping(timeout=5)  # frame clients unaffected by HTTP traffic


# ----------------------------------------------------------------------
# Facade, async client, lifecycle
# ----------------------------------------------------------------------
def test_listen_facade_and_goodbye(system):
    with system.listen(port=0) as server:
        assert server.address[1] == server.port
        with MoctopusClient("127.0.0.1", server.port) as cli:
            destinations, _ = cli.khop(0, 1, timeout=10)
            assert destinations == set(
                system.batch_khop(sources=[0], hops=1)[0].destinations_of(0)
            )
        # close() sent GOODBYE; further requests must refuse locally.
        with pytest.raises(RuntimeError):
            cli.ping()


def test_async_client_roundtrip(server, system):
    async def go():
        cli = await AsyncMoctopusClient.connect("127.0.0.1", server.port)
        try:
            destinations, stats = await cli.khop(0, 2)
            replies = await asyncio.gather(
                *(cli.khop(source, 2) for source in range(4))
            )
            rpq_dest, _ = await cli.rpq(0, ".+")
            metrics = await cli.stats()
            await cli.ping()
            return destinations, stats, replies, rpq_dest, metrics
        finally:
            await cli.close()

    destinations, stats, replies, rpq_dest, metrics = asyncio.run(go())
    expect, _ = system.batch_khop(sources=[0], hops=2)
    assert destinations == set(expect.destinations_of(0))
    assert stats["total_time"] >= 0
    assert len(replies) == 4
    assert isinstance(rpq_dest, set)
    assert metrics["queries_answered"] >= 5


def test_async_client_auth_failure(system):
    with MoctopusServer(system, port=0, auth_token="sekrit").start() as srv:

        async def go():
            with pytest.raises(ServerError) as excinfo:
                await AsyncMoctopusClient.connect("127.0.0.1", srv.port)
            assert excinfo.value.code == "auth"

        asyncio.run(go())


def test_server_rejects_bad_knobs(system):
    with pytest.raises(ValueError):
        MoctopusServer(system, port=0, max_inflight_per_client=0)
    with pytest.raises(ValueError):
        MoctopusServer(system, port=0, request_timeout=0)
    server = MoctopusServer(system, port=0)
    try:
        with pytest.raises(RuntimeError):
            server.port  # not started yet
    finally:
        server.close()
