"""A pure-python reference model of the served graph semantics.

:class:`ReferenceModel` is the oracle of the serving layer's
differential harness (``test_serving_isolation.py``): a plain
adjacency-dict graph with the exact update semantics of the system's
storages (inserting an existing edge relabels it, endpoints are
registered lazily by the first insert that mentions them, deletes never
register nodes, rows survive the deletion of their last edge) and a
from-first-principles BFS for the paper's exact-``k``-hop query
semantics.  It shares no code with the engines or the storages, so any
agreement between the two is evidence, not tautology.

General RPQs are answered through :func:`repro.rpq.evaluate_rpq`, the
product-graph BFS that the repo's existing suites already use as the
engine-independent reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.digraph import DEFAULT_LABEL, DiGraph
from repro.rpq import RPQuery, evaluate_rpq


class ReferenceModel:
    """Adjacency-dict oracle with storage-faithful update semantics."""

    def __init__(self) -> None:
        #: ``src -> dst -> label``; a node's presence (as a key) is what
        #: "registered with the partitioner" means in the real system.
        self.rows: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "ReferenceModel":
        """Mirror a bulk-loaded graph (same edge replay as ``load_graph``)."""
        model = cls()
        for src, dst, label in graph.labeled_edges():
            model.insert(src, dst, label)
        for node in graph.nodes():
            model.rows.setdefault(node, {})
        return model

    def copy(self) -> "ReferenceModel":
        """Deep copy — what a pinned epoch freezes."""
        clone = ReferenceModel()
        clone.rows = {src: dict(row) for src, row in self.rows.items()}
        return clone

    # ------------------------------------------------------------------
    # Updates (storage semantics)
    # ------------------------------------------------------------------
    def insert(self, src: int, dst: int, label: int = DEFAULT_LABEL) -> None:
        """Insert (or relabel) ``src -> dst``; registers both endpoints."""
        self.rows.setdefault(src, {})[dst] = label
        self.rows.setdefault(dst, {})

    def delete(self, src: int, dst: int) -> None:
        """Delete ``src -> dst`` if present; never registers a node."""
        row = self.rows.get(src)
        if row is not None:
            row.pop(dst, None)

    def apply(self, inserts: Iterable[Tuple[int, int]] = (),
              deletes: Iterable[Tuple[int, int]] = ()) -> None:
        """Apply insert then delete batches (test convenience)."""
        for src, dst in inserts:
            self.insert(src, dst)
        for src, dst in deletes:
            self.delete(src, dst)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def khop(self, sources: List[int], hops: int) -> List[Set[int]]:
        """Exact-``hops`` reachability per source (unknown source = ∅)."""
        answers: List[Set[int]] = []
        for source in sources:
            if source not in self.rows:
                answers.append(set())
                continue
            frontier = {source}
            for _ in range(hops):
                next_frontier: Set[int] = set()
                for node in frontier:
                    next_frontier.update(self.rows.get(node, {}))
                frontier = next_frontier
                if not frontier:
                    break
            answers.append(frontier)
        return answers

    def rpq(
        self,
        expression: str,
        sources: List[int],
        label_names: Optional[Dict[int, str]] = None,
    ) -> List[Set[int]]:
        """General RPQ via the repo's product-graph reference evaluator."""
        result = evaluate_rpq(
            self.to_digraph(), RPQuery(expression, list(sources)),
            label_names=label_names,
        )
        return result.destinations

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def to_digraph(self) -> DiGraph:
        """Export as a :class:`DiGraph` (for the RPQ reference evaluator)."""
        graph = DiGraph()
        for src, row in self.rows.items():
            graph.add_node(src)
            for dst, label in row.items():
                graph.add_edge(src, dst, label)
        return graph

    def edges(self) -> List[Tuple[int, int]]:
        """Every stored edge (for sampling deletions in the harness)."""
        return [
            (src, dst) for src, row in self.rows.items() for dst in row
        ]

    @property
    def num_nodes(self) -> int:
        """Registered nodes."""
        return len(self.rows)

    @property
    def num_edges(self) -> int:
        """Stored edges."""
        return sum(len(row) for row in self.rows.values())
