"""Tests for sparse boolean/semiring matrices and the k-hop reference."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    BOOLEAN,
    COUNTING,
    MIN_PLUS,
    BooleanMatrix,
    DiGraph,
    SemiringMatrix,
    khop_reachability,
)


def brute_force_product(a_entries, b_entries, size):
    dense_a = [[0] * size for _ in range(size)]
    dense_b = [[0] * size for _ in range(size)]
    for row, col in a_entries:
        dense_a[row][col] = 1
    for row, col in b_entries:
        dense_b[row][col] = 1
    product = set()
    for i in range(size):
        for j in range(size):
            if any(dense_a[i][k] and dense_b[k][j] for k in range(size)):
                product.add((i, j))
    return product


def test_set_get_clear():
    matrix = BooleanMatrix()
    matrix.set(2, 5)
    assert matrix.get(2, 5)
    assert not matrix.get(5, 2)
    matrix.clear(2, 5)
    assert not matrix.get(2, 5)
    assert matrix.nnz == 0


def test_from_graph_shape_and_entries():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
    matrix = BooleanMatrix.from_graph(graph)
    assert matrix.num_rows == matrix.num_cols == 3
    assert set(matrix.entries()) == {(0, 1), (1, 2), (2, 0)}


def test_batch_query_matrix_rows_are_queries():
    matrix = BooleanMatrix.batch_query_matrix([5, 3, 5], num_cols=6)
    assert matrix.row(0) == {5}
    assert matrix.row(1) == {3}
    assert matrix.row(2) == {5}


def test_mxm_small_example():
    adjacency = BooleanMatrix.from_entries([(0, 1), (1, 2), (2, 0)])
    frontier = BooleanMatrix.batch_query_matrix([0], num_cols=3)
    one_hop = frontier.mxm(adjacency)
    assert one_hop.row(0) == {1}
    two_hop = one_hop.mxm(adjacency)
    assert two_hop.row(0) == {2}


def test_element_wise_or_and_transpose():
    a = BooleanMatrix.from_entries([(0, 1)])
    b = BooleanMatrix.from_entries([(1, 0)])
    union = a.element_wise_or(b)
    assert union.get(0, 1) and union.get(1, 0)
    assert a.transpose().get(1, 0)


def test_equality_ignores_shape_metadata():
    a = BooleanMatrix.from_entries([(0, 1)], num_rows=10, num_cols=10)
    b = BooleanMatrix.from_entries([(0, 1)])
    assert a == b


def test_boolean_matrix_unhashable():
    """``__hash__ = None`` (not a raising override): hash() raises the
    standard unhashable-type TypeError *and* Hashable reports False —
    a raising method kept ``isinstance(m, Hashable)`` True."""
    from collections.abc import Hashable

    with pytest.raises(TypeError):
        hash(BooleanMatrix())
    assert BooleanMatrix.__hash__ is None
    assert not isinstance(BooleanMatrix(), Hashable)
    with pytest.raises(TypeError):
        {BooleanMatrix()}


def test_to_dense_round_trip():
    matrix = BooleanMatrix.from_entries([(0, 1), (2, 2)], num_rows=3, num_cols=3)
    dense = matrix.to_dense()
    assert dense[0][1] == 1 and dense[2][2] == 1
    assert sum(sum(row) for row in dense) == 2


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40
    ),
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40
    ),
)
def test_mxm_matches_brute_force(a_entries, b_entries):
    a = BooleanMatrix.from_entries(a_entries, num_rows=8, num_cols=8)
    b = BooleanMatrix.from_entries(b_entries, num_rows=8, num_cols=8)
    expected = brute_force_product(set(a_entries), set(b_entries), 8)
    assert set(a.mxm(b).entries()) == expected


def test_khop_reachability_exact_vs_accumulate():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    adjacency = BooleanMatrix.from_graph(graph)
    exact = khop_reachability(adjacency, [0], hops=2)
    assert exact.row(0) == {2}
    accumulated = khop_reachability(adjacency, [0], hops=2, accumulate=True)
    assert accumulated.row(0) == {1, 2}


def test_khop_reachability_rejects_negative_hops():
    adjacency = BooleanMatrix.from_entries([(0, 1)])
    with pytest.raises(ValueError):
        khop_reachability(adjacency, [0], hops=-1)


def test_counting_semiring_counts_parallel_paths():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    matrix = SemiringMatrix.from_graph(graph, semiring=COUNTING)
    frontier = SemiringMatrix(semiring=COUNTING)
    frontier.set(0, 0, 1)
    two_hop = frontier.mxm(matrix).mxm(matrix)
    assert two_hop.get(0, 3) == 2
    assert two_hop.total() == 2


def test_min_plus_semiring_computes_shortest_paths():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    adjacency = SemiringMatrix.from_graph(graph, semiring=MIN_PLUS)
    # Edges carry weight "one" == 0 under min-plus... use explicit weights.
    adjacency = SemiringMatrix(semiring=MIN_PLUS)
    adjacency.set(0, 1, 1)
    adjacency.set(1, 2, 1)
    adjacency.set(0, 2, 5)
    frontier = SemiringMatrix(semiring=MIN_PLUS)
    frontier.set(0, 0, 0)
    reachable = frontier.mxm(adjacency).mxm(adjacency)
    assert reachable.get(0, 2) == 2


def test_semiring_mismatch_raises():
    a = SemiringMatrix(semiring=COUNTING)
    b = SemiringMatrix(semiring=BOOLEAN)
    a.set(0, 0, 1)
    b.set(0, 0, True)
    with pytest.raises(ValueError):
        a.mxm(b)


def test_semiring_matrix_drops_zero_entries():
    matrix = SemiringMatrix(semiring=COUNTING)
    matrix.set(0, 0, 5)
    matrix.set(0, 0, 0)
    assert matrix.nnz == 0


def test_boolean_projection_matches_pattern():
    counting = SemiringMatrix(semiring=COUNTING)
    counting.set(0, 1, 4)
    counting.set(2, 3, 1)
    pattern = counting.to_boolean()
    assert set(pattern.entries()) == {(0, 1), (2, 3)}


# ----------------------------------------------------------------------
# numpy fast paths (must be result-identical to the scalar loops)
# ----------------------------------------------------------------------
def _scalar_mxm(a, b):
    """The product via the scalar path, whatever the matrices' nnz."""
    import repro.graph.matrix as matrix_module

    saved = matrix_module._NUMPY_MXM_THRESHOLD
    matrix_module._NUMPY_MXM_THRESHOLD = 1 << 60
    try:
        return a.mxm(b)
    finally:
        matrix_module._NUMPY_MXM_THRESHOLD = saved


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40),
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=40
    ),
)
def test_boolean_mxm_numpy_matches_scalar(a_entries, b_entries):
    a = BooleanMatrix.from_entries(a_entries, num_rows=8, num_cols=8)
    b = BooleanMatrix.from_entries(b_entries, num_rows=8, num_cols=8)
    if not a._rows:
        return
    fast = a._mxm_numpy(b)
    assert fast == _scalar_mxm(a, b)


def test_boolean_mxm_dispatches_to_numpy_past_threshold():
    import random

    rng = random.Random(17)
    entries = {(rng.randrange(40), rng.randrange(40)) for _ in range(300)}
    adjacency = BooleanMatrix.from_entries(entries, num_rows=40, num_cols=40)
    assert adjacency.nnz >= 64  # the automatic path is the numpy one
    product = adjacency.mxm(adjacency)
    assert product == _scalar_mxm(adjacency, adjacency)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(1, 5)),
        max_size=30,
    ),
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(1, 5)),
        min_size=1,
        max_size=30,
    ),
)
def test_counting_mxm_numpy_matches_scalar(a_cells, b_cells):
    a = SemiringMatrix(num_rows=7, num_cols=7, semiring=COUNTING)
    b = SemiringMatrix(num_rows=7, num_cols=7, semiring=COUNTING)
    for row, col, value in a_cells:
        a.set(row, col, value)
    for row, col, value in b_cells:
        b.set(row, col, value)
    if not a._values:
        return
    fast = a._mxm_numpy(b)
    assert fast is not None
    scalar = _scalar_mxm(a, b)
    assert {
        (row, col, value)
        for row, cells in fast.iter_rows()
        for col, value in cells.items()
    } == {
        (row, col, value)
        for row, cells in scalar.iter_rows()
        for col, value in cells.items()
    }
    # Values come back as python scalars, exactly like the scalar path.
    for _, cells in fast.iter_rows():
        for value in cells.values():
            assert type(value) is int


def test_min_plus_mxm_numpy_matches_scalar():
    a = SemiringMatrix(semiring=MIN_PLUS)
    b = SemiringMatrix(semiring=MIN_PLUS)
    a.set(0, 1, 1)
    a.set(0, 2, 4)
    b.set(1, 3, 1)
    b.set(2, 3, 1)
    b.set(1, 4, 7)
    fast = a._mxm_numpy(b)
    scalar = _scalar_mxm(a, b)
    assert fast.get(0, 3) == scalar.get(0, 3) == 2
    assert fast.get(0, 4) == scalar.get(0, 4) == 8


def test_semiring_mxm_numpy_falls_back_on_overflow_risk():
    """Counting values past the int64-safe bound keep the exact scalar
    path (python arbitrary-precision ints)."""
    huge = 2 ** 80
    a = SemiringMatrix(semiring=COUNTING)
    b = SemiringMatrix(semiring=COUNTING)
    a.set(0, 1, huge)
    b.set(1, 2, huge)
    assert a._mxm_numpy(b) is None
    assert a.mxm(b).get(0, 2) == huge * huge


def test_semiring_mxm_numpy_falls_back_on_float_rounding_risk():
    """Mixing floats with ints past 2**53 would round under float64."""
    big_int = 2 ** 53 + 1
    a = SemiringMatrix(semiring=MIN_PLUS)
    b = SemiringMatrix(semiring=MIN_PLUS)
    a.set(0, 1, big_int)
    b.set(1, 2, 0.5)
    assert a._mxm_numpy(b) is None
    assert a.mxm(b).get(0, 2) == big_int + 0.5


def test_semiring_without_ufuncs_stays_on_scalar_path():
    from repro.graph.semiring import Semiring

    concat = Semiring(
        name="concat", add=lambda x, y: x or y, multiply=lambda x, y: x + y,
        zero="", one="",
    )
    a = SemiringMatrix(semiring=concat)
    b = SemiringMatrix(semiring=concat)
    for offset in range(70):  # past the nnz threshold
        a.set(0, offset, "a")
        b.set(offset, 1, "b")
    assert a.mxm(b).get(0, 1) == "ab"


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30),
    st.integers(min_value=0, max_value=3),
)
def test_counting_pattern_matches_boolean_reachability(edges, hops):
    """The non-zero pattern of Q x Adj^k over counting == boolean result."""
    graph = DiGraph.from_edges([(s, d) for s, d in edges if s != d] or [(0, 1)])
    adjacency_bool = BooleanMatrix.from_graph(graph)
    sources = sorted(graph.nodes())[:3]
    boolean_result = khop_reachability(adjacency_bool, sources, hops=hops)

    counting_adj = SemiringMatrix.from_graph(graph, semiring=COUNTING)
    frontier = SemiringMatrix(semiring=COUNTING)
    for row, source in enumerate(sources):
        frontier.set(row, source, 1)
    for _ in range(hops):
        frontier = frontier.mxm(counting_adj)
    assert set(frontier.to_boolean().entries()) == set(boolean_result.entries())
