"""Shared fixtures for the test suite.

Tests run on deliberately small graphs and platforms (4-8 PIM modules)
so the whole suite stays fast; the benchmark harness is where the
paper-scale configurations live.
"""

from __future__ import annotations

import os
import sys

import pytest
from hypothesis import HealthCheck, settings

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# ----------------------------------------------------------------------
# Hypothesis profiles (deflake contract)
#
# Every suite must run with ``deadline=None``: the simulated platform's
# wall-clock per example varies wildly across CI runners, and a flaky
# per-example deadline is the classic source of unreproducible red
# builds.  The per-test ``@settings`` decorators already pin their
# ``max_examples``; these profiles pin the global behaviour so a future
# test that forgets the decorator cannot reintroduce deadline flakes.
#
# * ``dev`` (default): deadline off, failure blobs printed so any local
#   failure is replayable with ``@reproduce_failure``.
# * ``ci``: same, plus ``derandomize`` off but seeded externally — the
#   CI fuzz step passes ``--hypothesis-seed=<run id>`` and reports the
#   seed in the job summary, so a red fuzz run is reproducible verbatim.
# ----------------------------------------------------------------------
settings.register_profile(
    "dev",
    deadline=None,
    print_blob=True,
)
settings.register_profile(
    "ci",
    deadline=None,
    print_blob=True,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.core import MoctopusConfig  # noqa: E402
from repro.graph import DiGraph, community_graph, power_law_graph, road_network  # noqa: E402
from repro.pim import CostModel  # noqa: E402


@pytest.fixture
def tiny_graph() -> DiGraph:
    """The routing-connection example graph of the paper's Figure 2."""
    graph = DiGraph()
    edges = [
        (0, 1), (1, 2),
        (2, 5), (5, 6), (5, 8),
        (2, 3), (3, 6),
        (2, 4), (4, 9),
        (6, 9), (7, 8), (8, 7),
        (9, 0),
    ]
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


@pytest.fixture
def small_road() -> DiGraph:
    """A small road-network-like lattice."""
    return road_network(rows=12, cols=12, seed=3)


@pytest.fixture
def small_power_law() -> DiGraph:
    """A small skewed graph with hubs above the high-degree threshold."""
    return power_law_graph(num_nodes=300, edges_per_node=3, skew=0.85, seed=7)


@pytest.fixture
def small_community() -> DiGraph:
    """A small planted-partition graph."""
    return community_graph(num_communities=8, community_size=16, seed=11)


@pytest.fixture
def small_cost_model() -> CostModel:
    """A platform with few modules, for fast simulated runs."""
    return CostModel(num_modules=8)


@pytest.fixture
def small_config(small_cost_model: CostModel) -> MoctopusConfig:
    """Moctopus configuration matching the small platform."""
    return MoctopusConfig(cost_model=small_cost_model)


# ----------------------------------------------------------------------
# Runtime lock-order checking (REPRO_LOCKCHECK=1)
#
# With the variable set, every test runs under the
# ``repro.analysis.lockcheck`` instrumented-lock checker and fails if
# the code under test ever acquired locks in cycle-forming orders
# (potential ABBA deadlock) — detection needs only the *observed*
# orderings, no run has to actually deadlock.  The CI ``analysis`` job
# sets the variable for the serving/parallel/net suites.
#
# ``tests/test_analysis.py`` manages its own checker regions (install
# is deliberately exclusive), so it is excluded from the autouse guard.
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _lock_order_guard(request):
    if os.environ.get("REPRO_LOCKCHECK") != "1":
        yield
        return
    if request.node.module.__name__ == "test_analysis":
        yield
        return
    from repro.analysis import lockcheck

    if lockcheck.active_checker() is not None:  # pragma: no cover - safety
        yield
        return
    with lockcheck.lock_order_checker() as checker:
        yield
    cycles = checker.cycles()
    assert not cycles, (
        "lock-order cycles observed (potential ABBA deadlock):\n"
        + checker.report()
    )
