"""Shared fixtures for the test suite.

Tests run on deliberately small graphs and platforms (4-8 PIM modules)
so the whole suite stays fast; the benchmark harness is where the
paper-scale configurations live.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import MoctopusConfig  # noqa: E402
from repro.graph import DiGraph, community_graph, power_law_graph, road_network  # noqa: E402
from repro.pim import CostModel  # noqa: E402


@pytest.fixture
def tiny_graph() -> DiGraph:
    """The routing-connection example graph of the paper's Figure 2."""
    graph = DiGraph()
    edges = [
        (0, 1), (1, 2),
        (2, 5), (5, 6), (5, 8),
        (2, 3), (3, 6),
        (2, 4), (4, 9),
        (6, 9), (7, 8), (8, 7),
        (9, 0),
    ]
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


@pytest.fixture
def small_road() -> DiGraph:
    """A small road-network-like lattice."""
    return road_network(rows=12, cols=12, seed=3)


@pytest.fixture
def small_power_law() -> DiGraph:
    """A small skewed graph with hubs above the high-degree threshold."""
    return power_law_graph(num_nodes=300, edges_per_node=3, skew=0.85, seed=7)


@pytest.fixture
def small_community() -> DiGraph:
    """A small planted-partition graph."""
    return community_graph(num_communities=8, community_size=16, seed=11)


@pytest.fixture
def small_cost_model() -> CostModel:
    """A platform with few modules, for fast simulated runs."""
    return CostModel(num_modules=8)


@pytest.fixture
def small_config(small_cost_model: CostModel) -> MoctopusConfig:
    """Moctopus configuration matching the small platform."""
    return MoctopusConfig(cost_model=small_cost_model)
