"""Tests for the property graph model."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph


def build_routing_graph() -> PropertyGraph:
    """The routing-connection graph of the paper's Figure 2."""
    graph = PropertyGraph()
    for node_id in range(10):
        graph.add_node(node_id, label="Router", properties={"ip": f"127.0.0.{node_id}"})
    for src, dst in [(0, 1), (1, 2), (2, 3), (2, 6), (2, 8), (3, 9), (1, 4),
                     (4, 5), (6, 9), (8, 7)]:
        graph.add_edge(src, dst, label="CONNECTS")
    return graph


def test_node_records_hold_labels_and_properties():
    graph = build_routing_graph()
    record = graph.node(2)
    assert record.label == "Router"
    assert record.properties["ip"] == "127.0.0.2"


def test_add_node_merges_properties():
    graph = PropertyGraph()
    graph.add_node(1, properties={"a": 1})
    graph.add_node(1, label="X", properties={"b": 2})
    record = graph.node(1)
    assert record.label == "X"
    assert record.properties == {"a": 1, "b": 2}


def test_find_nodes_by_property():
    graph = build_routing_graph()
    matches = graph.find_nodes(ip="127.0.0.3")
    assert [record.node_id for record in matches] == [3]
    assert graph.find_nodes(ip="10.0.0.1") == []


def test_edges_project_into_adjacency():
    graph = build_routing_graph()
    adjacency = graph.adjacency()
    assert adjacency.has_edge(2, 6)
    assert adjacency.num_edges == graph.num_edges == 10
    assert graph.has_edge(2, 6)
    assert not graph.has_edge(6, 2)


def test_edge_labels_are_interned_consistently():
    graph = PropertyGraph()
    graph.add_edge(0, 1, label="KNOWS")
    graph.add_edge(1, 2, label="KNOWS")
    graph.add_edge(2, 3, label="LIKES")
    knows_id = graph.edge_label_id("KNOWS")
    likes_id = graph.edge_label_id("LIKES")
    assert knows_id != likes_id
    assert graph.edge_label_name(knows_id) == "KNOWS"
    assert graph.adjacency().edge_label(0, 1) == knows_id
    assert graph.adjacency().edge_label(2, 3) == likes_id


def test_remove_edge_updates_both_views():
    graph = build_routing_graph()
    assert graph.remove_edge(2, 6) is True
    assert graph.remove_edge(2, 6) is False
    assert not graph.has_edge(2, 6)
    assert not graph.adjacency().has_edge(2, 6)


def test_missing_node_lookup_raises():
    graph = PropertyGraph()
    with pytest.raises(KeyError):
        graph.node(99)


def test_iteration_counts():
    graph = build_routing_graph()
    assert len(list(graph.nodes())) == 10
    assert len(list(graph.edges())) == 10
    assert "CONNECTS" in graph.edge_labels
