"""Tests for the PIM platform simulator."""

from __future__ import annotations

import pytest

from repro.pim import (
    CostModel,
    ExecutionStats,
    LocalMemory,
    MemoryCapacityError,
    PIMSystem,
    UPMEM_FULL,
    UPMEM_RANK,
)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_presets_module_counts():
    assert UPMEM_RANK.num_modules == 64
    assert UPMEM_FULL.num_modules == 2048


def test_with_modules_returns_modified_copy():
    model = CostModel().with_modules(8)
    assert model.num_modules == 8
    assert CostModel().num_modules == 64
    with pytest.raises(ValueError):
        CostModel().with_modules(0)


def test_pim_times_scale_linearly():
    model = CostModel()
    assert model.pim_stream_time(0) == 0.0
    assert model.pim_stream_time(2000) == pytest.approx(2 * model.pim_stream_time(1000))
    assert model.pim_random_access_time(10) == pytest.approx(
        10 * model.pim_random_access_latency
    )
    assert model.pim_compute_time(4) == pytest.approx(4 * model.pim_item_cost)


def test_host_random_access_depends_on_working_set():
    model = CostModel()
    cached = model.host_random_access_time(100, working_set_bytes=1024)
    uncached = model.host_random_access_time(100, working_set_bytes=model.host_llc_bytes * 4)
    assert uncached > cached
    assert cached == pytest.approx(100 * model.host_cache_access_latency)
    assert uncached == pytest.approx(100 * model.host_random_access_latency)


def test_ipc_is_more_expensive_than_cpc():
    model = CostModel()
    assert model.ipc_time(10_000) > 2 * model.cpc_time(10_000)


def test_describe_contains_key_parameters():
    description = CostModel().describe()
    assert description["num_modules"] == 64
    assert "cpc_bandwidth" in description


# ----------------------------------------------------------------------
# Local memory
# ----------------------------------------------------------------------
def test_local_memory_allocation_and_free():
    memory = LocalMemory(1000)
    memory.allocate(600)
    assert memory.used_bytes == 600
    assert memory.available_bytes == 400
    assert memory.utilization == pytest.approx(0.6)
    memory.free(100)
    assert memory.used_bytes == 500
    memory.reset()
    assert memory.used_bytes == 0


def test_local_memory_overflow_raises():
    memory = LocalMemory(100)
    memory.allocate(90)
    with pytest.raises(MemoryCapacityError) as info:
        memory.allocate(20)
    assert info.value.requested == 20
    assert info.value.available == 10


def test_local_memory_invalid_arguments():
    with pytest.raises(ValueError):
        LocalMemory(0)
    memory = LocalMemory(10)
    with pytest.raises(ValueError):
        memory.allocate(-1)
    with pytest.raises(ValueError):
        memory.free(5)


# ----------------------------------------------------------------------
# System / operation accounting
# ----------------------------------------------------------------------
def test_phase_pim_time_is_max_over_modules():
    system = PIMSystem(CostModel(num_modules=4))
    op = system.begin_operation()
    with op.phase("work"):
        op.module(0).process_items(1000)
        op.module(1).process_items(4000)
    stats = op.finish()
    expected = system.cost_model.pim_compute_time(4000)
    assert stats.pim_time == pytest.approx(expected)
    assert stats.phase_pim_times == [pytest.approx(expected)]


def test_phases_accumulate_sequentially():
    system = PIMSystem(CostModel(num_modules=2))
    op = system.begin_operation()
    with op.phase("a"):
        op.module(0).process_items(100)
    with op.phase("b"):
        op.module(1).process_items(100)
    stats = op.finish()
    assert stats.pim_time == pytest.approx(2 * system.cost_model.pim_compute_time(100))


def test_channel_times_and_counters():
    system = PIMSystem(CostModel(num_modules=2))
    op = system.begin_operation()
    with op.phase("comm"):
        op.cpc_transfer(1_000_000, num_transfers=1)
        op.ipc_transfer(500_000, src_module=0, dst_module=1)
    stats = op.finish()
    assert stats.cpc.bytes_moved == 1_000_000
    assert stats.ipc.bytes_moved == 500_000
    assert stats.cpc_time > 0
    assert stats.ipc_time > system.cost_model.cpc_time(500_000)
    assert stats.total_time == pytest.approx(
        stats.host_time + stats.cpc_time + stats.ipc_time + stats.pim_time
    )


def test_host_charges_accumulate():
    system = PIMSystem(CostModel(num_modules=1))
    op = system.begin_operation()
    with op.phase("host"):
        op.host.stream_bytes(10_000)
        op.host.random_accesses(10, working_set_bytes=1 << 30)
        op.host.process_items(100)
    stats = op.finish()
    model = system.cost_model
    expected = (
        model.host_sequential_time(10_000)
        + model.host_random_access_time(10, 1 << 30)
        + model.host_compute_time(100)
    )
    assert stats.host_time == pytest.approx(expected)


def test_nested_phase_and_finish_guards():
    system = PIMSystem(CostModel(num_modules=1))
    op = system.begin_operation()
    with op.phase("outer"):
        with pytest.raises(RuntimeError):
            with op.phase("inner"):
                pass
    op.finish()
    with pytest.raises(RuntimeError):
        with op.phase("after finish"):
            pass


def test_stats_merge_adds_components():
    a = ExecutionStats(host_time=1.0, cpc_time=2.0)
    b = ExecutionStats(ipc_time=3.0, pim_time=4.0)
    b.add_counter("results", 7)
    a.merge(b)
    assert a.total_time == pytest.approx(10.0)
    assert a.counters["results"] == 7


def test_counters_and_reports():
    system = PIMSystem(CostModel(num_modules=3))
    op = system.begin_operation()
    with op.phase("w"):
        op.module(2).process_items(5)
        op.module(2).memory  # touch attribute, no allocation
    op.add_counter("queries", 2)
    stats = op.finish()
    assert stats.counters["queries"] == 2
    assert system.load_report()[2] == 5
    assert len(system.memory_utilization()) == 3
