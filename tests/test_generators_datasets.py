"""Tests for the synthetic generators and the Table 1 dataset registry."""

from __future__ import annotations

import pytest

from repro.graph import (
    DATASETS,
    HIGH_DEGREE_THRESHOLD,
    community_graph,
    dataset_spec,
    dataset_statistics,
    list_datasets,
    load_dataset,
    power_law_graph,
    random_graph,
    rmat_graph,
    road_network,
    road_network_specs,
)


def test_road_network_has_no_high_degree_nodes():
    graph = road_network(rows=20, cols=20, seed=1)
    assert graph.num_nodes == 400
    assert graph.high_degree_fraction(HIGH_DEGREE_THRESHOLD) == 0.0
    # Roads are bidirectional.
    assert graph.has_edge(0, 1) and graph.has_edge(1, 0)


def test_power_law_graph_is_skewed():
    graph = power_law_graph(num_nodes=800, edges_per_node=4, skew=0.9, seed=2)
    fraction = graph.high_degree_fraction(HIGH_DEGREE_THRESHOLD)
    assert 0.0 < fraction < 0.2
    histogram = graph.degree_histogram()
    assert max(histogram) > 3 * (graph.num_edges / graph.num_nodes)


def test_power_law_rejects_bad_arguments():
    with pytest.raises(ValueError):
        power_law_graph(num_nodes=1)
    with pytest.raises(ValueError):
        power_law_graph(num_nodes=10, reciprocity=1.5)


def test_community_graph_keeps_edges_mostly_internal():
    graph = community_graph(num_communities=6, community_size=20,
                            inter_edge_fraction=0.02, seed=3)
    internal = 0
    for src, dst in graph.edges():
        if src // 20 == dst // 20:
            internal += 1
    assert internal / graph.num_edges > 0.8


def test_rmat_graph_size_and_validation():
    graph = rmat_graph(scale=7, edge_factor=4, seed=4)
    assert graph.num_nodes <= 2 ** 7
    assert graph.num_edges > 0
    with pytest.raises(ValueError):
        rmat_graph(scale=4, probabilities=(0.5, 0.5, 0.5, 0.5))


def test_random_graph_is_deterministic_per_seed():
    a = random_graph(100, 300, seed=5)
    b = random_graph(100, 300, seed=5)
    c = random_graph(100, 300, seed=6)
    assert sorted(a.edges()) == sorted(b.edges())
    assert sorted(a.edges()) != sorted(c.edges())


def test_registry_matches_table1():
    specs = list_datasets()
    assert len(specs) == 15
    assert [spec.trace_id for spec in specs] == list(range(1, 16))
    assert dataset_spec("roadNet-CA").trace_id == 1
    assert dataset_spec(8).name == "wiki-Talk"
    # Road networks report 0% high-degree nodes in Table 1.
    for spec in road_network_specs():
        assert spec.paper_high_degree_pct == 0.0
        assert spec.is_road_network
    # The paper's highly skewed traces.
    assert {spec.trace_id for spec in specs if spec.is_skewed} == {5, 6, 8, 11, 12}


def test_registry_rejects_unknown_identifiers():
    with pytest.raises(KeyError):
        dataset_spec(42)
    with pytest.raises(KeyError):
        dataset_spec("not-a-dataset")


def test_load_dataset_is_deterministic_and_scalable():
    small = load_dataset(6, scale=0.25)
    again = load_dataset(6, scale=0.25)
    larger = load_dataset(6, scale=0.5)
    assert sorted(small.edges()) == sorted(again.edges())
    assert larger.num_nodes > small.num_nodes
    with pytest.raises(ValueError):
        load_dataset(6, scale=0)


def test_road_traces_have_zero_high_degree_nodes_when_generated():
    graph = load_dataset(1, scale=0.1)
    stats = dataset_statistics(graph)
    assert stats["high_degree_pct"] == 0.0


def test_skewed_traces_have_high_degree_nodes_when_generated():
    for trace_id in (6, 12):
        graph = load_dataset(trace_id, scale=0.5)
        stats = dataset_statistics(graph)
        assert stats["high_degree_pct"] > 0.5


def test_relative_sizes_follow_table1_ordering():
    sizes = {spec.trace_id: spec.base_nodes for spec in DATASETS}
    # cit-patents is the largest trace, com-DBLP class graphs the smallest.
    assert sizes[4] == max(sizes.values())
    assert sizes[4] > sizes[1] > sizes[6]
