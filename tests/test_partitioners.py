"""Tests for the partitioning algorithms and quality metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, community_graph, random_graph
from repro.partition.base import JOURNAL_CAPACITY
from repro.partition import (
    HOST_PARTITION,
    AdaptivePartitioner,
    HashPartitioner,
    LDGPartitioner,
    LaborDivisionPartitioner,
    OwnerIndex,
    PartitionMap,
    RadicalGreedyPartitioner,
    adaptive_partition_graph,
    evaluate_partition,
    ldg_partition_graph,
    load_imbalance,
    partition_static_graph,
    stable_node_hash,
)


# ----------------------------------------------------------------------
# PartitionMap
# ----------------------------------------------------------------------
def test_partition_map_assign_and_move():
    pmap = PartitionMap(4)
    pmap.assign(1, 2)
    pmap.assign(2, 2)
    assert pmap.size(2) == 2
    pmap.assign(1, 0)
    assert pmap.size(2) == 1 and pmap.size(0) == 1
    assert pmap.partition_of(1) == 0
    assert pmap.partition_of(99) is None
    assert len(pmap) == 2


def test_partition_map_host_partition_and_validation():
    pmap = PartitionMap(2)
    pmap.assign(5, HOST_PARTITION)
    assert pmap.host_size() == 1
    assert pmap.nodes_on(HOST_PARTITION) == [5]
    with pytest.raises(ValueError):
        pmap.assign(1, 7)
    with pytest.raises(ValueError):
        PartitionMap(0)


def test_partition_map_copy_is_independent():
    pmap = PartitionMap(2)
    pmap.assign(1, 0)
    clone = pmap.copy()
    clone.assign(1, 1)
    assert pmap.partition_of(1) == 0


# ----------------------------------------------------------------------
# Hash partitioner
# ----------------------------------------------------------------------
def test_stable_hash_spreads_consecutive_ids():
    partitions = {stable_node_hash(node) % 16 for node in range(64)}
    assert len(partitions) > 8


def test_hash_partitioner_is_deterministic_and_balanced():
    graph = random_graph(400, 1600, seed=1)
    pmap = partition_static_graph(HashPartitioner(8), graph)
    again = partition_static_graph(HashPartitioner(8), graph)
    assert dict(pmap.items()) == dict(again.items())
    quality = evaluate_partition(graph, pmap)
    assert quality.balance_factor < 1.4
    # Hash ignores locality: the cut should be close to (P-1)/P.
    assert quality.edge_cut_fraction > 0.7


# ----------------------------------------------------------------------
# LDG
# ----------------------------------------------------------------------
def test_ldg_beats_hash_on_community_graph():
    graph = community_graph(num_communities=8, community_size=24, seed=2)
    hash_quality = evaluate_partition(
        graph, partition_static_graph(HashPartitioner(4), graph)
    )
    ldg = LDGPartitioner(4, expected_nodes=graph.num_nodes)
    ldg_quality = evaluate_partition(graph, partition_static_graph(ldg, graph))
    assert ldg_quality.edge_cut_fraction < hash_quality.edge_cut_fraction
    assert ldg.partitions_scanned >= graph.num_nodes * 4  # scans every partition


def test_ldg_offline_balance():
    graph = community_graph(num_communities=6, community_size=20, seed=3)
    pmap = ldg_partition_graph(graph, 4)
    quality = evaluate_partition(graph, pmap)
    assert quality.balance_factor < 1.8
    with pytest.raises(ValueError):
        LDGPartitioner(4, expected_nodes=0)


# ----------------------------------------------------------------------
# Adaptive
# ----------------------------------------------------------------------
def test_adaptive_migration_improves_locality():
    graph = community_graph(num_communities=6, community_size=20, seed=4)
    partitioner = AdaptivePartitioner(4, imbalance_tolerance=1.3)
    for src, dst in graph.edges():
        partitioner.ingest_edge(src, dst)
    before = evaluate_partition(graph, partitioner.partition_map.copy())
    moved = partitioner.converge(max_rounds=5)
    after = evaluate_partition(graph, partitioner.partition_map)
    assert moved > 0
    assert after.edge_cut_fraction < before.edge_cut_fraction
    assert partitioner.migrations == moved


def test_adaptive_partition_graph_reports_migrations():
    graph = community_graph(num_communities=5, community_size=16, seed=5)
    pmap, migrations = adaptive_partition_graph(graph, 4, max_rounds=3)
    assert migrations > 0
    assert len(pmap) == graph.num_nodes
    with pytest.raises(ValueError):
        AdaptivePartitioner(4, imbalance_tolerance=0.5)


# ----------------------------------------------------------------------
# Radical greedy
# ----------------------------------------------------------------------
def test_radical_greedy_follows_first_neighbor():
    partitioner = RadicalGreedyPartitioner(4)
    partitioner.ingest_edge(0, 1)   # both new: 0 by hash, 1 joins 0
    assert partitioner.partition_of(1) == partitioner.partition_of(0)
    partitioner.ingest_edge(2, 1)   # 2 joins 1's partition
    assert partitioner.partition_of(2) == partitioner.partition_of(1)
    assert partitioner.greedy_placements >= 2


def test_radical_greedy_capacity_constraint_limits_partition_growth():
    partitioner = RadicalGreedyPartitioner(4, capacity_factor=1.05)
    # A star insertion order that tries to put everything on one partition.
    for node in range(1, 200):
        partitioner.ingest_edge(node, 0)
    sizes = partitioner.partition_map.pim_sizes()
    assert load_imbalance(sizes) <= 1.6
    assert partitioner.fallback_placements > 0
    with pytest.raises(ValueError):
        RadicalGreedyPartitioner(4, capacity_factor=0.9)


def test_radical_greedy_preserves_locality_better_than_hash():
    graph = community_graph(num_communities=4, community_size=64, seed=6)
    greedy = RadicalGreedyPartitioner(4, capacity_factor=1.05)
    greedy_quality = evaluate_partition(graph, partition_static_graph(greedy, graph))
    hash_quality = evaluate_partition(
        graph, partition_static_graph(HashPartitioner(4), graph)
    )
    assert greedy_quality.locality_fraction > hash_quality.locality_fraction


def test_radical_greedy_migrate_moves_node():
    partitioner = RadicalGreedyPartitioner(2)
    partitioner.assign_node(1)
    original = partitioner.partition_of(1)
    target = 1 - original
    partitioner.migrate(1, target)
    assert partitioner.partition_of(1) == target
    with pytest.raises(KeyError):
        partitioner.migrate(99, 0)


# ----------------------------------------------------------------------
# Labor division
# ----------------------------------------------------------------------
def test_labor_division_routes_hubs_to_host():
    inner = RadicalGreedyPartitioner(4)
    partitioner = LaborDivisionPartitioner(inner, high_degree_threshold=4)
    for dst in range(1, 10):
        partitioner.ingest_edge(0, dst)
    assert partitioner.partition_of(0) == HOST_PARTITION
    assert partitioner.promotions >= 1
    assert partitioner.is_high_degree(0)
    # Low-degree nodes stay on PIM modules.
    assert partitioner.partition_of(5) != HOST_PARTITION
    assert partitioner.pending_promotions() == 0


def test_labor_division_threshold_validation():
    with pytest.raises(ValueError):
        LaborDivisionPartitioner(RadicalGreedyPartitioner(2), high_degree_threshold=0)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_evaluate_partition_requires_full_assignment():
    graph = DiGraph.from_edges([(0, 1)])
    with pytest.raises(ValueError):
        evaluate_partition(graph, PartitionMap(2))


def test_evaluate_partition_simple_example():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    pmap = PartitionMap(2)
    pmap.assign(0, 0)
    pmap.assign(1, 0)
    pmap.assign(2, 1)
    pmap.assign(3, HOST_PARTITION)
    quality = evaluate_partition(graph, pmap)
    assert quality.edge_cut_fraction == pytest.approx(1 / 3)
    assert quality.host_edge_fraction == pytest.approx(1 / 3)
    assert quality.host_nodes == 1


def test_load_imbalance_edge_cases():
    assert load_imbalance([]) == 1.0
    assert load_imbalance([0, 0]) == 1.0
    assert load_imbalance([10, 10, 10]) == pytest.approx(1.0)
    assert load_imbalance([30, 0, 0]) == pytest.approx(3.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=200))
def test_every_streaming_partitioner_assigns_every_node(num_partitions, seed):
    graph = random_graph(80, 240, seed=seed)
    for partitioner in (
        HashPartitioner(num_partitions),
        RadicalGreedyPartitioner(num_partitions),
        LDGPartitioner(num_partitions, expected_nodes=graph.num_nodes or 1),
    ):
        pmap = partition_static_graph(partitioner, graph)
        assert len(pmap) == graph.num_nodes
        for node in graph.nodes():
            partition = pmap.partition_of(node)
            assert partition is not None
            assert partition == HOST_PARTITION or 0 <= partition < num_partitions


# ----------------------------------------------------------------------
# PartitionMap change journal + OwnerIndex
# ----------------------------------------------------------------------
def test_partition_map_changes_since():
    pmap = PartitionMap(4)
    base_version = pmap.version
    assert pmap.changes_since(base_version) == []
    pmap.assign(10, 1)
    pmap.assign(11, 2)
    pmap.assign(10, HOST_PARTITION)  # re-placement: latest wins, in order
    assert pmap.changes_since(base_version) == [
        (10, 1),
        (11, 2),
        (10, HOST_PARTITION),
    ]
    assert pmap.changes_since(pmap.version - 1) == [(10, HOST_PARTITION)]
    assert pmap.changes_since(pmap.version) == []
    # A gap beyond the journal (or a bogus future version) forces rebuild.
    assert pmap.changes_since(pmap.version + 1) is None
    assert pmap.changes_since(-JOURNAL_CAPACITY - 1) is None


def test_owner_index_incremental_matches_rebuild():
    import numpy as np

    pmap = PartitionMap(4)
    for node in range(50):
        pmap.assign(node, node % 4)
    incremental = OwnerIndex()
    incremental.refresh(pmap)
    # Churn placements (including new, larger ids) and re-refresh: the
    # delta-patched index must answer like a freshly-built one.
    pmap.assign(3, HOST_PARTITION)
    pmap.assign(7, 2)
    pmap.assign(60, 1)  # new id: dense vector must grow
    incremental.refresh(pmap)
    fresh = OwnerIndex()
    fresh.refresh(pmap)
    probes = np.array([0, 3, 7, 49, 60, 61, 1000], dtype=np.int64)
    assert incremental.owners_of(probes).tolist() == fresh.owners_of(probes).tolist()
    assert incremental.owners_of(probes)[-1] == OwnerIndex.UNKNOWN
