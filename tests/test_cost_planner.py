"""Cost-based planner, plan/result caches, and the bugfix sweep.

Covers the planner protocol end to end:

* the fixpoint-bound regression — ``lower_plan`` must scale its default
  bound by the attached DFA's state count (the product graph visits
  ``rows x states`` pairs, not ``rows``), shown both on the lowered op
  and as an actual truncated answer on a labeled cycle;
* reverse-direction planning: on graphs whose accepting side is rare
  the planner flips to reverse expansion, and all three engines still
  agree with the oracle bit for bit;
* zero-length expressions (``a{0}``, ``(a|b){0}``) across engines and
  oracle;
* the epoch-keyed plan cache and LRU result cache: warm answers are
  bit-identical to cold ones (results *and* per-query counters), hit
  counters land on the separate ``cache_stats`` accumulator, entries
  never survive their epoch, and patched session views bypass caching;
* ``RPQuery`` AST/DFA memoization.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Moctopus, MoctopusConfig
from repro.engine.physical import FixpointOp, lower_plan
from repro.graph import DiGraph, random_graph
from repro.pim import CostModel
from repro.rpq import RPQuery, plan_query
from repro.rpq.evaluator import evaluate_rpq

ENGINES = ("python", "vectorized", "matrix")
LABEL_NAMES = {1: "a", 2: "b", 3: "c"}


def build_system(graph: DiGraph, engine: str = "python", **config_kwargs) -> Moctopus:
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        engine=engine,
        high_degree_threshold=12,
        **config_kwargs,
    )
    return Moctopus.from_graph(graph, config, label_names=LABEL_NAMES)


def labeled_cycle(length: int, label: int = 1) -> DiGraph:
    graph = DiGraph(num_nodes=length)
    for node in range(length):
        graph.add_edge(node, (node + 1) % length, label=label)
    return graph


def skewed_graph(seed: int = 3) -> DiGraph:
    """Dense ``a``/``b`` noise plus three rare ``c`` edges."""
    rng = random.Random(seed)
    graph = DiGraph(num_nodes=80)
    for _ in range(600):
        src, dst = rng.randrange(80), rng.randrange(80)
        if src != dst:
            graph.add_edge(src, dst, label=rng.choice([1, 1, 1, 1, 2]))
    for src, dst in [(5, 6), (10, 11), (20, 21)]:
        graph.add_edge(src, dst, label=3)
    return graph


def fingerprint(result, stats):
    return (
        [set(dsts) for dsts in result.destinations],
        stats.host_time,
        stats.cpc_time,
        stats.ipc_time,
        stats.pim_time,
        tuple(stats.phase_pim_times),
        dict(stats.counters),
    )


# ----------------------------------------------------------------------
# Fixpoint bound regression (the product-graph bound lives in lower_plan)
# ----------------------------------------------------------------------
def test_lower_plan_scales_default_bound_by_dfa_states():
    plan = plan_query(RPQuery("(a/a)*", sources=[0]))
    assert plan.dfa is not None and plan.dfa.num_states == 2
    physical = lower_plan(plan, default_fixpoint_iterations=7)
    fixpoints = [op for op in physical.ops if isinstance(op, FixpointOp)]
    assert len(fixpoints) == 1
    # Regression: the default bound used to be taken verbatim (7), which
    # truncates product-graph walks longer than the row count.
    assert fixpoints[0].max_iterations == 7 * plan.dfa.num_states


def test_lower_plan_keeps_explicit_step_bounds_verbatim():
    from repro.rpq.planner import FixpointStep, LogicalPlan, ReduceStep

    plan = plan_query(RPQuery("(a/a)*", sources=[0]))
    bounded = LogicalPlan(
        steps=[FixpointStep(max_iterations=3), ReduceStep()],
        accumulate_results=True,
        dfa=plan.dfa,
    )
    physical = lower_plan(bounded, default_fixpoint_iterations=7)
    fixpoints = [op for op in physical.ops if isinstance(op, FixpointOp)]
    assert fixpoints[0].max_iterations == 3


@pytest.mark.parametrize("engine", ENGINES)
def test_unscaled_bound_would_truncate_cycle_closure(engine):
    # On a 5-cycle of ``a`` edges, ``(a/a)*`` reaches every node (the
    # even path lengths 0,2,4,6,8 cover all residues mod 5), but the
    # longest shortest path in the node x state product graph is 8 — more
    # than the 5 stored rows.  With the old row-only default bound the
    # fixpoint drained early and silently returned {0, 2, 4}.
    system = build_system(labeled_cycle(5), engine=engine)
    query = RPQuery("(a/a)*", sources=[0])
    plan = plan_query(query)
    physical = lower_plan(plan, default_fixpoint_iterations=5)
    result, _ = system._query_processor.engine.execute(physical, query.sources)
    oracle = evaluate_rpq(system.graph, query, label_names=LABEL_NAMES)
    assert [set(d) for d in result.destinations] == [
        set(d) for d in oracle.destinations
    ]
    assert result.destinations[0] == {0, 1, 2, 3, 4}


# ----------------------------------------------------------------------
# Reverse-direction planning
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_reverse_plans_match_forward_oracle(engine):
    system = build_system(skewed_graph(), engine=engine)
    processor = system._query_processor
    with system.begin() as session:
        view = session._view()
        reverse_plans = 0
        for expression in ("a/c", "_/c", "(a|b)/c", "a/a/c", "b/c/a"):
            query = RPQuery(expression, sources=list(range(40)))
            plan = processor.plan(query, view=view)
            if plan.direction == "reverse":
                reverse_plans += 1
                assert plan.reverse_seeds is not None
            result, _ = session.execute(query)
            oracle = evaluate_rpq(system.graph, query, label_names=LABEL_NAMES)
            assert [set(d) for d in result.destinations] == [
                set(d) for d in oracle.destinations
            ], expression
        # The rare-``c`` suffix queries must actually exercise the
        # reverse path, or this test degenerates to forward parity.
        assert reverse_plans >= 2


def test_reverse_decision_is_explained():
    system = build_system(skewed_graph())
    processor = system._query_processor
    with system.begin() as session:
        plan = processor.plan(
            RPQuery("a/c", sources=list(range(40))), view=session._view()
        )
        assert plan.direction == "reverse"
        text = plan.explain()
        assert "direction: reverse" in text
        assert "seeds=" in text
        assert "cost: forward=" in text
        decision = plan.decision
        assert decision is not None
        assert decision.reverse_cost is not None
        assert decision.reverse_cost < decision.forward_cost
        assert len(decision.hop_estimates) == 2


def test_planner_direction_forward_pins_classic_expansion():
    system = build_system(skewed_graph(), planner_direction="forward")
    processor = system._query_processor
    with system.begin() as session:
        view = session._view()
        for expression in ("a/c", "_/c", "(a|b)/c"):
            plan = processor.plan(RPQuery(expression, sources=[0]), view=view)
            assert plan.direction == "forward"


def test_patched_views_and_live_queries_plan_forward():
    system = build_system(skewed_graph())
    processor = system._query_processor
    live = processor.plan(RPQuery("a/c", sources=list(range(40))))
    assert live.direction == "forward"
    assert "no frozen epoch statistics" in live.decision.reason
    with system.begin() as session:
        session.insert_edges([(70, 71)], labels=[3])
        plan = processor.plan(
            RPQuery("a/c", sources=list(range(40))), view=session._view()
        )
        assert plan.direction == "forward"


# ----------------------------------------------------------------------
# Zero-length expressions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("expression", ["a{0}", "(a|b){0}", "a{0,2}"])
def test_zero_length_expressions_match_oracle(engine, expression):
    graph = random_graph(28, 90, seed=11)
    system = build_system(graph, engine=engine)
    query = RPQuery(expression, sources=list(range(12)))
    with system.begin() as session:
        result, _ = session.execute(query)
    oracle = evaluate_rpq(system.graph, query, label_names=LABEL_NAMES)
    assert [set(d) for d in result.destinations] == [
        set(d) for d in oracle.destinations
    ]
    if expression != "a{0,2}":
        # A zero-length match relates every existing source to itself.
        for source, destinations in zip(result.sources, result.destinations):
            assert destinations == {source}


# ----------------------------------------------------------------------
# Plan / result caches
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
def test_warm_results_are_bit_identical(engine):
    system = build_system(skewed_graph(), engine=engine)
    processor = system._query_processor
    with system.begin() as session:
        for expression in ("a/c", "a/b", "(a/a)*", "c"):
            query = RPQuery(expression, sources=list(range(30)))
            cold = fingerprint(*session.execute(query))
            warm = fingerprint(*session.execute(query))
            again = fingerprint(*session.execute(query))
            assert cold == warm == again, expression
    counters = processor.cache_stats.counters
    assert counters["result_cache_hits"] >= 8
    assert counters["plan_cache_hits"] >= 0


def test_cache_counters_stay_off_per_query_stats():
    system = build_system(skewed_graph())
    query = RPQuery("a/c", sources=list(range(30)))
    with system.begin() as session:
        _, cold_stats = session.execute(query)
        _, warm_stats = session.execute(query)
    for stats in (cold_stats, warm_stats):
        assert not any("cache" in name for name in stats.counters)
    assert dict(cold_stats.counters) == dict(warm_stats.counters)


def test_cached_stats_are_private_copies():
    system = build_system(skewed_graph())
    query = RPQuery("a/b", sources=[0, 1, 2])
    with system.begin() as session:
        _, first = session.execute(query)
        first.add_counter("caller_scribble", 99)
        _, second = session.execute(query)
    assert "caller_scribble" not in second.counters


def test_caches_can_be_disabled():
    system = build_system(
        skewed_graph(), plan_cache_size=0, result_cache_size=0
    )
    processor = system._query_processor
    query = RPQuery("a/c", sources=list(range(30)))
    with system.begin() as session:
        cold = fingerprint(*session.execute(query))
        warm = fingerprint(*session.execute(query))
    assert cold == warm
    assert not processor.cache_stats.counters


def test_result_cache_evicts_least_recently_used():
    system = build_system(skewed_graph(), result_cache_size=2)
    processor = system._query_processor
    with system.begin() as session:
        a = RPQuery("a", sources=[0])
        b = RPQuery("b", sources=[0])
        c = RPQuery("c", sources=[0])
        session.execute(a)
        session.execute(b)
        session.execute(c)  # evicts the "a" entry
        session.execute(a)  # miss again
    counters = processor.cache_stats.counters
    assert counters["result_cache_misses"] == 4
    assert counters.get("result_cache_hits", 0) == 0


def test_new_epoch_never_sees_cached_answers():
    system = build_system(skewed_graph())
    query = RPQuery("a/c", sources=[19, 20, 21])
    with system.begin() as session:
        before, _ = session.execute(query)
    # Publishing a new epoch (new edges 19 -a-> 20 already exists or
    # not; add a fresh a-edge into the rare-c path) must re-execute: the
    # cache key embeds the epoch id.
    system.insert_edges([(19, 20)], labels=[1])
    with system.begin() as session:
        after, _ = session.execute(query)
    oracle = evaluate_rpq(system.graph, query, label_names=LABEL_NAMES)
    assert [set(d) for d in after.destinations] == [
        set(d) for d in oracle.destinations
    ]
    assert 21 in after.destinations[0]


def test_patched_session_views_bypass_the_result_cache():
    system = build_system(skewed_graph())
    processor = system._query_processor
    query = RPQuery("c", sources=[5, 70])
    with system.begin() as session:
        base, _ = session.execute(query)
        assert base.destinations[1] == set()
        session.insert_edges([(70, 71)], labels=[3])
        patched, _ = session.execute(query)
        assert patched.destinations[1] == {71}
        hits = processor.cache_stats.counters.get("result_cache_hits", 0)
        again, _ = session.execute(query)
        assert again.destinations[1] == {71}
        # The staged-write view must not have produced (or consumed) a
        # cache entry for its divergent answer.
        assert processor.cache_stats.counters.get("result_cache_hits", 0) == hits


# ----------------------------------------------------------------------
# RPQuery memoization
# ----------------------------------------------------------------------
def test_rpquery_ast_and_dfa_are_memoized():
    query = RPQuery("a/b|c", sources=[0])
    assert query.ast() is query.ast()
    assert query.dfa() is query.dfa()


def test_rpquery_memoization_invalidates_on_expression_change():
    query = RPQuery("a/b", sources=[0])
    first_ast, first_dfa = query.ast(), query.dfa()
    query.expression = "a/c"
    assert query.ast() is not first_ast
    assert query.dfa() is not first_dfa
    assert query.fixed_length() == 2


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
def test_system_explain_and_cache_stats_facade():
    system = build_system(skewed_graph())
    text = system.explain(RPQuery("a/c", sources=list(range(40))))
    assert "direction: reverse" in text
    assert "decision:" in text
    live = system.explain(RPQuery("a/c", sources=[0]), pinned=False)
    assert "no frozen epoch statistics" in live
    query = RPQuery("a/b", sources=[0, 1])
    with system.begin() as session:
        session.execute(query)
        session.execute(query)
    assert system.cache_stats.counters["result_cache_hits"] == 1
