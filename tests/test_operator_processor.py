"""Tests for the per-module operator processor and operator payloads."""

from __future__ import annotations

from repro.core import AddOperator, MwaitOperator, SmxmOperator, SubOperator
from repro.core.local_storage import BYTES_PER_ENTRY, LocalGraphStorage
from repro.core.operator_processor import OperatorProcessor
from repro.rpq import build_dfa


def make_storage() -> LocalGraphStorage:
    storage = LocalGraphStorage()
    storage.add_edge(1, 2)
    storage.add_edge(1, 3)
    storage.add_edge(2, 3)
    storage.add_edge(3, 4)
    return storage


def test_smxm_expands_local_rows_and_counts_work():
    processor = OperatorProcessor(0, make_storage())
    produced, work = processor.process_smxm({1: {0, 7}, 2: {0}})
    assert produced[2] == {0, 7}
    assert produced[3] == {0, 7}
    assert work.rows_touched == 2
    assert work.bytes_streamed == 3 * BYTES_PER_ENTRY
    # row 1 has 2 next hops x 2 contexts, row 2 has 1 next hop x 1 context.
    assert work.items_processed == 5


def test_smxm_missing_row_produces_nothing():
    processor = OperatorProcessor(0, make_storage())
    produced, work = processor.process_smxm({99: {0}})
    assert produced == {}
    assert work.rows_touched == 1
    assert work.items_processed == 0


def test_smxm_detects_misplaced_nodes():
    storage = LocalGraphStorage()
    # Node 1 lives here but none of its next hops do.
    storage.add_edge(1, 50)
    storage.add_edge(1, 51)
    processor = OperatorProcessor(0, storage, misplacement_threshold=0.5)
    _, work = processor.process_smxm({1: {0}})
    assert 1 in work.misplacement_reports
    local, remote = work.misplacement_reports[1]
    assert local == 0 and remote == 2
    _, quiet = processor.process_smxm({1: {0}}, detect_misplacement=False)
    assert quiet.misplacement_reports == {}


def test_smxm_with_dfa_filters_by_label():
    storage = LocalGraphStorage()
    storage.add_edge(1, 2, label=1)
    storage.add_edge(1, 3, label=2)
    processor = OperatorProcessor(0, storage)
    dfa = build_dfa("a")
    produced, _ = processor.process_smxm(
        {1: {(0, dfa.start)}}, dfa=dfa, label_names={1: "a", 2: "b"}
    )
    assert set(produced) == {2}
    ((row, state),) = produced[2]
    assert row == 0 and dfa.is_accepting(state)


def test_process_add_and_sub():
    storage = LocalGraphStorage()
    processor = OperatorProcessor(0, storage)
    work = processor.process_add([(1, 2, 0), (1, 3, 0), (1, 2, 0)])
    assert work.applied == 2
    assert work.map_lookups == 3
    assert storage.num_edges == 2
    work = processor.process_sub([(1, 2), (1, 9)])
    assert work.applied == 1
    assert storage.num_edges == 1


def test_operator_payload_sizes():
    smxm = SmxmOperator(module_id=3, frontier={1: {0, 1}, 2: {0}})
    assert smxm.num_items == 3
    assert smxm.payload_bytes() > 3 * 16
    mwait = MwaitOperator(module_id=3, num_result_items=10)
    assert mwait.payload_bytes() > 10 * 16
    add = AddOperator(module_id=1, edges=[(1, 2, 0)])
    sub = SubOperator(module_id=1, edges=[(1, 2)])
    assert add.num_items == 1 and sub.num_items == 1
    assert add.payload_bytes() > 0 and sub.payload_bytes() > 0
