"""Tests for the benchmark support package (workloads, runner, reports)."""

from __future__ import annotations

import pytest

from repro.bench import (
    DEFAULT_NUM_MODULES,
    SystemProvider,
    build_systems,
    format_table,
    geometric_mean,
    khop_workload,
    rows_to_dicts,
    run_ipc_experiment,
    run_khop_experiment,
    run_update_experiment,
    scaled_cost_model,
    speedup_summary,
    update_workload,
)
from repro.graph import load_dataset


SMALL_SCALE = 0.15


def test_scaled_cost_model_defaults():
    model = scaled_cost_model()
    assert model.num_modules == DEFAULT_NUM_MODULES
    assert model.host_llc_bytes == 32 * 1024
    assert model.cpc_transfer_latency < 1e-6


def test_khop_workload_sources_come_from_graph():
    graph = load_dataset(6, scale=SMALL_SCALE)
    query = khop_workload(graph, hops=2, batch_size=32, seed=1)
    assert query.batch_size == 32
    assert all(graph.has_node(source) for source in query.sources)


def test_update_workload_batches():
    graph = load_dataset(7, scale=SMALL_SCALE)
    workload = update_workload(graph, batch_size=16, seed=2)
    assert workload.batch_size == 16
    assert len(workload.delete_edges) == 16
    for src, dst in workload.insert_edges:
        assert not graph.has_edge(src, dst)
    for src, dst in workload.delete_edges:
        assert graph.has_edge(src, dst)


def test_build_systems_loads_all_three_engines():
    graph = load_dataset(6, scale=SMALL_SCALE)
    cost_model = scaled_cost_model(num_modules=8)
    systems = build_systems(graph, cost_model=cost_model, warmup_rounds=1)
    assert systems.moctopus.num_edges == graph.num_edges
    assert systems.redisgraph.num_edges == graph.num_edges
    assert set(systems.by_name()) == {"moctopus", "pim-hash", "redisgraph"}


def test_system_provider_caches():
    provider = SystemProvider(scale=SMALL_SCALE, cost_model=scaled_cost_model(num_modules=8),
                              warmup_rounds=0)
    first = provider.get(6)
    second = provider.get(6)
    assert first is second
    provider.clear()
    assert provider.get(6) is not first


def test_run_khop_experiment_rows_have_expected_fields():
    provider = SystemProvider(scale=SMALL_SCALE, cost_model=scaled_cost_model(num_modules=8),
                              warmup_rounds=1)
    rows = run_khop_experiment([1, 6], hops=2, batch_size=32, provider=provider)
    assert len(rows) == 2
    for row in rows:
        assert row["moctopus_ms"] > 0
        assert row["redisgraph_ms"] > 0
        assert row["speedup_vs_redisgraph"] == pytest.approx(
            row["redisgraph_ms"] / row["moctopus_ms"]
        )


def test_run_ipc_experiment_reports_reduction():
    provider = SystemProvider(scale=SMALL_SCALE, cost_model=scaled_cost_model(num_modules=8),
                              warmup_rounds=1)
    rows = run_ipc_experiment([7], hops=2, batch_size=32, provider=provider)
    assert len(rows) == 1
    row = rows[0]
    assert row["pim_hash_ipc_ms"] >= 0
    assert row["ipc_reduction"] <= 1.0


def test_run_update_experiment_reports_speedups():
    rows = run_update_experiment([6], batch_size=32, scale=SMALL_SCALE,
                                 cost_model=scaled_cost_model(num_modules=8))
    row = rows[0]
    assert row["insert_speedup"] > 1.0
    assert row["delete_speedup"] > 1.0


def test_format_table_alignment_and_dicts():
    headers = ["trace", "latency_ms"]
    rows = [["#1", 12.5], ["#2", 0.0001]]
    text = format_table(headers, rows)
    assert "trace" in text and "#2" in text
    dicts = rows_to_dicts(headers, rows)
    assert dicts[0]["trace"] == "#1"


def test_geometric_mean_and_summary():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    assert geometric_mean([]) == 0.0
    summary = speedup_summary({"a": 2.0, "b": 8.0})
    assert "geomean 4.00x" in summary
    assert speedup_summary({}) == "no data"
