"""Setuptools shim.

All package metadata lives in ``pyproject.toml`` (PEP 621); this file
only exists so ``pip install -e .`` keeps working on environments whose
setuptools predates bundled-wheel editable builds (the legacy
``setup.py develop`` fallback needs it).
"""

from setuptools import setup

setup()
