"""Experiment E7 — headline claims of the paper, aggregated.

The abstract and Section 4 summarise the evaluation as:

* up to 10.67x speedup over RedisGraph for k-hop RPQs;
* up to 2.98x speedup over PIM-hash on highly skewed graphs;
* 89.56 % average IPC reduction vs PIM-hash at k = 3;
* 30.01x / 52.59x average update speedups (up to 81.45x / 209.31x).

This benchmark computes the same aggregates from the scaled reproduction
and prints them side by side with the paper's numbers.  Only directional
shape is asserted; the measured values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import bench_batch_size, bench_scale, bench_traces

from repro.bench import (
    format_table,
    geometric_mean,
    run_ipc_experiment,
    run_khop_experiment,
    run_update_experiment,
    scaled_cost_model,
)

HIGHLY_SKEWED_TRACES = (5, 6, 8, 11, 12)


def _aggregate(provider):
    khop_rows = []
    for hops in (1, 2, 3):
        khop_rows.extend(
            run_khop_experiment(
                bench_traces(), hops=hops, batch_size=bench_batch_size(),
                provider=provider,
            )
        )
    ipc_rows = run_ipc_experiment(
        bench_traces(), hops=3, batch_size=bench_batch_size(), provider=provider
    )
    update_rows = run_update_experiment(
        bench_traces(), batch_size=bench_batch_size(), scale=bench_scale(),
        cost_model=scaled_cost_model(),
    )
    skewed = {f"#{trace}" for trace in HIGHLY_SKEWED_TRACES}
    reductions = [row["ipc_reduction"] for row in ipc_rows if row["pim_hash_ipc_ms"] > 0]
    return {
        "max_speedup_vs_redisgraph": max(
            row["speedup_vs_redisgraph"] for row in khop_rows
        ),
        "max_speedup_vs_pim_hash_skewed": max(
            row["speedup_vs_pim_hash"] for row in khop_rows if row["trace"] in skewed
        ),
        "avg_ipc_reduction_pct": 100 * sum(reductions) / len(reductions),
        "avg_insert_speedup": geometric_mean(
            [row["insert_speedup"] for row in update_rows]
        ),
        "avg_delete_speedup": geometric_mean(
            [row["delete_speedup"] for row in update_rows]
        ),
        "max_insert_speedup": max(row["insert_speedup"] for row in update_rows),
        "max_delete_speedup": max(row["delete_speedup"] for row in update_rows),
    }


def test_headline_claims(benchmark, provider):
    measured = benchmark.pedantic(_aggregate, args=(provider,), rounds=1, iterations=1)
    paper = {
        "max_speedup_vs_redisgraph": 10.67,
        "max_speedup_vs_pim_hash_skewed": 2.98,
        "avg_ipc_reduction_pct": 89.56,
        "avg_insert_speedup": 30.01,
        "avg_delete_speedup": 52.59,
        "max_insert_speedup": 81.45,
        "max_delete_speedup": 209.31,
    }
    print()
    print("Headline claims: paper vs this reproduction (scaled)")
    print(
        format_table(
            ["claim", "paper", "measured"],
            [[key, paper[key], round(value, 2)] for key, value in measured.items()],
        )
    )
    assert measured["max_speedup_vs_redisgraph"] > 2.0
    assert measured["max_speedup_vs_pim_hash_skewed"] > 1.5
    assert measured["avg_ipc_reduction_pct"] > 40.0
    assert measured["avg_insert_speedup"] > 5.0
    assert measured["avg_delete_speedup"] > 5.0
