"""Matrix-engine benchmark: masked SpGEMM vs vectorized push wall-clock.

Like ``bench_engine_backends.py`` this measures the **wall-clock** cost
of computing the simulated results, not the simulated latencies: the
matrix backend is required to produce bit-identical answers and
bit-identical statistics to the vectorized backend (asserted per entry),
so the only thing allowed to differ is how fast the reproduction runs.

Two sweeps:

* the fig-4 k-hop sweep — dense multi-hop batches over an unlabeled
  graph, the regime the pull kernel is built for: the vectorized push
  path re-sorts its produced edges by destination every phase
  (``O(E' log E')``), while the matrix engine amortises that grouping
  into one per-snapshot transposed block and runs each phase as a
  gather + ``bitwise_or.reduceat``;
* a DFA sweep — labeled RPQ expressions over per-label transposed
  blocks, where only edges whose label some live automaton state
  accepts are touched.

The acceptance gate applies to the fig-4 k-hop sweep: the matrix
backend must be at least ``MIN_SPEEDUP`` (default 1.5x) faster by
geometric mean.  The DFA sweep is reported (and parity-checked) but not
gated — sparse automaton frontiers legitimately fall back to push.

Run styles::

    python -m pytest benchmarks/bench_matrix_engine.py -q -s   # smoke
    python benchmarks/bench_matrix_engine.py                   # table
    python benchmarks/bench_matrix_engine.py --json BENCH_matrix.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench import format_table, geometric_mean  # noqa: E402
from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import DiGraph, random_graph  # noqa: E402
from repro.pim import CostModel  # noqa: E402
from repro.rpq import RPQuery, random_source_batch  # noqa: E402

#: Wall-clock geomean speedup the matrix backend must show over the
#: vectorized backend on the fig-4 k-hop sweep.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP_MATRIX", "1.5"))

#: Timed rounds per (entry, engine); the minimum is reported (noise floor).
TIMING_ROUNDS = 3

#: The fig-4 k-hop sweep: (hops, batch size) per entry.
KHOP_SWEEP: List[Tuple[int, int]] = [(2, 64), (3, 64), (4, 64), (6, 64), (4, 128)]

#: The DFA sweep: labeled RPQ expressions (reported, not gated).
RPQ_SWEEP: List[str] = [".{2}", ".{3}", "a/b", "(a|b)/c", "a/b*"]


def _sizes() -> Tuple[int, int]:
    """(nodes, edges) honoring the shared ``REPRO_BENCH_SCALE`` knob.

    Average degree ~100: the paper's fig-4 evaluation graphs are dense
    (frontiers saturate within a hop or two), which is the regime where
    expansion dominates the shared result materialization and the
    pre-transposed pull kernel pays off.
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return int(6000 * scale), int(600000 * scale)


def build_graph(seed: int = 5) -> Tuple[DiGraph, Dict[int, str]]:
    """A labeled random graph shared by both sweeps."""
    num_nodes, num_edges = _sizes()
    base = random_graph(num_nodes, num_edges, seed=seed)
    rng = random.Random(seed)
    graph = DiGraph()
    for src, dst in base.edges():
        graph.add_edge(src, dst, label=rng.randrange(1, 4))
    return graph, {1: "a", 2: "b", 3: "c"}


def build_system(graph: DiGraph, labels: Dict[int, str]) -> Moctopus:
    config = MoctopusConfig(cost_model=CostModel(num_modules=4))
    return Moctopus.from_graph(graph, config, label_names=labels)


def _time_query(system: Moctopus, engine: str, run):
    """Best-of-N wall-clock of ``run()`` on ``engine`` (one warm round)."""
    system.use_engine(engine)
    result, stats = run()
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        result, stats = run()
        best = min(best, time.perf_counter() - start)
    return best, result, stats


def _compare(system: Moctopus, name: str, run) -> Dict[str, object]:
    vector_s, vector_result, vector_stats = _time_query(
        system, "vectorized", run
    )
    matrix_s, matrix_result, matrix_stats = _time_query(system, "matrix", run)
    if matrix_result != vector_result:
        raise AssertionError(f"{name}: engines disagree on results")
    if matrix_stats.breakdown() != vector_stats.breakdown():
        raise AssertionError(f"{name}: engines disagree on simulated stats")
    return {
        "name": name,
        "vectorized_wall_ms": vector_s * 1e3,
        "matrix_wall_ms": matrix_s * 1e3,
        "speedup": vector_s / matrix_s,
        "matches": vector_result.total_matches,
    }


def run_sweep(verbose: bool = True) -> Dict[str, object]:
    graph, labels = build_graph()
    system = build_system(graph, labels)
    nodes = list(graph.nodes())

    khop_rows = []
    for hops, batch in KHOP_SWEEP:
        sources = random_source_batch(nodes, batch, seed=hops * 101 + batch)
        khop_rows.append(
            _compare(
                system,
                f"khop h={hops} b={batch}",
                lambda s=sources, h=hops: system.batch_khop(
                    list(s), h, auto_migrate=False
                ),
            )
        )

    rpq_rows = []
    for expression in RPQ_SWEEP:
        sources = random_source_batch(nodes, 32, seed=len(expression) * 7)
        query = RPQuery(expression, sources)
        rpq_rows.append(
            _compare(
                system,
                f"rpq {expression}",
                lambda q=query: system.execute(q, auto_migrate=False),
            )
        )
    system.use_engine(system.config.engine)

    khop_geomean = geometric_mean([row["speedup"] for row in khop_rows])
    rpq_geomean = geometric_mean([row["speedup"] for row in rpq_rows])
    if verbose:
        num_nodes, num_edges = _sizes()
        print()
        print(
            f"matrix engine vs vectorized: {num_nodes} nodes / "
            f"{num_edges} edges (wall-clock ms, best of {TIMING_ROUNDS})"
        )
        header = [
            "entry", "vectorized_ms", "matrix_ms", "speedup", "matches",
        ]
        print(
            format_table(
                header,
                [
                    [
                        row["name"],
                        f"{row['vectorized_wall_ms']:.2f}",
                        f"{row['matrix_wall_ms']:.2f}",
                        f"{row['speedup']:.2f}x",
                        row["matches"],
                    ]
                    for row in khop_rows + rpq_rows
                ],
            )
        )
        print(
            f"  fig-4 k-hop geomean: {khop_geomean:.2f}x "
            f"(required >= {MIN_SPEEDUP:.1f}x); DFA geomean: "
            f"{rpq_geomean:.2f}x (reported only)"
        )
    return {
        "workload": dict(zip(("nodes", "edges"), _sizes())),
        "khop_sweep": khop_rows,
        "rpq_sweep": rpq_rows,
        "khop_geomean_speedup": khop_geomean,
        "rpq_geomean_speedup": rpq_geomean,
        "min_speedup_required": MIN_SPEEDUP,
    }


def test_matrix_engine_speedup():
    """Headline: masked SpGEMM >= 1.5x on the fig-4 k-hop sweep."""
    report = run_sweep(verbose=True)
    if os.environ.get("REPRO_BENCH_LAX"):
        return  # report-only on slow/loaded machines
    assert report["khop_geomean_speedup"] >= MIN_SPEEDUP, (
        "matrix backend is only "
        f"{report['khop_geomean_speedup']:.2f}x faster than vectorized on "
        f"the fig-4 k-hop sweep (required {MIN_SPEEDUP:.1f}x; set "
        "REPRO_BENCH_LAX=1 to report without asserting)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the timing report as JSON (CI perf-trajectory artifact)",
    )
    args = parser.parse_args()
    report = run_sweep(verbose=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if not os.environ.get("REPRO_BENCH_LAX"):
        if report["khop_geomean_speedup"] < MIN_SPEEDUP:
            print("FAIL: speedup below required minimum", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
