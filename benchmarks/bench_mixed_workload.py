"""Mixed-workload benchmark: interleaved update/query sweep wall-clock.

The paper's update workload is where its largest speedups live, and an
interleaved update/query trace is exactly where the snapshot lifecycle
matters: every update batch dirties storage segments that the next
query's vectorized expansion needs as CSR arrays.  This benchmark
replays one deterministic trace of alternating insert/delete batches
and k-hop query batches against four configurations:

========================  ============================================
configuration             meaning
==========================  ==========================================
``python+rebuild``        scalar engine, invalidate-and-rebuild
                          snapshots (the full pre-PR behaviour)
``vectorized+rebuild``    vectorized engine, but every dirty snapshot
                          is rebuilt from scratch with the per-edge
                          scalar builder (pre-PR vectorized behaviour —
                          the headline baseline)
``python+incremental``    scalar engine over overlay-maintained bases
``vectorized+incremental``  vectorized update partitioning + engine
                          over overlay-maintained bases (this PR)
==========================  ==========================================

All four must produce identical query results and identical simulated
statistics; only the wall-clock cost of computing them may differ.  The
headline assertion: ``vectorized+incremental`` is at least 3x faster
than ``vectorized+rebuild`` over the whole trace.

Queries run with ``auto_migrate=False`` (same as the engine-backend
benchmark): the post-query migration pass is byte-identical across all
four configurations and would only add constant noise to the
snapshot-maintenance comparison this trace isolates.

Note the reported table deliberately includes both scalar configurations:
at this trace's small query batches the scalar engine's per-node dict
walk can beat the vectorized engine outright (numpy per-call overhead
dominates sparse frontiers — the vectorized engine earns its keep on the
dense fig-4 batches measured by ``bench_engine_backends.py``).  What
this benchmark isolates is the *snapshot maintenance* cost, which is why
the headline ratio compares the vectorized backend against its own
pre-PR rebuild behaviour rather than against the scalar engine.

Run styles::

    python -m pytest benchmarks/bench_mixed_workload.py -q -s   # smoke
    python benchmarks/bench_mixed_workload.py                   # table
    python benchmarks/bench_mixed_workload.py --profile         # +cProfile
    python benchmarks/bench_mixed_workload.py --json BENCH_mixed.json
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time
from typing import Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench import format_table  # noqa: E402
from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import DiGraph, UpdateStream, random_graph  # noqa: E402
from repro.graph.stream import UpdateKind, UpdateOp  # noqa: E402
from repro.pim import CostModel  # noqa: E402
from repro.rpq import random_source_batch  # noqa: E402

#: Wall-clock speedup the vectorized+incremental configuration must show
#: over the pre-PR vectorized+rebuild baseline.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Timed replays per configuration; the minimum is reported (noise floor).
TIMING_ROUNDS = 2

#: The four (engine, snapshot maintenance) configurations under test.
CONFIGURATIONS = [
    ("python+rebuild", "python", False),
    ("vectorized+rebuild", "vectorized", False),
    ("python+incremental", "python", True),
    ("vectorized+incremental", "vectorized", True),
]


def _sizes() -> Tuple[int, int, int, int]:
    """(nodes, edges, batch, rounds) honoring the shared env knobs."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    batch = int(os.environ.get("REPRO_BENCH_BATCH", "96"))
    rounds = int(os.environ.get("REPRO_BENCH_MIXED_ROUNDS", "4"))
    # Graph-to-batch ratio matters: at paper scale the snapshots dwarf a
    # single batch, which is exactly the regime where invalidate-and-
    # rebuild hurts.  ~90 K edges against 96-op batches keeps that ratio
    # while the sweep still finishes in seconds.
    return int(18000 * scale), int(90000 * scale), batch, rounds


def build_trace(
    num_nodes: int, num_edges: int, batch: int, rounds: int, seed: int = 7
) -> Tuple[DiGraph, List[Tuple[str, object]]]:
    """One deterministic interleaved trace, replayable on every config.

    Deletion batches must target edges that exist at that point of the
    trace, so the trace is generated against a scratch mirror that
    applies each update batch before the next one is sampled.
    """
    graph = random_graph(num_nodes, num_edges, seed=seed)
    scratch = DiGraph()
    for src, dst, label in graph.labeled_edges():
        scratch.add_edge(src, dst, label)
    stream = UpdateStream(scratch, seed=seed)
    trace: List[Tuple[str, object]] = []
    nodes = list(scratch.nodes())
    for round_id in range(rounds):
        inserts = stream.insertion_batch(batch)
        trace.append(("update", inserts))
        for op in inserts:
            scratch.add_edge(op.src, op.dst)
        trace.append(
            ("query", random_source_batch(nodes, batch, seed=seed + round_id))
        )
        deletes = stream.deletion_batch(batch // 2)
        trace.append(("update", deletes))
        for op in deletes:
            scratch.remove_edge(op.src, op.dst)
        trace.append(
            ("query", random_source_batch(nodes, batch, seed=seed * 31 + round_id))
        )
    return graph, trace


def _fresh_system(
    graph: DiGraph, trace: List[Tuple[str, object]], engine: str, incremental: bool
) -> Moctopus:
    """A freshly-loaded system, primed into service steady state.

    The untimed priming query builds every storage's initial CSR base
    and warms the engine caches — the regime an interleaved trace
    actually runs in.  It queues only misplacement reports, which never
    fire with ``auto_migrate=False``, so replay outcomes are unaffected.
    """
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=16),
        engine=engine,
        snapshot_incremental=incremental,
    )
    system = Moctopus.from_graph(graph, config)
    system.batch_khop(list(trace[1][1]), hops=2, auto_migrate=False)
    return system


def _replay_on(
    system: Moctopus, trace: List[Tuple[str, object]]
) -> Tuple[float, List[object]]:
    """Replay the trace on ``system``; return (seconds, outcome log)."""
    outcomes: List[object] = []
    start = time.perf_counter()
    for kind, payload in trace:
        if kind == "update":
            stats = system.apply_updates(list(payload))
            outcomes.append(stats.counters["updates"])
        else:
            result, stats = system.batch_khop(
                list(payload), hops=2, auto_migrate=False
            )
            outcomes.append(
                (result, stats.host_time, stats.cpc_time, stats.ipc_time,
                 stats.pim_time)
            )
    elapsed = time.perf_counter() - start
    return elapsed, outcomes


def _replay(
    graph: DiGraph, trace: List[Tuple[str, object]], engine: str, incremental: bool
) -> Tuple[float, List[object]]:
    """Replay the trace on one fresh system; return (seconds, outcome log)."""
    return _replay_on(_fresh_system(graph, trace, engine, incremental), trace)


def run_trace(
    graph: DiGraph, trace: List[Tuple[str, object]], engine: str, incremental: bool
) -> Tuple[float, List[object]]:
    """Best-of-N timed replays, after one untimed warmup replay.

    Each replay runs on its own freshly-loaded system (the trace mutates
    the graph, so systems are single-use); the warmup absorbs one-off
    costs every configuration would pay exactly once in a long-running
    service — code paths, allocator state, the initial CSR base builds.
    """
    _replay(graph, trace, engine, incremental)
    best, outcomes = _replay(graph, trace, engine, incremental)
    for _ in range(TIMING_ROUNDS - 1):
        seconds, _ = _replay(graph, trace, engine, incremental)
        best = min(best, seconds)
    return best, outcomes


def run_sweep(verbose: bool = True) -> Dict[str, object]:
    num_nodes, num_edges, batch, rounds = _sizes()
    graph, trace = build_trace(num_nodes, num_edges, batch, rounds)
    timings: Dict[str, float] = {}
    logs: Dict[str, List[object]] = {}
    for name, engine, incremental in CONFIGURATIONS:
        seconds, outcomes = run_trace(graph, trace, engine, incremental)
        timings[name] = seconds
        logs[name] = outcomes
    reference_log = logs["python+rebuild"]
    for name in timings:
        if logs[name] != reference_log:
            raise AssertionError(
                f"configuration {name} changed results or simulated stats"
            )
    baseline = timings["vectorized+rebuild"]
    speedup = baseline / timings["vectorized+incremental"]
    rows = [
        (
            name,
            f"{timings[name] * 1000:.1f}",
            f"{timings['python+rebuild'] / timings[name]:.2f}x",
        )
        for name, _, _ in CONFIGURATIONS
    ]
    if verbose:
        print()
        print(
            f"mixed workload: {num_nodes} nodes / {num_edges} edges, "
            f"{rounds} rounds of {batch}-op update + {batch}-source 2-hop "
            f"query batches"
        )
        print(
            format_table(
                ["configuration", "wall-clock (ms)", "vs python+rebuild"], rows
            )
        )
        print(
            f"vectorized incremental vs vectorized rebuild: {speedup:.2f}x "
            f"(required >= {MIN_SPEEDUP:.1f}x)"
        )
    return {
        "workload": {
            "nodes": num_nodes,
            "edges": num_edges,
            "batch": batch,
            "rounds": rounds,
        },
        "wall_clock_seconds": timings,
        "speedup_vs_vectorized_rebuild": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    }


def test_mixed_workload_incremental_speedup():
    """Headline: incremental snapshots + vectorized updates >= 3x."""
    report = run_sweep(verbose=True)
    assert report["speedup_vs_vectorized_rebuild"] >= MIN_SPEEDUP, (
        "vectorized+incremental is only "
        f"{report['speedup_vs_vectorized_rebuild']:.2f}x faster than the "
        f"pre-PR rebuild behaviour (required {MIN_SPEEDUP:.1f}x)"
    )


def _profile_sweep() -> None:
    """Top-10 cumulative hotspots of the vectorized+incremental replay."""
    num_nodes, num_edges, batch, rounds = _sizes()
    graph, trace = build_trace(num_nodes, num_edges, batch, rounds)
    # Profile the steady-state replay only — bulk loading is untimed in
    # the sweep too, and it would otherwise drown the interesting paths.
    system = _fresh_system(graph, trace, "vectorized", True)
    profiler = cProfile.Profile()
    profiler.enable()
    _replay_on(system, trace)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print("\ntop-10 cumulative hotspots (vectorized+incremental):")
    stats.print_stats(10)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the top-10 cumulative cProfile hotspots of the "
        "vectorized+incremental replay",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the timing report as JSON (CI perf-trajectory artifact)",
    )
    args = parser.parse_args()
    report = run_sweep(verbose=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.profile:
        _profile_sweep()
    if report["speedup_vs_vectorized_rebuild"] < MIN_SPEEDUP:
        print("FAIL: speedup below required minimum", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
