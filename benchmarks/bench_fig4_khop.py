"""Experiment E2 — Figure 4(a-c): k-hop path query latency, k = 1, 2, 3.

For every trace the same batch of k-hop queries runs on Moctopus,
PIM-hash and the RedisGraph-like baseline; the table printed per k
mirrors the per-trace series of Figure 4.  Shape assertions:

* Moctopus outperforms the RedisGraph baseline on the less-skewed traces
  (road networks and co-purchase graphs) — the paper reports
  2.54x-10.67x there;
* Moctopus outperforms PIM-hash on the highly skewed traces (#5, #6,
  #8, #11, #12) thanks to the locality-aware node distribution;
* results of the three engines are identical (checked inside the
  runner).
"""

from __future__ import annotations

import pytest
from conftest import bench_batch_size, bench_traces

from repro.bench import format_table, geometric_mean, run_khop_experiment
from repro.graph import dataset_spec

LESS_SKEWED_TRACES = (1, 2, 3, 7, 13, 14, 15)
HIGHLY_SKEWED_TRACES = (5, 6, 8, 11, 12)


def _run(provider, hops):
    return run_khop_experiment(
        bench_traces(), hops=hops, batch_size=bench_batch_size(), provider=provider
    )


def _print_rows(hops, rows):
    print()
    print(f"Figure 4({chr(ord('a') + hops - 1)}): run-time of {hops}-hop path queries (ms)")
    print(
        format_table(
            ["trace", "name", "moctopus_ms", "pim_hash_ms", "redisgraph_ms",
             "vs_redisgraph", "vs_pim_hash"],
            [
                [row["trace"], row["name"], row["moctopus_ms"], row["pim_hash_ms"],
                 row["redisgraph_ms"], row["speedup_vs_redisgraph"],
                 row["speedup_vs_pim_hash"]]
                for row in rows
            ],
        )
    )


@pytest.mark.parametrize("hops", [1, 2, 3])
def test_fig4_khop_latency(benchmark, provider, hops):
    rows = benchmark.pedantic(_run, args=(provider, hops), rounds=1, iterations=1)
    _print_rows(hops, rows)

    by_trace = {int(row["trace"].lstrip("#")): row for row in rows}
    less_skewed = [
        by_trace[trace]["speedup_vs_redisgraph"]
        for trace in LESS_SKEWED_TRACES
        if trace in by_trace
    ]
    skewed = [
        by_trace[trace]["speedup_vs_pim_hash"]
        for trace in HIGHLY_SKEWED_TRACES
        if trace in by_trace
    ]
    if less_skewed and hops >= 2:
        assert geometric_mean(less_skewed) > 1.5, (
            "Moctopus should clearly beat RedisGraph on less-skewed traces"
        )
    if skewed:
        assert geometric_mean(skewed) > 1.2, (
            "Moctopus should beat PIM-hash on highly skewed traces"
        )
    print(
        f"  geomean speedup vs RedisGraph (less-skewed traces): "
        f"{geometric_mean(less_skewed):.2f}x"
    )
    print(
        f"  geomean speedup vs PIM-hash (highly skewed traces): "
        f"{geometric_mean(skewed):.2f}x"
    )
