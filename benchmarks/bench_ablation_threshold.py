"""Ablation A3 — the high-degree threshold of the labor-division split.

The paper (and Table 1) classify nodes with out-degree above 16 as
high-degree and keep them on the host CPU.  This ablation sweeps the
threshold on a skewed trace and reports how many nodes land on the host,
the PIM load imbalance during a 3-hop query, and the query latency —
showing why "no labor division" (threshold = infinity) suffers on skewed
graphs and why a very low threshold overloads the host.
"""

from __future__ import annotations

from conftest import bench_batch_size, bench_scale

from repro.bench import format_table, khop_workload, scaled_cost_model
from repro.core import Moctopus, MoctopusConfig
from repro.graph import load_dataset
from repro.partition import load_imbalance

#: Trace #12 (web-Stanford): the most skewed trace in Table 1.
ABLATION_TRACE = 12
THRESHOLDS = (4, 8, 16, 32, 64, None)


def _run():
    graph = load_dataset(ABLATION_TRACE, scale=bench_scale())
    cost_model = scaled_cost_model()
    query = khop_workload(graph, hops=3, batch_size=bench_batch_size(), seed=7)
    rows = []
    for threshold in THRESHOLDS:
        system = Moctopus.from_graph(
            graph,
            MoctopusConfig(cost_model=cost_model, high_degree_threshold=threshold),
        )
        _, stats = system.batch_khop(query.sources, query.hops)
        rows.append(
            [
                "none" if threshold is None else threshold,
                system.host_node_count(),
                round(load_imbalance(system.pim.load_report()), 2),
                round(stats.total_time_ms, 4),
                round(stats.host_time * 1e3, 4),
                round(stats.pim_time * 1e3, 4),
            ]
        )
    return rows


def test_ablation_high_degree_threshold(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("Ablation A3: labor-division high-degree threshold sweep (trace #12)")
    print(
        format_table(
            ["threshold", "host_nodes", "pim_load_imbalance", "3hop_latency_ms",
             "host_ms", "pim_ms"],
            rows,
        )
    )
    by_threshold = {row[0]: row for row in rows}
    # Disabling labor division leaves no nodes on the host and a worse (or
    # equal) PIM load imbalance than the paper's threshold of 16.
    assert by_threshold["none"][1] == 0
    assert by_threshold[16][1] > 0
    assert by_threshold[16][2] <= by_threshold["none"][2] + 1e-9
