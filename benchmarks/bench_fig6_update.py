"""Experiments E5/E6 — Figure 6: graph update latency (insert and delete).

Random edge batches are inserted into and deleted from every trace on
Moctopus and on the RedisGraph-like baseline.  The paper reports average
speedups of 30.01x for insertion and 52.59x for deletion (up to 81.45x /
209.31x); the shape assertions here are that Moctopus wins on every
trace and that deletions benefit at least as much as insertions.

Fresh systems are built for this figure (updates mutate the stores, so
the cached query systems are left untouched).
"""

from __future__ import annotations

from conftest import bench_batch_size, bench_scale, bench_traces

from repro.bench import format_table, geometric_mean, run_update_experiment, scaled_cost_model


def _run():
    return run_update_experiment(
        bench_traces(),
        batch_size=bench_batch_size(),
        scale=bench_scale(),
        cost_model=scaled_cost_model(),
    )


def test_fig6_graph_update_latency(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("Figure 6(a): edge insertion run-time (ms)")
    print(
        format_table(
            ["trace", "name", "moctopus_ms", "redisgraph_ms", "speedup"],
            [
                [row["trace"], row["name"], row["moctopus_insert_ms"],
                 row["redisgraph_insert_ms"], row["insert_speedup"]]
                for row in rows
            ],
        )
    )
    print()
    print("Figure 6(b): edge deletion run-time (ms)")
    print(
        format_table(
            ["trace", "name", "moctopus_ms", "redisgraph_ms", "speedup"],
            [
                [row["trace"], row["name"], row["moctopus_delete_ms"],
                 row["redisgraph_delete_ms"], row["delete_speedup"]]
                for row in rows
            ],
        )
    )
    insert_speedups = [row["insert_speedup"] for row in rows]
    delete_speedups = [row["delete_speedup"] for row in rows]
    print(
        f"  average insert speedup: {geometric_mean(insert_speedups):.2f}x "
        f"(paper: 30.01x), average delete speedup: "
        f"{geometric_mean(delete_speedups):.2f}x (paper: 52.59x)"
    )
    assert all(speedup > 2.0 for speedup in insert_speedups)
    assert all(speedup > 2.0 for speedup in delete_speedups)
    assert geometric_mean(delete_speedups) >= geometric_mean(insert_speedups)
