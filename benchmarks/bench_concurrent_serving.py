"""Concurrent-serving benchmark: coalesced readers vs serialized callers.

The serving layer's pitch is throughput under concurrency: many clients
each ask single-source k-hop questions, and the
:class:`~repro.serve.scheduler.BatchScheduler` coalesces whatever is
waiting in its admission queue into one engine-level batch per window —
the paper's batch-query machinery applied to interleaved traffic.  This
benchmark measures exactly that contrast on one graph and one query
population:

``serialized``
    8 reader threads call ``system.batch_khop([src], k)`` directly; the
    system's writer lock serializes them, so wall-clock is the sum of
    single-source executions (the pre-serving behaviour of every
    caller owning the whole system).
``coalesced``
    the same 8 readers submit the same queries to a
    :class:`BatchScheduler` (each keeping a small pipeline of in-flight
    futures, as an async client would), which executes them as
    epoch-pinned engine batches.

Both phases must produce identical answers; the headline assertion is
``coalesced`` throughput >= 2x ``serialized``.  A third, untimed phase
re-runs the coalesced workload with a concurrent writer applying update
batches, as a liveness/isolation check under churn: every query still
completes and answers a consistent published epoch.

Run styles::

    python -m pytest benchmarks/bench_concurrent_serving.py -q -s   # smoke
    python benchmarks/bench_concurrent_serving.py                   # table
    python benchmarks/bench_concurrent_serving.py --json BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Set, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench import format_table  # noqa: E402
from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import random_graph  # noqa: E402
from repro.pim import CostModel  # noqa: E402

#: Throughput multiplier the coalesced phase must show over serialized
#: execution (CI overrides via the environment; local bar is higher).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SERVING_SPEEDUP", "2.0"))

NUM_READERS = 8
HOPS = 2
#: In-flight futures each reader keeps queued at the scheduler (an async
#: client's request pipeline); deep enough that the scheduler's drain
#: window usually fills.
PIPELINE_DEPTH = 8


def _sizes() -> Tuple[int, int, int]:
    """(nodes, edges, queries per reader) honoring the shared env knobs."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    per_reader = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "48"))
    return int(6000 * scale), int(24000 * scale), per_reader


def _build_system(num_nodes: int, num_edges: int) -> Moctopus:
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=16),
        engine="vectorized",
    )
    system = Moctopus.from_graph(random_graph(num_nodes, num_edges, seed=13), config)
    # Prime CSR bases / engine caches outside the timed region.
    system.batch_khop(list(range(64)), HOPS, auto_migrate=False)
    return system


def _reader_sources(reader: int, per_reader: int, num_nodes: int) -> List[int]:
    return [
        (reader * 7919 + index * 104729) % num_nodes
        for index in range(per_reader)
    ]


def _run_serialized(
    system: Moctopus, per_reader: int, num_nodes: int
) -> Tuple[float, Dict[Tuple[int, int], Set[int]]]:
    """8 threads, each calling the live system one source at a time."""
    answers: Dict[Tuple[int, int], Set[int]] = {}
    answers_lock = threading.Lock()

    def reader(reader_id: int) -> None:
        for source in _reader_sources(reader_id, per_reader, num_nodes):
            result, _ = system.batch_khop([source], HOPS, auto_migrate=False)
            with answers_lock:
                answers[(reader_id, source)] = result.destinations_of(0)

    threads = [
        threading.Thread(target=reader, args=(reader_id,))
        for reader_id in range(NUM_READERS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, answers


def _run_coalesced(
    system: Moctopus,
    per_reader: int,
    num_nodes: int,
    churn: bool = False,
) -> Tuple[float, Dict[Tuple[int, int], Set[int]], int]:
    """8 pipelined readers through one BatchScheduler (optional writer)."""
    answers: Dict[Tuple[int, int], Set[int]] = {}
    answers_lock = threading.Lock()
    stop_writer = threading.Event()

    def writer() -> None:
        round_id = 0
        while not stop_writer.is_set():
            base = 100000 + round_id * 64
            edges = [(base + offset, base + offset + 1) for offset in range(32)]
            system.insert_edges(edges)
            system.delete_edges(edges[::2])
            round_id += 1
            time.sleep(0.002)

    with system.serve() as scheduler:
        def reader(reader_id: int) -> None:
            sources = _reader_sources(reader_id, per_reader, num_nodes)
            pending: List[Tuple[int, object]] = []
            for source in sources:
                pending.append((source, scheduler.submit(source, HOPS)))
                if len(pending) >= PIPELINE_DEPTH:
                    done_source, future = pending.pop(0)
                    with answers_lock:
                        answers[(reader_id, done_source)] = future.result(60)
            for done_source, future in pending:
                with answers_lock:
                    answers[(reader_id, done_source)] = future.result(60)

        threads = [
            threading.Thread(target=reader, args=(reader_id,))
            for reader_id in range(NUM_READERS)
        ]
        writer_thread = threading.Thread(target=writer) if churn else None
        start = time.perf_counter()
        if writer_thread:
            writer_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if writer_thread:
            stop_writer.set()
            writer_thread.join()
        batches = scheduler.batches_executed
    return elapsed, answers, batches


def run_sweep(verbose: bool = True) -> Dict[str, object]:
    num_nodes, num_edges, per_reader = _sizes()
    total_queries = NUM_READERS * per_reader
    system = _build_system(num_nodes, num_edges)

    serialized_seconds, serialized_answers = _run_serialized(
        system, per_reader, num_nodes
    )
    coalesced_seconds, coalesced_answers, batches = _run_coalesced(
        system, per_reader, num_nodes
    )
    if coalesced_answers != serialized_answers:
        raise AssertionError("coalesced serving changed query answers")

    # Liveness/isolation under churn (untimed): a writer publishes
    # epochs while the readers stream; every query must still complete.
    churn_seconds, churn_answers, _ = _run_coalesced(
        system, max(8, per_reader // 4), num_nodes, churn=True
    )
    if len(churn_answers) != NUM_READERS * max(8, per_reader // 4):
        raise AssertionError("queries lost under writer churn")
    epochs_published = system._epochs.published_epochs

    serialized_qps = total_queries / serialized_seconds
    coalesced_qps = total_queries / coalesced_seconds
    speedup = coalesced_qps / serialized_qps
    rows = [
        (
            "serialized",
            f"{serialized_seconds * 1000:.1f}",
            f"{serialized_qps:.0f}",
            total_queries,
        ),
        (
            "coalesced",
            f"{coalesced_seconds * 1000:.1f}",
            f"{coalesced_qps:.0f}",
            batches,
        ),
    ]
    if verbose:
        print()
        print(
            f"concurrent serving: {num_nodes} nodes / {num_edges} edges, "
            f"{NUM_READERS} readers x {per_reader} single-source "
            f"{HOPS}-hop queries"
        )
        print(
            format_table(
                ["phase", "wall-clock (ms)", "queries/s", "engine calls"], rows
            )
        )
        print(
            f"coalesced vs serialized throughput: {speedup:.2f}x "
            f"(required >= {MIN_SPEEDUP:.1f}x); "
            f"{epochs_published} epochs published under churn"
        )
    return {
        "workload": {
            "nodes": num_nodes,
            "edges": num_edges,
            "readers": NUM_READERS,
            "queries_per_reader": per_reader,
            "hops": HOPS,
        },
        "serialized_seconds": serialized_seconds,
        "coalesced_seconds": coalesced_seconds,
        "coalesced_engine_calls": batches,
        "churn_seconds": churn_seconds,
        "epochs_published": epochs_published,
        "throughput_speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    }


def test_concurrent_serving_speedup():
    """Headline: 8 coalesced readers >= 2x serialized throughput."""
    report = run_sweep(verbose=True)
    assert report["throughput_speedup"] >= MIN_SPEEDUP, (
        f"coalesced serving {report['throughput_speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x bar"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the report as JSON to PATH"
    )
    args = parser.parse_args()
    report = run_sweep(verbose=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if report["throughput_speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {report['throughput_speedup']:.2f}x below "
            f"{MIN_SPEEDUP:.1f}x",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
