"""Ablation A1 — partitioning algorithm comparison.

DESIGN.md calls out the choice of the radical greedy heuristic over the
alternatives the paper discusses (hash, LDG, adaptive).  This ablation
partitions a representative subset of traces with each algorithm and
reports edge cut, locality, balance and the partitioning overhead proxy
the paper argues about (partitions scanned per placement for LDG,
migrations for the adaptive method).
"""

from __future__ import annotations

from conftest import bench_scale, bench_traces

from repro.bench import format_table, scaled_cost_model
from repro.graph import dataset_spec, load_dataset
from repro.partition import (
    AdaptivePartitioner,
    HashPartitioner,
    LDGPartitioner,
    RadicalGreedyPartitioner,
    evaluate_partition,
    partition_static_graph,
)

#: One trace per structural family keeps the ablation quick.
DEFAULT_ABLATION_TRACES = (1, 7, 12)


def _ablation_traces():
    selected = [trace for trace in DEFAULT_ABLATION_TRACES if trace in bench_traces()]
    return selected or list(DEFAULT_ABLATION_TRACES)


def _run():
    num_partitions = scaled_cost_model().num_modules
    rows = []
    for trace_id in _ablation_traces():
        spec = dataset_spec(trace_id)
        graph = load_dataset(trace_id, scale=bench_scale())

        partitioners = {
            "hash": HashPartitioner(num_partitions),
            "ldg": LDGPartitioner(num_partitions, expected_nodes=graph.num_nodes),
            "adaptive": AdaptivePartitioner(num_partitions),
            "radical-greedy": RadicalGreedyPartitioner(num_partitions),
        }
        for name, partitioner in partitioners.items():
            partition_map = partition_static_graph(partitioner, graph)
            if isinstance(partitioner, AdaptivePartitioner):
                partitioner.converge(max_rounds=3)
                partition_map = partitioner.partition_map
            quality = evaluate_partition(graph, partition_map)
            overhead = 0
            if isinstance(partitioner, LDGPartitioner):
                overhead = partitioner.partitions_scanned
            elif isinstance(partitioner, AdaptivePartitioner):
                overhead = partitioner.migrations
            rows.append(
                [
                    f"#{trace_id}", spec.name, name,
                    round(quality.locality_fraction, 3),
                    round(quality.edge_cut_fraction, 3),
                    round(quality.balance_factor, 2),
                    overhead,
                ]
            )
    return rows


def test_ablation_partitioning_algorithms(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("Ablation A1: partitioning algorithms (per-trace quality)")
    print(
        format_table(
            ["trace", "name", "partitioner", "locality", "edge_cut", "balance",
             "overhead (scans/migrations)"],
            rows,
        )
    )
    # The radical greedy heuristic must beat hash on locality while paying
    # none of LDG's scanning overhead.
    by_key = {(row[0], row[2]): row for row in rows}
    for trace_id in _ablation_traces():
        trace = f"#{trace_id}"
        assert by_key[(trace, "radical-greedy")][3] >= by_key[(trace, "hash")][3]
        assert by_key[(trace, "radical-greedy")][6] == 0
        assert by_key[(trace, "ldg")][6] > 0
