"""Network serving benchmark: wire-level parity, throughput and tails.

The asyncio front-end must add a socket, not a behaviour: answers served
over TCP have to be **bit-identical** to direct
:class:`~repro.serve.scheduler.BatchScheduler` calls — destinations and
the full simulated :class:`~repro.pim.stats.ExecutionStats`, compared in
wire form — and the protocol/event-loop overhead must not grow a fat
latency tail.  Two phases:

``parity`` (untimed)
    one client replays a query population over the wire and through a
    direct scheduler on the same epoch; every answer (destinations *and*
    ``stats_to_wire`` rendering) must match exactly.
``closed-loop`` (timed)
    4 client threads, each its own connection, issue single-source
    queries closed-loop (one in flight per client) after an untimed
    warmup; the report carries throughput plus p50/p99 latency, and the
    smoke gate requires ``p99 <= REPRO_BENCH_NET_MAX_TAIL_RATIO * p50``
    (default 5x).

Server logs land in ``bench_net_server.log`` (CI uploads it on
failure).

Run styles::

    python -m pytest benchmarks/bench_net.py -q -s    # smoke
    python benchmarks/bench_net.py                    # table
    python benchmarks/bench_net.py --json BENCH_net.json
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import threading
import time
from typing import Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench import format_table  # noqa: E402
from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import random_graph  # noqa: E402
from repro.net import MoctopusClient, MoctopusServer  # noqa: E402
from repro.net.protocol import stats_to_wire  # noqa: E402
from repro.pim import CostModel  # noqa: E402

#: Tail-latency bar: p99 must stay within this multiple of p50 (CI
#: overrides via the environment).
MAX_TAIL_RATIO = float(
    os.environ.get("REPRO_BENCH_NET_MAX_TAIL_RATIO", "5.0")
)

NUM_CLIENTS = 4
HOPS = 2
LOG_PATH = os.environ.get("REPRO_BENCH_NET_LOG", "bench_net_server.log")


def _sizes() -> Tuple[int, int, int]:
    """(nodes, edges, timed queries per client) honoring env knobs."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    per_client = int(os.environ.get("REPRO_BENCH_NET_QUERIES", "100"))
    return int(4000 * scale), int(16000 * scale), per_client


def _build_system(num_nodes: int, num_edges: int) -> Moctopus:
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=16),
        engine="vectorized",
    )
    system = Moctopus.from_graph(
        random_graph(num_nodes, num_edges, seed=13), config
    )
    # Prime CSR bases / engine caches outside the timed region.
    system.batch_khop(list(range(64)), HOPS, auto_migrate=False)
    return system


def _attach_server_log() -> logging.Logger:
    logger = logging.getLogger("repro.net.server.bench")
    logger.setLevel(logging.INFO)
    logger.propagate = False
    handler = logging.FileHandler(LOG_PATH, mode="w", encoding="utf-8")
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(message)s")
    )
    logger.addHandler(handler)
    return logger


def _client_sources(client: int, count: int, num_nodes: int) -> List[int]:
    return [
        (client * 7919 + index * 104729) % num_nodes for index in range(count)
    ]


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[rank]


def _run_parity(
    system: Moctopus, server: MoctopusServer, num_nodes: int
) -> int:
    """Wire answers must be bit-identical to direct scheduler answers."""
    population: List[Tuple[str, int, object]] = []
    for index in range(24):
        population.append(("khop", (index * 104729) % num_nodes, HOPS))
    for index in range(8):
        population.append(("rpq", (index * 7919) % num_nodes, ".{2}"))
    mismatches = 0
    with MoctopusClient("127.0.0.1", server.port) as client:
        with system.serve() as direct:
            for kind, source, detail in population:
                if kind == "khop":
                    wire = client.khop(source, detail, timeout=60)
                    expect = direct.submit(source, detail).outcome(timeout=60)
                else:
                    wire = client.rpq(source, detail, timeout=60)
                    expect = direct.submit_rpq(source, detail).outcome(
                        timeout=60
                    )
                expect_wire = (expect[0], stats_to_wire(expect[1]))
                if wire != expect_wire:
                    mismatches += 1
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{len(population)} wire answers differ from "
            "direct scheduler answers"
        )
    return len(population)


def _run_closed_loop(
    server: MoctopusServer, per_client: int, num_nodes: int
) -> Tuple[float, List[float]]:
    """4 closed-loop clients; returns (elapsed seconds, latencies)."""
    latencies: List[List[float]] = [[] for _ in range(NUM_CLIENTS)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(NUM_CLIENTS + 1)

    def run_client(client_id: int) -> None:
        sources = _client_sources(client_id, per_client, num_nodes)
        try:
            with MoctopusClient("127.0.0.1", server.port) as client:
                for source in sources[: max(4, per_client // 10)]:
                    client.khop(source, HOPS, timeout=60)  # warmup, untimed
                barrier.wait()
                for source in sources:
                    begin = time.perf_counter()
                    client.khop(source, HOPS, timeout=60)
                    latencies[client_id].append(time.perf_counter() - begin)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=run_client, args=(client_id,))
        for client_id in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # every client warmed up; start the clock together
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"client failed during closed loop: {errors[0]!r}")
    return elapsed, sorted(lat for per in latencies for lat in per)


def run_sweep(verbose: bool = True) -> Dict[str, object]:
    num_nodes, num_edges, per_client = _sizes()
    system = _build_system(num_nodes, num_edges)
    logger = _attach_server_log()
    server = MoctopusServer(system, port=0, logger=logger).start()
    try:
        parity_queries = _run_parity(system, server, num_nodes)
        elapsed, latencies = _run_closed_loop(server, per_client, num_nodes)
        metrics = server.metrics.snapshot()
    finally:
        server.close()
    total = len(latencies)
    throughput = total / elapsed if elapsed > 0 else 0.0
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    tail_ratio = (p99 / p50) if p50 > 0 else 0.0
    if metrics["queries_answered"] < total + parity_queries:
        raise AssertionError(
            "server answered fewer queries than the clients issued"
        )
    if verbose:
        print()
        print(
            f"network serving: {num_nodes} nodes / {num_edges} edges, "
            f"{NUM_CLIENTS} closed-loop clients x {per_client} "
            f"single-source {HOPS}-hop queries "
            f"(+{parity_queries} parity queries, untimed)"
        )
        rows = [
            (
                "closed-loop",
                f"{elapsed * 1000:.1f}",
                f"{throughput:.0f}",
                f"{p50 * 1000:.2f}",
                f"{p99 * 1000:.2f}",
            )
        ]
        print(
            format_table(
                ["phase", "wall-clock (ms)", "queries/s", "p50 (ms)",
                 "p99 (ms)"],
                rows,
            )
        )
        print(
            f"tail ratio p99/p50 = {tail_ratio:.2f} "
            f"(required <= {MAX_TAIL_RATIO:.1f}); wire parity held on "
            f"{parity_queries} queries"
        )
    return {
        "workload": {
            "nodes": num_nodes,
            "edges": num_edges,
            "clients": NUM_CLIENTS,
            "queries_per_client": per_client,
            "hops": HOPS,
        },
        "parity_queries": parity_queries,
        "elapsed_seconds": elapsed,
        "throughput_qps": throughput,
        "latency_p50_seconds": p50,
        "latency_p99_seconds": p99,
        "tail_ratio": tail_ratio,
        "max_tail_ratio_required": MAX_TAIL_RATIO,
        "server_metrics": metrics,
    }


def test_network_serving_parity_and_tail():
    """Smoke gate: wire parity holds and p99 stays within the tail bar."""
    report = run_sweep(verbose=True)
    assert report["tail_ratio"] <= MAX_TAIL_RATIO, (
        f"p99/p50 tail ratio {report['tail_ratio']:.2f} above the "
        f"{MAX_TAIL_RATIO:.1f}x bar"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the report as JSON to PATH"
    )
    args = parser.parse_args()
    report = run_sweep(verbose=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if report["tail_ratio"] > MAX_TAIL_RATIO:
        print(
            f"FAIL: tail ratio {report['tail_ratio']:.2f} above "
            f"{MAX_TAIL_RATIO:.1f}",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
