"""Experiment E4 — Figure 5: IPC cost of 3-hop path queries.

The paper measures the inter-PIM communication component of 3-hop
queries for Moctopus and PIM-hash and reports an average reduction of
89.56 %.  This benchmark prints the same per-trace IPC series plus the
average reduction.  With the ~1/125-scale graphs there are far fewer
nodes per PIM module than on the real platform, which caps how much
locality any partitioner can preserve; the shape assertion is therefore
that Moctopus's IPC is consistently below PIM-hash's and that the
average reduction is substantial (>40 %), with the absolute percentage
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import bench_batch_size, bench_traces

from repro.bench import format_table, run_ipc_experiment


def _run(provider):
    return run_ipc_experiment(
        bench_traces(), hops=3, batch_size=bench_batch_size(), provider=provider
    )


def test_fig5_ipc_cost_of_3hop_queries(benchmark, provider):
    rows = benchmark.pedantic(_run, args=(provider,), rounds=1, iterations=1)
    print()
    print("Figure 5: IPC cost of Moctopus and PIM-hash processing 3-hop queries")
    print(
        format_table(
            ["trace", "name", "moctopus_ipc_ms", "pim_hash_ipc_ms", "reduction_pct"],
            [
                [row["trace"], row["name"], row["moctopus_ipc_ms"],
                 row["pim_hash_ipc_ms"], round(100 * row["ipc_reduction"], 1)]
                for row in rows
            ],
        )
    )
    reductions = [row["ipc_reduction"] for row in rows if row["pim_hash_ipc_ms"] > 0]
    average_reduction = sum(reductions) / len(reductions) if reductions else 0.0
    print(f"  average IPC reduction: {100 * average_reduction:.1f}% "
          f"(paper reports 89.56% at full scale)")
    assert all(
        row["moctopus_ipc_ms"] <= row["pim_hash_ipc_ms"] * 1.05 for row in rows
    ), "Moctopus IPC should not exceed PIM-hash IPC"
    assert average_reduction > 0.40
