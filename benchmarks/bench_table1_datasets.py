"""Experiment E1 — Table 1: dataset statistics.

Regenerates the paper's Table 1 for the synthetic stand-ins: node count,
edge count and the percentage of high-degree nodes (out-degree > 16) per
trace.  The shape requirement is that the road-network traces (#1-#3)
and the plain co-purchase traces (#13-#15) report (near) zero high-degree
nodes while the citation/social/web traces report a small positive
percentage, mirroring the skew classes of the original SNAP graphs.
"""

from __future__ import annotations

from conftest import bench_scale, bench_traces

from repro.bench import format_table
from repro.graph import HIGH_DEGREE_THRESHOLD, dataset_spec, dataset_statistics, load_dataset


def _table_rows():
    rows = []
    for trace_id in bench_traces():
        spec = dataset_spec(trace_id)
        graph = load_dataset(trace_id, scale=bench_scale())
        stats = dataset_statistics(graph, threshold=HIGH_DEGREE_THRESHOLD)
        rows.append(
            [
                f"#{trace_id}",
                spec.name,
                spec.paper_nodes,
                int(stats["nodes"]),
                int(stats["edges"]),
                spec.paper_high_degree_pct,
                round(stats["high_degree_pct"], 2),
            ]
        )
    return rows


def test_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_table_rows, rounds=1, iterations=1)
    print()
    print("Table 1: real-world graphs and their synthetic stand-ins")
    print(
        format_table(
            [
                "trace", "name", "paper_nodes", "nodes", "edges",
                "paper_hd_pct", "hd_pct",
            ],
            rows,
        )
    )
    by_trace = {row[0]: row for row in rows}
    for trace in ("#1", "#2", "#3"):
        if trace in by_trace:
            assert by_trace[trace][6] == 0.0, "road networks must have no hubs"
    for trace in ("#5", "#6", "#11", "#12"):
        if trace in by_trace:
            assert by_trace[trace][6] > 0.3, "skewed traces must contain hubs"
