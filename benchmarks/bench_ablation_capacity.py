"""Ablation A2 — the dynamic capacity-constraint proportion.

The paper fixes the constraint at 1.05x the average partition size and
notes that "decreasing the proportion of capacity constraint can
facilitate load balance but at the expense of decreased graph locality".
This ablation sweeps the proportion and reports the locality/balance
trade-off plus the simulated 3-hop latency, making that sentence
quantitative.
"""

from __future__ import annotations

from conftest import bench_batch_size, bench_scale

from repro.bench import format_table, khop_workload, scaled_cost_model
from repro.core import Moctopus, MoctopusConfig
from repro.graph import load_dataset

#: Trace #7 (com-amazon): community structure, mild skew — the case where
#: the trade-off is most visible.
ABLATION_TRACE = 7
CAPACITY_FACTORS = (1.01, 1.05, 1.25, 1.5, 2.0)


def _run():
    graph = load_dataset(ABLATION_TRACE, scale=bench_scale())
    cost_model = scaled_cost_model()
    query = khop_workload(graph, hops=3, batch_size=bench_batch_size(), seed=5)
    rows = []
    for factor in CAPACITY_FACTORS:
        system = Moctopus.from_graph(
            graph,
            MoctopusConfig(cost_model=cost_model, capacity_factor=factor),
        )
        quality = system.partition_quality()
        _, stats = system.batch_khop(query.sources, query.hops)
        rows.append(
            [
                factor,
                round(quality.locality_fraction, 3),
                round(quality.balance_factor, 3),
                round(stats.total_time_ms, 4),
                round(stats.ipc_time_ms, 4),
            ]
        )
    return rows


def test_ablation_capacity_constraint(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print("Ablation A2: capacity-constraint proportion sweep (trace #7)")
    print(
        format_table(
            ["capacity_factor", "locality", "balance", "3hop_latency_ms", "ipc_ms"],
            rows,
        )
    )
    tightest = rows[0]
    loosest = rows[-1]
    # Loosening the constraint must not reduce locality, and tightening it
    # must not worsen balance — the two ends of the paper's trade-off.
    assert loosest[1] >= tightest[1]
    assert tightest[2] <= loosest[2] + 1e-9
