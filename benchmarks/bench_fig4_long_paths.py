"""Experiment E3 — Figure 4(d-f): long path queries on road networks.

The paper evaluates k = 4, 6, 8 only on the road-network traces #1-#3
(the matched-path count stays bounded there), and reports Moctopus
outperforming RedisGraph by 6.00x-9.71x.  The shape assertion is that
Moctopus keeps a clear advantage on every road trace at every long k.
"""

from __future__ import annotations

import pytest
from conftest import bench_batch_size, bench_traces

from repro.bench import format_table, geometric_mean, run_khop_experiment

ROAD_TRACES = (1, 2, 3)


def _road_traces():
    selected = [trace for trace in ROAD_TRACES if trace in bench_traces()]
    return selected or list(ROAD_TRACES)


def _run(provider, hops):
    return run_khop_experiment(
        _road_traces(), hops=hops, batch_size=bench_batch_size(), provider=provider
    )


@pytest.mark.parametrize("hops", [4, 6, 8])
def test_fig4_long_paths_on_road_networks(benchmark, provider, hops):
    rows = benchmark.pedantic(_run, args=(provider, hops), rounds=1, iterations=1)
    print()
    print(f"Figure 4 (long paths): {hops}-hop queries on road networks (ms)")
    print(
        format_table(
            ["trace", "name", "moctopus_ms", "pim_hash_ms", "redisgraph_ms",
             "vs_redisgraph"],
            [
                [row["trace"], row["name"], row["moctopus_ms"], row["pim_hash_ms"],
                 row["redisgraph_ms"], row["speedup_vs_redisgraph"]]
                for row in rows
            ],
        )
    )
    speedups = [row["speedup_vs_redisgraph"] for row in rows]
    assert all(speedup > 1.0 for speedup in speedups), (
        "Moctopus should beat RedisGraph on road networks at every long k"
    )
    print(f"  geomean speedup vs RedisGraph: {geometric_mean(speedups):.2f}x")
