"""Engine-backend benchmark: vectorized vs python wall-clock speedup.

Unlike the figure benchmarks — which report *simulated* latencies — this
experiment measures the **wall-clock** cost of computing those simulated
results, comparing the two execution backends on the Figure 4 k-hop
workload.  Both backends produce bit-identical answers and identical
simulated statistics (asserted per trace), so the only thing that
changes is how fast the reproduction itself runs.

Rows carry the same ``{"trace", "name", ...}`` dict shape as the other
``bench_*`` scripts and flow into the shared pytest-benchmark JSON via
``--benchmark-json``.  The headline assertion: at the default scale the
vectorized backend is at least 3x faster over the whole trace sweep.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import bench_batch_size, bench_traces

from repro.bench import format_table, geometric_mean
from repro.bench.workloads import khop_workload
from repro.graph import dataset_spec

#: Wall-clock rounds per engine; the minimum is reported (noise floor).
TIMING_ROUNDS = 3


def _time_engine(system, engine, query):
    """Best-of-N wall-clock of one backend on one batch query."""
    system.use_engine(engine)
    # One untimed round warms the CSR snapshots / owner caches, exactly
    # as a live query stream would have.
    result, stats = system.batch_khop(query.sources, query.hops, auto_migrate=False)
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        result, stats = system.batch_khop(
            query.sources, query.hops, auto_migrate=False
        )
        best = min(best, time.perf_counter() - start)
    return best, result, stats


def _run(provider, hops, batch_size):
    rows = []
    for trace_id in bench_traces():
        spec = dataset_spec(trace_id)
        systems = provider.get(trace_id)
        moctopus = systems.moctopus
        query = khop_workload(systems.graph, hops=hops, batch_size=batch_size, seed=0)

        # The provider's systems are session-shared with the figure
        # benchmarks; our timing rounds run with auto_migrate=False, so
        # restore the misplacement-report backlog afterwards or the next
        # figure's first query would apply migrations seeded here.
        pending_before = dict(moctopus._migrator._pending)

        python_s, python_result, python_stats = _time_engine(
            moctopus, "python", query
        )
        vectorized_s, vectorized_result, vectorized_stats = _time_engine(
            moctopus, "vectorized", query
        )
        # Restore the configured backend for the other figure benchmarks
        # sharing this provider session.
        moctopus.use_engine(moctopus.config.engine)
        moctopus._migrator._pending.clear()
        moctopus._migrator._pending.update(pending_before)

        if python_result != vectorized_result:
            raise AssertionError(
                f"trace #{trace_id}: engines disagree on results"
            )
        if python_stats.breakdown() != vectorized_stats.breakdown():
            raise AssertionError(
                f"trace #{trace_id}: engines disagree on simulated stats"
            )

        rows.append(
            {
                "trace": f"#{trace_id}",
                "name": spec.name,
                "hops": hops,
                "python_wall_ms": python_s * 1e3,
                "vectorized_wall_ms": vectorized_s * 1e3,
                "speedup": python_s / vectorized_s,
                "matches": python_result.total_matches,
            }
        )
    return rows


@pytest.mark.parametrize("hops", [3])
def test_engine_backend_speedup(benchmark, provider, hops):
    batch_size = bench_batch_size()
    rows = benchmark.pedantic(
        _run, args=(provider, hops, batch_size), rounds=1, iterations=1
    )

    print()
    print(f"Engine backends: wall-clock of {hops}-hop batches (ms)")
    print(
        format_table(
            ["trace", "name", "python_wall_ms", "vectorized_wall_ms",
             "speedup", "matches"],
            [
                [row["trace"], row["name"], row["python_wall_ms"],
                 row["vectorized_wall_ms"], row["speedup"], row["matches"]]
                for row in rows
            ],
        )
    )

    total_python = sum(row["python_wall_ms"] for row in rows)
    total_vectorized = sum(row["vectorized_wall_ms"] for row in rows)
    overall = total_python / total_vectorized
    print(
        f"  overall speedup: {overall:.2f}x  "
        f"(geomean per trace: {geometric_mean([r['speedup'] for r in rows]):.2f}x)"
    )
    if len(rows) >= 10 and not os.environ.get("REPRO_BENCH_LAX"):
        # The acceptance bar only applies to the full default sweep;
        # restricted smoke runs (REPRO_BENCH_TRACES) just report, and
        # REPRO_BENCH_LAX=1 opts out on slow/loaded machines where a
        # wall-clock ratio is not a code property.
        assert overall >= 3.0, (
            "vectorized backend should be at least 3x faster wall-clock "
            f"on the fig-4 workload, got {overall:.2f}x "
            "(set REPRO_BENCH_LAX=1 to report without asserting)"
        )
