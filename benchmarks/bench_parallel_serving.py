"""Parallel-serving benchmark: worker-pool scatter vs one-process drain.

The serving layer already coalesces concurrent single-source queries
into engine batches (``bench_concurrent_serving.py``); this benchmark
measures the *next* multiplier — executing those coalesced batches on
real cores instead of time-slicing one GIL.  The workload is the fig-4
style sweep (mixed hop counts over a random graph, many pipelined
clients) driven through two schedulers on the same system:

``in-process``
    the single-process :class:`~repro.serve.scheduler.BatchScheduler`:
    every window's hop-groups execute sequentially on the drain thread;
``parallel``
    ``system.serve(parallel=N)``: the same scheduler scatters each
    window's hop-groups across ``N`` worker processes attached
    zero-copy to shared-memory epoch exports, and gathers in
    submission order.

Both phases must produce identical answers (the differential suite in
``tests/test_parallel_serving.py`` additionally proves bit-identical
statistics and epoch stamps).  The headline gate is ``parallel``
throughput >= 2x ``in-process`` at 4 workers — enforced when the host
actually grants >= 4 usable cores (the CI runner configuration); hosts
with fewer cores run the same workload as a correctness smoke and
record the measured speedup without asserting a bar multi-core hardware
is needed to reach.

Run styles::

    python -m pytest benchmarks/bench_parallel_serving.py -q -s   # smoke
    python benchmarks/bench_parallel_serving.py                   # table
    python benchmarks/bench_parallel_serving.py --json BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Set, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench import format_table  # noqa: E402
from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import random_graph  # noqa: E402
from repro.pim import CostModel  # noqa: E402

#: Throughput multiplier the parallel phase must show at ``WORKERS``
#: workers (CI overrides via the environment).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "2.0"))

#: Worker processes of the parallel phase (the acceptance bar's 4).
WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))

NUM_CLIENTS = 8
#: The fig-4 hop sweep: each depth is measured as its own phase pair
#: (like the paper's per-``k`` bars) and the headline speedup is the
#: geometric mean across depths.  Depths start at 2 so a coalesced
#: batch carries enough traversal work to amortize the scatter/gather
#: IPC (a 1-hop batch is sub-millisecond).
HOP_SWEEP = (2, 3, 4)
PIPELINE_DEPTH = 8


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sizes() -> Tuple[int, int, int]:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    per_client = int(os.environ.get("REPRO_BENCH_PARALLEL_QUERIES", "16"))
    return int(8000 * scale), int(48000 * scale), per_client


def _build_system(num_nodes: int, num_edges: int) -> Moctopus:
    # The scalar engine spends its time in Python bytecode — exactly the
    # workload the GIL serializes and worker processes parallelize.
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=16),
        engine="python",
    )
    system = Moctopus.from_graph(
        random_graph(num_nodes, num_edges, seed=13), config
    )
    # Prime CSR bases / owner capture outside the timed region.
    system.batch_khop(list(range(64)), 2, auto_migrate=False)
    return system


def _client_sources(
    client: int, per_client: int, num_nodes: int
) -> List[int]:
    return [
        (client * 7919 + index * 104729) % num_nodes
        for index in range(per_client)
    ]


def _run_phase(
    system: Moctopus,
    per_client: int,
    num_nodes: int,
    hops: int,
    parallel: int,
) -> Tuple[float, Dict[Tuple[int, int], Set[int]], int]:
    """Drive the pipelined clients through one scheduler configuration."""
    answers: Dict[Tuple[int, int], Set[int]] = {}
    answers_lock = threading.Lock()
    with system.serve(parallel=parallel) as scheduler:
        # Warm the lazy machinery outside the timed region: epoch
        # export + worker attach + per-process engine construction for
        # the pool, engine construction for the in-process path.
        scheduler.query(0, hops)

        def client(client_id: int) -> None:
            pending: List[Tuple[Tuple[int, int], object]] = []
            for index, source in enumerate(
                _client_sources(client_id, per_client, num_nodes)
            ):
                key = (client_id, index)
                pending.append((key, scheduler.submit(source, hops)))
                if len(pending) >= PIPELINE_DEPTH:
                    done_key, future = pending.pop(0)
                    # Wait *outside* the lock: one straggler batch must
                    # not serialize the other seven clients' pipelines.
                    value = future.result(120)
                    with answers_lock:
                        answers[done_key] = value
            for done_key, future in pending:
                value = future.result(120)
                with answers_lock:
                    answers[done_key] = value

        threads = [
            threading.Thread(target=client, args=(client_id,))
            for client_id in range(NUM_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        batches = scheduler.batches_executed
    return elapsed, answers, batches


def _geomean(values: List[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def run_sweep(verbose: bool = True) -> Dict[str, object]:
    num_nodes, num_edges, per_client = _sizes()
    total_queries = NUM_CLIENTS * per_client
    cpus = usable_cpus()
    system = _build_system(num_nodes, num_edges)

    rows = []
    per_hop: List[Dict[str, object]] = []
    speedups: List[float] = []
    for hops in HOP_SWEEP:
        baseline_seconds, baseline_answers, baseline_batches = _run_phase(
            system, per_client, num_nodes, hops, parallel=0
        )
        parallel_seconds, parallel_answers, parallel_batches = _run_phase(
            system, per_client, num_nodes, hops, parallel=WORKERS
        )
        if parallel_answers != baseline_answers:
            raise AssertionError(
                f"parallel serving changed {hops}-hop query answers"
            )
        speedup = baseline_seconds / parallel_seconds
        speedups.append(speedup)
        per_hop.append(
            {
                "hops": hops,
                "in_process_seconds": baseline_seconds,
                "parallel_seconds": parallel_seconds,
                "in_process_batches": baseline_batches,
                "parallel_batches": parallel_batches,
                "speedup": speedup,
            }
        )
        rows.append(
            (
                f"k={hops}",
                f"{baseline_seconds * 1000:.1f}",
                f"{parallel_seconds * 1000:.1f}",
                f"{total_queries / baseline_seconds:.0f}",
                f"{total_queries / parallel_seconds:.0f}",
                f"{speedup:.2f}x",
            )
        )

    overall = _geomean(speedups)
    gate_enforced = cpus >= max(2, WORKERS)
    if verbose:
        print()
        print(
            f"parallel serving (fig-4 sweep): {num_nodes} nodes / "
            f"{num_edges} edges, {NUM_CLIENTS} clients x {per_client} "
            f"queries per depth, {WORKERS} workers, {cpus} usable cpu(s)"
        )
        print(
            format_table(
                [
                    "depth",
                    "in-proc (ms)",
                    f"x{WORKERS} (ms)",
                    "in-proc q/s",
                    f"x{WORKERS} q/s",
                    "speedup",
                ],
                rows,
            )
        )
        gate_note = (
            f"(required >= {MIN_SPEEDUP:.1f}x)"
            if gate_enforced
            else f"(gate skipped: {cpus} < {max(2, WORKERS)} usable cpus)"
        )
        print(
            f"geometric-mean parallel speedup: {overall:.2f}x {gate_note}"
        )
    return {
        "workload": {
            "nodes": num_nodes,
            "edges": num_edges,
            "clients": NUM_CLIENTS,
            "queries_per_client": per_client,
            "hop_sweep": list(HOP_SWEEP),
            "workers": WORKERS,
        },
        "usable_cpus": cpus,
        "per_hop": per_hop,
        "throughput_speedup": overall,
        "min_speedup_required": MIN_SPEEDUP,
        "gate_enforced": gate_enforced,
    }


def test_parallel_serving_speedup():
    """Headline: 4 worker processes >= 2x in-process scheduler throughput
    (enforced on hosts granting enough cores; correctness always)."""
    report = run_sweep(verbose=True)
    if not report["gate_enforced"]:
        import pytest

        pytest.skip(
            f"only {report['usable_cpus']} usable cpu(s): throughput gate "
            "needs multi-core hardware; answers were still verified"
        )
    assert report["throughput_speedup"] >= MIN_SPEEDUP, (
        f"parallel serving {report['throughput_speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x bar"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the report as JSON to PATH"
    )
    args = parser.parse_args()
    report = run_sweep(verbose=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    if (
        report["gate_enforced"]
        and report["throughput_speedup"] < MIN_SPEEDUP
    ):
        print(
            f"FAIL: speedup {report['throughput_speedup']:.2f}x below "
            f"{MIN_SPEEDUP:.1f}x",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
