"""Planner-cache benchmark: epoch-keyed plan/result caching wall-clock.

Serving workloads repeat themselves: a handful of hot path expressions
account for most of the traffic.  This benchmark replays a Zipfian
query mix over a pinned epoch twice per engine — once on a system with
the planner's epoch-keyed plan cache and LRU result cache enabled (the
default configuration) and once with both caches disabled (the
pre-planner behaviour) — and gates on the wall-clock speedup.

Correctness is asserted per issue, not sampled: every cached answer
must equal the uncached system's answer (results *and* the simulated
statistics breakdown), which exercises the deep-copy discipline of the
result cache — a cached hit returns a private copy that is bit-identical
to a fresh execution.

The acceptance gate: geometric-mean speedup across the three engines of
at least ``MIN_SPEEDUP`` (default 2.0x).

Run styles::

    python -m pytest benchmarks/bench_planner.py -q -s   # smoke
    python benchmarks/bench_planner.py                   # table
    python benchmarks/bench_planner.py --json BENCH_planner.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench import format_table, geometric_mean  # noqa: E402
from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import DiGraph, random_graph  # noqa: E402
from repro.pim import CostModel  # noqa: E402
from repro.rpq import RPQuery, random_source_batch  # noqa: E402

ENGINES = ("python", "vectorized", "matrix")

#: Wall-clock geomean speedup (across engines) the cached configuration
#: must show over the cache-disabled configuration on the Zipfian mix.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PLANNER_SPEEDUP", "2.0"))

#: Timed rounds per (engine, configuration); the minimum is reported.
TIMING_ROUNDS = 3

#: Distinct hot path expressions in the mix (fixed-length chains, rare
#: suffixes the planner may flip to reverse, and Kleene plans).
EXPRESSIONS: List[str] = [
    "a", "b", "a/b", "b/a", "a/c", "_/c", "(a|b)/c", "a/a",
    ".{2}", "a/b/c", "(a|b)/a", "c", "a/b/a", "b/c", "a+", "(a/a)*",
]

#: Zipf skew of the query mix (s > 1: a few queries dominate).
ZIPF_S = 1.1

#: Total query issues replayed per configuration.
NUM_ISSUES = 200


def _sizes() -> Tuple[int, int]:
    """(nodes, edges) honoring the shared ``REPRO_BENCH_SCALE`` knob."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return int(1500 * scale), int(12000 * scale)


def build_graph(seed: int = 9) -> Tuple[DiGraph, Dict[int, str]]:
    """A labeled random graph with a deliberately rare ``c`` label."""
    num_nodes, num_edges = _sizes()
    base = random_graph(num_nodes, num_edges, seed=seed)
    rng = random.Random(seed)
    graph = DiGraph()
    for src, dst in base.edges():
        # 12:8:1 skew — "c" is the rare accepting side reverse plans win on.
        roll = rng.randrange(21)
        graph.add_edge(src, dst, label=1 if roll < 12 else (2 if roll < 20 else 3))
    return graph, {1: "a", 2: "b", 3: "c"}


def build_system(
    graph: DiGraph, labels: Dict[int, str], engine: str, cached: bool
) -> Moctopus:
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=4),
        engine=engine,
        plan_cache_size=128 if cached else 0,
        result_cache_size=256 if cached else 0,
    )
    return Moctopus.from_graph(graph, config, label_names=labels)


def build_mix(graph: DiGraph, seed: int = 31) -> List[RPQuery]:
    """The Zipfian issue sequence: repeat-heavy over distinct queries."""
    nodes = list(graph.nodes())
    distinct = [
        RPQuery(
            expression,
            random_source_batch(nodes, 16, seed=rank * 13 + 5),
        )
        for rank, expression in enumerate(EXPRESSIONS)
    ]
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(distinct))]
    rng = random.Random(seed)
    return rng.choices(distinct, weights=weights, k=NUM_ISSUES)


def _replay(session, mix: List[RPQuery]):
    """Execute the full mix; returns per-issue (result, stats) pairs."""
    return [session.execute(query) for query in mix]


def _time_replay(session, mix: List[RPQuery]) -> Tuple[float, list]:
    outcomes = _replay(session, mix)  # warm round (populates caches)
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        outcomes = _replay(session, mix)
        best = min(best, time.perf_counter() - start)
    return best, outcomes


def run_sweep(verbose: bool = True) -> Dict[str, object]:
    graph, labels = build_graph()
    mix = build_mix(graph)
    distinct_issued = len({id(query) for query in mix})

    rows = []
    for engine in ENGINES:
        cached_system = build_system(graph, labels, engine, cached=True)
        uncached_system = build_system(graph, labels, engine, cached=False)
        with cached_system.begin() as cached_session, \
                uncached_system.begin() as uncached_session:
            cached_s, cached_outcomes = _time_replay(cached_session, mix)
            uncached_s, uncached_outcomes = _time_replay(
                uncached_session, mix
            )
        for index, (cached_outcome, uncached_outcome) in enumerate(
            zip(cached_outcomes, uncached_outcomes)
        ):
            cached_result, cached_stats = cached_outcome
            uncached_result, uncached_stats = uncached_outcome
            if cached_result != uncached_result:
                raise AssertionError(
                    f"{engine}: cached result diverges on issue {index} "
                    f"({mix[index].expression!r})"
                )
            if cached_stats.breakdown() != uncached_stats.breakdown():
                raise AssertionError(
                    f"{engine}: cached stats diverge on issue {index} "
                    f"({mix[index].expression!r})"
                )
        cache_counters = dict(
            cached_system._query_processor.cache_stats.counters
        )
        rows.append(
            {
                "engine": engine,
                "uncached_wall_ms": uncached_s * 1e3,
                "cached_wall_ms": cached_s * 1e3,
                "speedup": uncached_s / cached_s,
                "result_cache_hits": cache_counters.get(
                    "result_cache_hits", 0
                ),
                "plan_cache_hits": cache_counters.get("plan_cache_hits", 0),
            }
        )

    geomean = geometric_mean([row["speedup"] for row in rows])
    if verbose:
        num_nodes, num_edges = _sizes()
        print()
        print(
            f"planner caches vs uncached: {num_nodes} nodes / {num_edges} "
            f"edges, {NUM_ISSUES} Zipfian issues over {distinct_issued} "
            f"distinct queries (wall-clock ms, best of {TIMING_ROUNDS})"
        )
        header = [
            "engine", "uncached_ms", "cached_ms", "speedup",
            "result_hits", "plan_hits",
        ]
        print(
            format_table(
                header,
                [
                    [
                        row["engine"],
                        f"{row['uncached_wall_ms']:.2f}",
                        f"{row['cached_wall_ms']:.2f}",
                        f"{row['speedup']:.2f}x",
                        row["result_cache_hits"],
                        row["plan_cache_hits"],
                    ]
                    for row in rows
                ],
            )
        )
        print(
            f"  geomean speedup: {geomean:.2f}x "
            f"(required >= {MIN_SPEEDUP:.1f}x)"
        )
    return {
        "workload": dict(zip(("nodes", "edges"), _sizes())),
        "num_issues": NUM_ISSUES,
        "distinct_queries": distinct_issued,
        "zipf_s": ZIPF_S,
        "engines": rows,
        "geomean_speedup": geomean,
        "min_speedup_required": MIN_SPEEDUP,
    }


def test_planner_cache_speedup():
    """Headline: caches >= 2x on a repeat-heavy serving mix, bit-identical."""
    report = run_sweep(verbose=True)
    if os.environ.get("REPRO_BENCH_LAX"):
        return  # report-only on slow/loaded machines
    assert report["geomean_speedup"] >= MIN_SPEEDUP, (
        "planner caches are only "
        f"{report['geomean_speedup']:.2f}x faster than the uncached path "
        f"on the Zipfian mix (required {MIN_SPEEDUP:.1f}x; set "
        "REPRO_BENCH_LAX=1 to report without asserting)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the timing report as JSON (CI perf-trajectory artifact)",
    )
    args = parser.parse_args()
    report = run_sweep(verbose=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if not os.environ.get("REPRO_BENCH_LAX"):
        if report["geomean_speedup"] < MIN_SPEEDUP:
            print("FAIL: speedup below required minimum", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
