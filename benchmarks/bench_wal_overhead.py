"""WAL overhead benchmark: what durability costs on the update path.

The write-ahead log sits directly on the update hot path — every
``apply_updates`` call appends (and flushes) one framed record before a
single byte of state mutates.  This benchmark replays one deterministic
mixed update/query trace twice, durability off and durability on
(including periodic background-triggerable checkpoints taken
synchronously so the measurement is deterministic), and reports:

* update-path wall-clock for both configurations and the relative
  **overhead**, gated at < 30 % (``REPRO_BENCH_MAX_WAL_OVERHEAD``);
* the recovery wall-clock of the durable run's directory and the size
  of the log + newest checkpoint on disk;
* a bit-identity cross-check — both runs (and the recovered system)
  must hold array-identical CSR snapshots, or the timing comparison is
  meaningless.

Run styles::

    python -m pytest benchmarks/bench_wal_overhead.py -q -s   # smoke + gate
    python benchmarks/bench_wal_overhead.py                   # table
    python benchmarks/bench_wal_overhead.py --json BENCH_durability.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core import Moctopus, MoctopusConfig  # noqa: E402
from repro.graph import power_law_graph  # noqa: E402
from repro.graph.stream import UpdateStream  # noqa: E402
from repro.pim import CostModel  # noqa: E402

#: Maximum tolerated relative slowdown of the update path with the WAL
#: on (0.30 = 30 %).  Hosted CI runners share noisy disks; override via
#: the environment when a runner needs more headroom.
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_WAL_OVERHEAD", "0.30"))
NUM_MODULES = int(os.environ.get("REPRO_BENCH_WAL_MODULES", "8"))
NUM_ROUNDS = int(os.environ.get("REPRO_BENCH_WAL_ROUNDS", "40"))
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH", "96"))
#: Repeat the whole timed comparison and keep the *best* ratio — the
#: standard small-benchmark defence against one-off scheduler noise.
REPEATS = int(os.environ.get("REPRO_BENCH_WAL_REPEATS", "3"))


def _build_trace(seed: int = 13) -> Tuple[object, List]:
    graph = power_law_graph(
        num_nodes=1200, edges_per_node=4, skew=0.8, seed=seed
    )
    stream = UpdateStream(graph, seed=seed + 1)
    trace = []
    for round_index in range(NUM_ROUNDS):
        trace.append(("update", stream.mixed_batch(BATCH_SIZE)))
        if round_index % 8 == 7:
            trace.append(("query", list(range(0, 24)), 2))
    return graph, trace


def _run(
    graph, trace, durability_dir: Optional[str]
) -> Tuple[Moctopus, float]:
    config = MoctopusConfig(
        cost_model=CostModel(num_modules=NUM_MODULES),
        engine="vectorized",
        durability_dir=durability_dir,
        # Checkpoint cadence is driven synchronously below so wall-clock
        # measures the same work every repeat.
        checkpoint_interval_batches=0,
    )
    system = Moctopus.from_graph(graph, config=config)
    start = time.perf_counter()
    updates = 0
    for step in trace:
        if step[0] == "update":
            system.apply_updates(step[1])
            updates += 1
            if durability_dir is not None and updates % 16 == 0:
                system.checkpoint()
        else:
            system.batch_khop(step[1], step[2], auto_migrate=False)
    elapsed = time.perf_counter() - start
    return system, elapsed


def _snapshots_identical(left: Moctopus, right: Moctopus) -> bool:
    pairs = zip(
        list(left._module_storages) + [left._host_storage],
        list(right._module_storages) + [right._host_storage],
    )
    return all(a.to_csr().same_arrays(b.to_csr()) for a, b in pairs)


def _dir_bytes(path: str) -> int:
    total = 0
    for root, _, files in os.walk(path):
        total += sum(os.path.getsize(os.path.join(root, name)) for name in files)
    return total


def run_benchmark(verbose: bool = True) -> Dict[str, object]:
    """One full comparison; returns the report dictionary."""
    graph, trace = _build_trace()
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, REPEATS)):
        workdir = tempfile.mkdtemp(prefix="moctopus-wal-bench-")
        try:
            baseline, baseline_time = _run(graph, trace, None)
            durable, durable_time = _run(graph, trace, workdir)
            if not _snapshots_identical(baseline, durable):
                raise AssertionError(
                    "durable and baseline runs diverged; timing is void"
                )
            durable.close()

            recovery_start = time.perf_counter()
            recovered = Moctopus.recover(workdir)
            recovery_time = time.perf_counter() - recovery_start
            if not _snapshots_identical(recovered, baseline):
                raise AssertionError("recovered system diverged from baseline")
            recovered.close()

            overhead = durable_time / baseline_time - 1.0
            report = {
                "baseline_seconds": baseline_time,
                "durable_seconds": durable_time,
                "overhead": overhead,
                "recovery_seconds": recovery_time,
                "wal_bytes": _dir_bytes(os.path.join(workdir, "wal")),
                "checkpoint_bytes": _dir_bytes(
                    os.path.join(workdir, "checkpoints")
                ),
                "rounds": NUM_ROUNDS,
                "batch_size": BATCH_SIZE,
                "max_overhead": MAX_OVERHEAD,
            }
            if best is None or report["overhead"] < best["overhead"]:
                best = report
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    assert best is not None
    if verbose:
        print(
            f"update path: baseline {best['baseline_seconds'] * 1e3:8.1f} ms   "
            f"WAL+checkpoints {best['durable_seconds'] * 1e3:8.1f} ms   "
            f"overhead {best['overhead'] * 100:5.1f}%  "
            f"(gate < {MAX_OVERHEAD * 100:.0f}%)"
        )
        print(
            f"recovery: {best['recovery_seconds'] * 1e3:8.1f} ms for "
            f"{best['wal_bytes']} WAL bytes + "
            f"{best['checkpoint_bytes']} checkpoint bytes"
        )
    return best


def test_wal_overhead_within_gate():
    """CI gate: durability costs < 30 % update throughput (best of N)."""
    report = run_benchmark(verbose=True)
    assert report["overhead"] < MAX_OVERHEAD, (
        f"WAL overhead {report['overhead'] * 100:.1f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% gate"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the report as JSON to PATH"
    )
    args = parser.parse_args()
    report = run_benchmark(verbose=True)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if report["overhead"] >= MAX_OVERHEAD:
        print(
            f"FAIL: overhead {report['overhead'] * 100:.1f}% >= "
            f"{MAX_OVERHEAD * 100:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
