"""Shared fixtures and configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index).  Knobs:

``REPRO_BENCH_SCALE``
    Multiplier on the synthetic dataset sizes (default ``1.0``).  Raising
    it increases fidelity at the cost of runtime.
``REPRO_BENCH_BATCH``
    Batch size of the k-hop / update workloads (default 128, the paper's
    64 K scaled down).
``REPRO_BENCH_TRACES``
    Comma-separated trace ids to restrict the sweep (default: all 15).
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import (  # noqa: E402
    DEFAULT_BATCH_SIZE,
    SystemProvider,
    scaled_cost_model,
)


def bench_scale() -> float:
    """Dataset scale multiplier for this benchmark session."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_batch_size() -> int:
    """Workload batch size for this benchmark session."""
    return int(os.environ.get("REPRO_BENCH_BATCH", str(DEFAULT_BATCH_SIZE)))


def bench_traces() -> list:
    """Trace ids included in this benchmark session."""
    raw = os.environ.get("REPRO_BENCH_TRACES", "")
    if raw.strip():
        return [int(token) for token in raw.split(",") if token.strip()]
    return list(range(1, 16))


@pytest.fixture(scope="session")
def provider() -> SystemProvider:
    """One cached set of loaded systems per trace, shared by all figures."""
    return SystemProvider(
        scale=bench_scale(),
        cost_model=scaled_cost_model(),
        warmup_rounds=2,
    )


@pytest.fixture(scope="session")
def traces() -> list:
    """Trace ids under benchmark."""
    return bench_traces()


@pytest.fixture(scope="session")
def batch_size() -> int:
    """Workload batch size."""
    return bench_batch_size()
