"""The physical execution layer: swappable batch-RPQ backends.

This package separates *what* a query does from *how* it runs:

* :mod:`repro.engine.physical` — the :class:`PhysicalPlan` operator
  vocabulary (dispatch / expand / route / reduce) lowered from the
  logical planner's matrix plans;
* :mod:`repro.engine.base` — the :class:`ExecutionEngine` protocol, the
  :class:`EngineRuntime` wiring bundle and the backend factory;
* :mod:`repro.engine.python_engine` — the scalar reference backend
  (exact original semantics);
* :mod:`repro.engine.vectorized` — the numpy backend expanding columnar
  frontiers against CSR storage snapshots (push-style gathers);
* :mod:`repro.engine.matrix_engine` — the semiring-matrix backend
  executing plans as masked boolean SpGEMM over pre-transposed CSR
  blocks, with a dense-vs-sparse crossover back to the push path.

Backends are interchangeable by contract: identical results *and*
identical simulated work counters, so ``MoctopusConfig.engine`` can flip
between them without perturbing any figure of the reproduction.
"""

from repro.engine.base import (
    ENGINE_NAMES,
    EngineRuntime,
    ExecutionEngine,
    Frontier,
    create_engine,
)
from repro.engine.physical import (
    DispatchOp,
    ExpandOp,
    FixpointOp,
    PhysicalOp,
    PhysicalPlan,
    ReduceOp,
    RouteOp,
    lower_plan,
    run_plan,
)
from repro.engine.matrix_engine import MatrixEngine
from repro.engine.python_engine import PythonEngine
from repro.engine.vectorized import VectorizedEngine

__all__ = [
    "ENGINE_NAMES",
    "EngineRuntime",
    "ExecutionEngine",
    "Frontier",
    "create_engine",
    "PhysicalPlan",
    "PhysicalOp",
    "DispatchOp",
    "ExpandOp",
    "RouteOp",
    "FixpointOp",
    "ReduceOp",
    "lower_plan",
    "run_plan",
    "MatrixEngine",
    "PythonEngine",
    "VectorizedEngine",
]
