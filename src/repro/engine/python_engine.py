"""The scalar execution backend (exact reference semantics).

This engine is the original ``QueryProcessor._execute`` hot path moved
behind the :class:`~repro.engine.base.ExecutionEngine` protocol: dict
frontiers, per-node expansion through each module's
:class:`~repro.core.operator_processor.OperatorProcessor`, and per-item
routing.  It is deliberately straightforward — the vectorized backend is
validated against it item for item — with one normalisation: frontier
partitions are always visited in sorted order (host first, then modules
ascending), so the phase-level communication accounting is independent
of dict insertion history and both backends see the same producer order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.operators import BYTES_PER_FRONTIER_ITEM
from repro.engine.accounting import charge_dispatch, charge_reduce
from repro.engine.base import EngineRuntime, Frontier, PlanView
from repro.engine.physical import PhysicalPlan, invert_reverse_results, run_plan
from repro.partition.base import HOST_PARTITION
from repro.pim.stats import ExecutionStats
from repro.pim.system import OperationContext
from repro.rpq.automaton import DFA
from repro.rpq.query import BatchResult, Context, ContextSet


class PythonEngine:
    """Executes physical plans with pure-Python dict/set frontiers."""

    name = "python"

    def __init__(self, runtime: EngineRuntime) -> None:
        self._runtime = runtime
        #: Epoch-pinned state substitute for the current ``execute`` call
        #: (``None`` = live storages).  See :class:`PlanView`.
        self._view: Optional[PlanView] = None
        #: Expansion direction of the current ``execute`` call; reverse
        #: plans resolve rows and owners against the epoch's reversed
        #: adjacency index instead of the forward snapshots.
        self._direction: str = "forward"

    def _owner(self, node: int) -> Optional[int]:
        """Owner of ``node`` — frozen epoch table when pinned, else live."""
        if self._view is not None:
            if self._direction == "reverse":
                return self._view.reverse_owner(node)
            return self._view.owner(node)
        return self._runtime.owner(node)

    def _view_snapshot(self, partition: int):
        """The pinned snapshot to expand against (direction-aware)."""
        view = self._view
        assert view is not None
        if self._direction == "reverse":
            return view.reverse_snapshot_of(partition)
        return view.snapshot_of(partition)

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PhysicalPlan,
        sources: List[int],
        view: Optional[PlanView] = None,
    ) -> Tuple[BatchResult, ExecutionStats]:
        runtime = self._runtime
        reverse = plan.direction == "reverse"
        if reverse and (view is None or plan.reverse is None):
            raise ValueError(
                "reverse plans require a pinned view and reverse seeds"
            )
        #: Reverse plans expand the reversed-expression DFA from the
        #: candidate end nodes; the forward answer is recovered by
        #: inverting the matches after the plan drains.
        run_sources = list(plan.reverse.seeds) if reverse else sources
        self._view = view
        self._direction = plan.direction
        op = (view.pim if view is not None else runtime.pim).begin_operation()
        dfa = plan.dfa
        accumulate = plan.accumulate_results
        results: List[Set[int]] = [set() for _ in run_sources]
        state: Dict[str, Frontier] = {"frontier": {}}
        seen: Set[Tuple[int, Context]] = set()

        def dispatch() -> None:
            frontier, skipped = self._build_initial_frontier(
                run_sources, dfa, results, accumulate
            )
            state["frontier"] = frontier
            with op.phase("dispatch"):
                self._charge_dispatch(op, frontier)
            op.add_counter("batch_size", len(run_sources))
            op.add_counter("unknown_sources", skipped)
            if accumulate:
                for partition_frontier in frontier.values():
                    for node, contexts in partition_frontier.items():
                        for context in contexts:
                            seen.add((node, context))

        def expand_route(phase_name: str) -> bool:
            state["frontier"] = self._run_expansion_phase(
                op, state["frontier"], dfa, results, accumulate, seen,
                phase_name=phase_name,
            )
            return bool(state["frontier"])

        def clear_frontier() -> None:
            state["frontier"] = {}

        def reduce() -> None:
            self._run_reduce_phase(op, state["frontier"], results, accumulate, dfa)

        try:
            run_plan(
                plan,
                dispatch=dispatch,
                expand_route=expand_route,
                clear_frontier=clear_frontier,
                reduce=reduce,
            )
        finally:
            # Never let a pinned epoch outlive the call through engine
            # scratch state.
            self._view = None
            self._direction = "forward"

        if reverse:
            results = invert_reverse_results(
                sources, plan.reverse.seeds, results
            )
        stats = op.finish()
        stats.add_counter(
            "results", sum(len(destinations) for destinations in results)
        )
        return BatchResult(sources=list(sources), destinations=results), stats

    # ------------------------------------------------------------------
    # Frontier construction and dispatch
    # ------------------------------------------------------------------
    def _build_initial_frontier(
        self,
        sources: List[int],
        dfa: Optional[DFA],
        results: List[Set[int]],
        accumulate: bool,
    ) -> Tuple[Frontier, int]:
        frontier: Frontier = {}
        skipped = 0
        for row, source in enumerate(sources):
            owner = self._owner(source)
            if owner is None:
                skipped += 1
                continue
            context: Context
            if dfa is None:
                context = row
            else:
                context = (row, dfa.start)
                if accumulate and dfa.is_accepting(dfa.start):
                    results[row].add(source)
            frontier.setdefault(owner, {}).setdefault(source, set()).add(context)
        return frontier, skipped

    def _charge_dispatch(self, op: OperationContext, frontier: Frontier) -> None:
        charge_dispatch(
            op,
            {
                partition: sum(
                    len(contexts) for contexts in partition_frontier.values()
                )
                for partition, partition_frontier in frontier.items()
            },
        )

    # ------------------------------------------------------------------
    # Expansion phases
    # ------------------------------------------------------------------
    def _run_expansion_phase(
        self,
        op: OperationContext,
        frontier: Frontier,
        dfa: Optional[DFA],
        results: List[Set[int]],
        accumulate: bool,
        seen: Set[Tuple[int, Context]],
        phase_name: str,
    ) -> Frontier:
        next_frontier: Frontier = {}
        total_cpc_items = 0
        total_ipc_items = 0
        with op.phase(phase_name):
            for partition in sorted(frontier):
                partition_frontier = frontier[partition]
                if partition == HOST_PARTITION:
                    produced = self._expand_on_host(op, partition_frontier, dfa)
                else:
                    produced = self._expand_on_module(op, partition, partition_frontier, dfa)
                cpc_items, ipc_items = self._route_produced(
                    op, partition, produced, next_frontier, results, dfa,
                    accumulate, seen,
                )
                total_cpc_items += cpc_items
                total_ipc_items += ipc_items
            # Frontier hand-offs are rank-level bulk transfers: one batched
            # gather/scatter pair moves every crossing item of the phase, so
            # only the byte volume — controlled by partition locality —
            # depends on how many items crossed.
            if total_cpc_items:
                op.cpc_transfer(
                    total_cpc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
            if total_ipc_items:
                op.ipc_transfer(
                    total_ipc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
        return next_frontier

    def _expand_on_module(
        self,
        op: OperationContext,
        module_id: int,
        partition_frontier: Dict[int, ContextSet],
        dfa: Optional[DFA],
    ) -> Dict[int, ContextSet]:
        runtime = self._runtime
        module = op.module(module_id)
        module.launch_kernel()
        view = self._view
        if view is not None:
            # Pinned execution: expand against the epoch's frozen CSR
            # snapshot (the reversed-adjacency capture for reverse
            # plans) with the same per-row accounting the live
            # OperatorProcessor charges; misplacement detection is off
            # (reports from a stale epoch would misdirect the migrator).
            snapshot = self._view_snapshot(module_id)
            produced, rows_touched, streamed, items = self._expand_rows(
                partition_frontier,
                dfa,
                snapshot.row_entries,
                lambda node, hops: len(hops) * snapshot.bytes_per_entry,
            )
            module.random_accesses(rows_touched)
            module.stream_bytes(streamed)
            module.process_items(items)
            return produced
        processor = runtime.processors[module_id]
        detect = runtime.config.enable_migration
        produced, work = processor.process_smxm(
            partition_frontier,
            dfa=dfa,
            label_names=runtime.label_names,
            detect_misplacement=detect,
        )
        module.random_accesses(work.rows_touched)
        module.stream_bytes(work.bytes_streamed)
        module.process_items(work.items_processed)
        for node, (local, remote) in work.misplacement_reports.items():
            runtime.migrator.report_misplaced(node, local, remote)
        return produced

    def _expand_rows(
        self,
        partition_frontier: Dict[int, ContextSet],
        dfa: Optional[DFA],
        fetch_row,
        row_bytes,
    ) -> Tuple[Dict[int, ContextSet], int, int, int]:
        """The shared per-row expansion loop (OperatorProcessor semantics).

        ``fetch_row(node)`` supplies a row's ``(dst, label)`` entries and
        ``row_bytes(node, entries)`` its streamed bytes — the only two
        things that differ between the live host storage and a pinned
        CSR snapshot.  Keeping one loop keeps the pinned-vs-live and
        cross-engine accounting parity in one place.
        """
        runtime = self._runtime
        produced: Dict[int, ContextSet] = {}
        rows_touched = 0
        streamed = 0
        items = 0
        for node, contexts in partition_frontier.items():
            next_hops = fetch_row(node)
            rows_touched += 1
            streamed += row_bytes(node, next_hops)
            for destination, label in next_hops:
                if dfa is None:
                    items += len(contexts)
                    produced.setdefault(destination, set()).update(contexts)
                else:
                    label_string = runtime.label_names.get(label, str(label))
                    for context in contexts:
                        items += 1
                        row, state = context
                        next_state = dfa.step(state, label_string)
                        if next_state is None:
                            continue
                        produced.setdefault(destination, set()).add((row, next_state))
        return produced, rows_touched, streamed, items

    def _expand_on_host(
        self,
        op: OperationContext,
        partition_frontier: Dict[int, ContextSet],
        dfa: Optional[DFA],
    ) -> Dict[int, ContextSet]:
        runtime = self._runtime
        view = self._view
        if view is not None:
            snapshot = self._view_snapshot(HOST_PARTITION)
            working_set = snapshot.working_set_bytes
            fetch_row = snapshot.row_entries
            row_bytes = lambda node, hops: len(hops) * snapshot.bytes_per_entry  # noqa: E731
        else:
            storage = runtime.host_storage
            working_set = max(storage.total_bytes(), 1)
            fetch_row = storage.next_hops_with_labels
            row_bytes = lambda node, hops: storage.row_bytes(node)  # noqa: E731
        produced, rows_touched, streamed, items = self._expand_rows(
            partition_frontier, dfa, fetch_row, row_bytes
        )
        op.host.random_accesses(rows_touched, working_set)
        op.host.stream_bytes(streamed)
        op.host.process_items(items)
        return produced

    def _route_produced(
        self,
        op: OperationContext,
        producer: int,
        produced: Dict[int, ContextSet],
        next_frontier: Frontier,
        results: List[Set[int]],
        dfa: Optional[DFA],
        accumulate: bool,
        seen: Set[Tuple[int, Context]],
    ) -> Tuple[int, int]:
        cpc_items = 0
        ipc_items: Dict[int, int] = {}
        for destination, contexts in produced.items():
            owner = self._owner(destination)
            if owner is None:
                # Dangling edge: the destination node has never been
                # registered (can happen transiently during updates).
                continue
            for context in contexts:
                if accumulate:
                    key = (destination, context)
                    if key in seen:
                        continue
                    seen.add(key)
                    assert dfa is not None
                    row, state = context
                    if dfa.is_accepting(state):
                        results[row].add(destination)
                next_frontier.setdefault(owner, {}).setdefault(destination, set()).add(context)
                # Communication for handing the item to its owner.
                if owner == producer:
                    continue
                if producer == HOST_PARTITION or owner == HOST_PARTITION:
                    cpc_items += 1
                else:
                    ipc_items[owner] = ipc_items.get(owner, 0) + 1
        return cpc_items, sum(ipc_items.values())

    # ------------------------------------------------------------------
    # Reduction (mwait)
    # ------------------------------------------------------------------
    def _run_reduce_phase(
        self,
        op: OperationContext,
        frontier: Frontier,
        results: List[Set[int]],
        accumulate: bool,
        dfa: Optional[DFA] = None,
    ) -> None:
        with op.phase("mwait"):
            charge_reduce(
                op,
                {
                    partition: sum(
                        len(contexts)
                        for contexts in partition_frontier.values()
                    )
                    for partition, partition_frontier in frontier.items()
                },
            )
            if accumulate:
                # Results were accumulated on the fly; the reduce phase only
                # merges per-module partial sets, already charged above.
                return
            for partition_frontier in frontier.values():
                for node, contexts in partition_frontier.items():
                    for context in contexts:
                        if isinstance(context, int):
                            results[context].add(node)
                            continue
                        row, state = context
                        if dfa is None or dfa.is_accepting(state):
                            results[row].add(node)
