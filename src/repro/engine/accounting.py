"""Shared simulated-cost accounting for the execution backends.

The dispatch and mwait charge formulas are the parity contract between
the engines: every backend must charge exactly these amounts for the
same per-partition item counts, so the formulas live here once instead
of being re-stated per frontier representation.  A backend computes
*how many* frontier items sit on each partition — that part is
representation-specific — and hands the counts to these helpers.
"""

from __future__ import annotations

from typing import Dict

from repro.core.local_storage import BYTES_PER_ENTRY
from repro.core.operators import BYTES_PER_FRONTIER_ITEM, OPERATOR_HEADER_BYTES
from repro.partition.base import HOST_PARTITION
from repro.pim.system import OperationContext


def charge_dispatch(
    op: OperationContext, items_per_partition: Dict[int, int]
) -> None:
    """Charge the dispatch phase for an initial frontier.

    The smxm operators for every module ship in one rank-level batched
    CPC scatter (host-owned sources stay put); the host pays per-item
    packing work for the whole batch.
    """
    total_items = sum(items_per_partition.values())
    dispatched_items = sum(
        items
        for partition, items in items_per_partition.items()
        if partition != HOST_PARTITION
    )
    if dispatched_items:
        op.cpc_transfer(
            OPERATOR_HEADER_BYTES + dispatched_items * BYTES_PER_FRONTIER_ITEM,
            num_transfers=1,
        )
    op.host.process_items(total_items)


def charge_reduce(
    op: OperationContext, items_per_partition: Dict[int, int]
) -> None:
    """Charge the ``mwait`` phase for a final frontier.

    Every module streams out and processes its share of the answer, one
    rank-level batched CPC gather brings the partial results back, and
    the host concatenates them (destination nodes are disjoint across
    owners, so the reduction streams sequentially with no dedup).
    """
    total_items = 0
    gathered_items = 0
    for partition in sorted(items_per_partition):
        items = items_per_partition[partition]
        total_items += items
        if partition != HOST_PARTITION and items:
            gathered_items += items
            op.module(partition).process_items(items)
            op.module(partition).stream_bytes(items * BYTES_PER_ENTRY)
    if gathered_items:
        op.cpc_transfer(
            OPERATOR_HEADER_BYTES + gathered_items * BYTES_PER_FRONTIER_ITEM,
            num_transfers=1,
        )
    op.host.stream_bytes(total_items * BYTES_PER_FRONTIER_ITEM)
    op.host.process_items(total_items)
