"""The vectorized execution backend (columnar frontiers over CSR snapshots).

Where the scalar backend walks dict frontiers node by node, this engine
runs each bulk-synchronous phase as a handful of numpy array operations
against the CSR storage snapshots (:meth:`LocalGraphStorage.to_csr` /
:meth:`HeterogeneousGraphStorage.to_csr`).  Updates and migrations
between queries invalidate those snapshots, so results always reflect
the current graph.  Two frontier representations are used:

**Bit-packed masks (pure k-hop plans).**  A k-hop frontier is exactly
the boolean matrix ``Q`` of the paper's ``ans = Q x Adj x ... x Adj``
plan: bit ``r`` on node ``n`` means query row ``r``'s frontier sits on
``n``.  Each partition's share is ``(nodes, masks)`` — a sorted node
array plus a ``(len(nodes), ceil(R/64))`` word matrix — and one smxm
phase is: gather the adjacency rows of the frontier nodes, sort the
edges by destination, and OR-reduce the source masks per destination
(``np.bitwise_or.reduceat``).  Work scales with *edges touched*, not
with frontier items, which is where the order-of-magnitude wall-clock
win over the scalar engine comes from.

**Packed 64-bit context keys (automaton-guided plans).**  General RPQs
carry ``(row, state)`` contexts, so frontier items are packed as
``key = (node * R + row) * S + state + 1`` (injective below
``2**62 / (R * S)``, far beyond the dense ids this repository
generates).  Deduplication is a sort, already-seen filtering is a
``searchsorted``, and node / row / state are recovered with two
``divmod``\\ s.

The engine is *simulation-faithful*: for every phase it derives the same
work counters (rows touched, bytes streamed, items processed, frontier
items crossing CPC/IPC, misplacement reports) the scalar backend would
have produced, charges them to the same components, and therefore yields
bit-identical :class:`~repro.rpq.query.BatchResult`s and
:class:`~repro.pim.stats.ExecutionStats`.  Only the wall-clock cost of
computing the answer changes — which is the point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.operators import BYTES_PER_FRONTIER_ITEM
from repro.engine.accounting import charge_dispatch, charge_reduce
from repro.engine.base import EngineRuntime
from repro.engine.physical import PhysicalPlan, invert_reverse_results, run_plan
from repro.partition.base import HOST_PARTITION
from repro.partition.owner_index import OwnerIndex
from repro.pim.stats import ExecutionStats
from repro.pim.system import OperationContext
from repro.rpq.automaton import DFA
from repro.rpq.query import BatchResult

#: Owner code of a node the partitioner has never seen (dangling edge).
_UNKNOWN_OWNER = OwnerIndex.UNKNOWN

_EMPTY = np.empty(0, dtype=np.int64)

#: A bit-frontier block: sorted unique node ids plus per-node row masks.
MaskBlock = Tuple[np.ndarray, np.ndarray]


def _unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique values via an explicit sort.

    Always takes the sort-plus-scan route: numpy's values-only
    ``np.unique`` may pick a hash-table algorithm whose constant factors
    are far worse on these heavily-duplicated int64 key arrays.
    """
    if values.size == 0:
        return values
    ordered = np.sort(values)
    mask = np.empty(len(ordered), dtype=bool)
    mask[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=mask[1:])
    return ordered[mask]


def _sorted_unique_counts(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unique values and run lengths of an already-sorted array (no re-sort)."""
    if values.size == 0:
        return _EMPTY, _EMPTY
    mask = np.empty(len(values), dtype=bool)
    mask[0] = True
    np.not_equal(values[1:], values[:-1], out=mask[1:])
    first = np.flatnonzero(mask)
    counts = np.diff(np.append(first, len(values)))
    return values[first], counts


def _run_starts(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """First-occurrence mask and start indices of runs in a sorted array."""
    mask = np.empty(len(values), dtype=bool)
    mask[0] = True
    np.not_equal(values[1:], values[:-1], out=mask[1:])
    return mask, np.flatnonzero(mask)


def _group_into_results(
    rows: np.ndarray, nodes: np.ndarray, results: List[Set[int]]
) -> None:
    """Merge ``(row, node)`` pairs into the per-row result sets.

    Grouping by row and building each chunk with one C-level ``set``
    construction is far cheaper than a Python-level ``add`` per pair.
    """
    if rows.size == 0:
        return
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_nodes = nodes[order]
    unique_rows, counts = _sorted_unique_counts(sorted_rows)
    start = 0
    for row, count in zip(unique_rows.tolist(), counts.tolist()):
        results[row].update(sorted_nodes[start:start + count].tolist())
        start += count


def _row_bit_masks(rows: np.ndarray, num_words: int) -> np.ndarray:
    """One single-bit mask row per entry of ``rows``."""
    masks = np.zeros((len(rows), num_words), dtype=np.uint64)
    masks[np.arange(len(rows)), rows // 64] = np.uint64(1) << (
        (rows % 64).astype(np.uint64)
    )
    return masks


def _popcounts(masks: np.ndarray) -> np.ndarray:
    """Number of set bits per mask row (one frontier item per bit)."""
    return np.bitwise_count(masks).sum(axis=1, dtype=np.int64)


class _DfaStepper:
    """Dense-array view of a :class:`~repro.rpq.automaton.DFA`.

    Transition columns are materialised lazily per distinct integer edge
    label (mapped through ``label_names`` exactly like the scalar path),
    so stepping a whole edge batch is one fancy-indexing gather.
    """

    def __init__(self, dfa: DFA, label_names: Dict[int, str]) -> None:
        self._dfa = dfa
        self._label_names = label_names
        states = {dfa.start} | set(dfa.accepting)
        states.update(dfa.transitions)
        states.update(dfa.default)
        states.update(dfa.default.values())
        for arcs in dfa.transitions.values():
            states.update(arcs.values())
        self.num_slots = max(states) + 1
        self.accepting = np.zeros(self.num_slots, dtype=bool)
        for state in dfa.accepting:
            self.accepting[state] = True
        self._columns: Dict[int, np.ndarray] = {}

    def _column(self, label: int) -> np.ndarray:
        column = self._columns.get(label)
        if column is None:
            label_string = self._label_names.get(label, str(label))
            column = np.fromiter(
                (
                    -1 if (target := self._dfa.step(state, label_string)) is None
                    else target
                    for state in range(self.num_slots)
                ),
                dtype=np.int64,
                count=self.num_slots,
            )
            self._columns[label] = column
        return column

    #: Public accessor: dense transition column of one integer edge label
    #: (``column[state] = next state``, ``-1`` = reject).  The matrix
    #: engine pulls one adjacency block per (label, live state) pair and
    #: needs the same lazily-built columns the push path steps with.
    column = _column

    def step(self, states: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Next state per ``(state, label)`` pair (``-1`` = reject)."""
        unique_labels = _unique(labels)
        inverse = np.searchsorted(unique_labels, labels)
        table = np.stack(
            [self._column(int(label)) for label in unique_labels.tolist()], axis=1
        )
        return table[states, inverse]


class VectorizedEngine:
    """Executes physical plans with columnar frontiers and CSR snapshots."""

    name = "vectorized"

    def __init__(self, runtime: EngineRuntime) -> None:
        self._runtime = runtime
        #: Version-cached vectorized owner lookups over the partition map
        #: (shared implementation with the vectorized update path).
        self._owner_index = OwnerIndex()
        #: Epoch-pinned state substitute for the current ``execute`` call
        #: (``None`` = live storages).  See :class:`~repro.engine.base.PlanView`.
        self._view = None
        #: Expansion direction of the current ``execute`` call; reverse
        #: plans resolve rows and owners against the epoch's reversed
        #: adjacency index instead of the forward snapshots.
        self._direction = "forward"

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PhysicalPlan,
        sources: List[int],
        view=None,
    ) -> Tuple[BatchResult, ExecutionStats]:
        if plan.direction == "reverse" and (
            view is None or plan.reverse is None or plan.dfa is None
        ):
            raise ValueError(
                "reverse plans require a pinned view, reverse seeds and a DFA"
            )
        self._view = view
        self._direction = plan.direction
        try:
            if view is None:
                # Node placement cannot change mid-query (migrations run
                # after the answer is complete), so one refresh covers
                # the whole plan.
                self._owner_index.refresh(self._runtime.partitioner.partition_map)
            if plan.dfa is None:
                return self._execute_bitset(plan, sources)
            return self._execute_keys(plan, sources)
        finally:
            # Never let a pinned epoch outlive the call through engine
            # scratch state.
            self._view = None
            self._direction = "forward"

    def _begin_op(self) -> OperationContext:
        """Open an accounting operation on the live platform, or on the
        pinned view's private platform (concurrent-execution safe)."""
        pim = self._view.pim if self._view is not None else self._runtime.pim
        return pim.begin_operation()

    def _owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Owner partition per node (``_UNKNOWN_OWNER`` when unplaced)."""
        if self._view is not None:
            if self._direction == "reverse":
                return self._view.reverse_owners_of(nodes)
            return self._view.owners_of(nodes)
        return self._owner_index.owners_of(nodes)

    def _snapshot_of(self, partition: int):
        """Adjacency snapshot of ``partition`` — pinned when a view is set
        (the reversed-adjacency capture for reverse plans)."""
        if self._view is not None:
            if self._direction == "reverse":
                return self._view.reverse_snapshot_of(partition)
            return self._view.snapshot_of(partition)
        return self._runtime.snapshot_of(partition)

    # ==================================================================
    # Bit-mask path (pure k-hop plans: contexts are bare query rows)
    # ==================================================================
    def _execute_bitset(
        self, plan: PhysicalPlan, sources: List[int]
    ) -> Tuple[BatchResult, ExecutionStats]:
        op = self._begin_op()
        results: List[Set[int]] = [set() for _ in sources]
        self._num_words = max(1, (len(sources) + 63) // 64)
        self._num_rows = len(sources)

        state: Dict[str, Dict[int, MaskBlock]] = {"frontier": {}}

        def dispatch() -> None:
            frontier, skipped = self._bitset_initial_frontier(sources)
            state["frontier"] = frontier
            with op.phase("dispatch"):
                self._bitset_charge_dispatch(op, frontier)
            op.add_counter("batch_size", len(sources))
            op.add_counter("unknown_sources", skipped)

        def expand_route(phase_name: str) -> bool:
            state["frontier"] = self._bitset_phase(
                op, state["frontier"], phase_name=phase_name
            )
            return bool(state["frontier"])

        def clear_frontier() -> None:
            state["frontier"] = {}

        def reduce() -> None:
            self._bitset_reduce(op, state["frontier"], results)

        run_plan(
            plan,
            dispatch=dispatch,
            expand_route=expand_route,
            clear_frontier=clear_frontier,
            reduce=reduce,
        )

        stats = op.finish()
        stats.add_counter(
            "results", sum(len(destinations) for destinations in results)
        )
        return BatchResult(sources=list(sources), destinations=results), stats

    def _bitset_initial_frontier(
        self, sources: List[int]
    ) -> Tuple[Dict[int, MaskBlock], int]:
        source_nodes = np.asarray(sources, dtype=np.int64)
        source_rows = np.arange(len(sources), dtype=np.int64)
        owners = self._owners_of(source_nodes)
        known = owners != _UNKNOWN_OWNER
        skipped = int(len(sources) - known.sum())
        source_nodes, source_rows, owners = (
            source_nodes[known], source_rows[known], owners[known]
        )
        if source_nodes.size == 0:
            return {}, skipped
        masks = _row_bit_masks(source_rows, self._num_words)
        order = np.lexsort((source_nodes, owners))
        source_nodes, owners, masks = (
            source_nodes[order], owners[order], masks[order]
        )
        frontier: Dict[int, MaskBlock] = {}
        owner_runs, owner_starts = _run_starts(owners)
        stops = np.append(owner_starts[1:], len(owners))
        for owner, start, stop in zip(
            owners[owner_runs].tolist(), owner_starts.tolist(), stops.tolist()
        ):
            nodes_slice = source_nodes[start:stop]
            node_runs, node_starts = _run_starts(nodes_slice)
            frontier[owner] = (
                nodes_slice[node_runs],
                np.bitwise_or.reduceat(masks[start:stop], node_starts, axis=0),
            )
        return frontier, skipped

    def _bitset_charge_dispatch(
        self, op: OperationContext, frontier: Dict[int, MaskBlock]
    ) -> None:
        charge_dispatch(
            op,
            {
                partition: int(_popcounts(masks).sum())
                for partition, (_, masks) in frontier.items()
            },
        )

    def _bitset_phase(
        self,
        op: OperationContext,
        frontier: Dict[int, MaskBlock],
        phase_name: str,
    ) -> Dict[int, MaskBlock]:
        chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        total_cpc_items = 0
        total_ipc_items = 0
        with op.phase(phase_name):
            for partition in sorted(frontier):
                produced = self._bitset_expand(op, partition, frontier[partition])
                if produced is None:
                    continue
                dsts, masks = produced
                # Dangling destinations are dropped before any routing
                # accounting, as in the scalar path.
                owners = self._owners_of(dsts)
                known = owners != _UNKNOWN_OWNER
                if not known.all():
                    dsts, masks, owners = dsts[known], masks[known], owners[known]
                    if dsts.size == 0:
                        continue
                item_counts = _popcounts(masks)
                crossing = owners != partition
                if partition == HOST_PARTITION:
                    total_cpc_items += int(item_counts[crossing].sum())
                else:
                    to_host = crossing & (owners == HOST_PARTITION)
                    total_cpc_items += int(item_counts[to_host].sum())
                    total_ipc_items += int(item_counts[crossing & ~to_host].sum())
                chunks.append((dsts, masks, owners))
            # Same rank-level bulk transfers as the scalar engine: one
            # gather/scatter pair per channel moves every crossing item.
            if total_cpc_items:
                op.cpc_transfer(
                    total_cpc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
            if total_ipc_items:
                op.ipc_transfer(
                    total_ipc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
        return self._bitset_merge(chunks)

    def _bitset_expand(
        self, op: OperationContext, partition: int, block: MaskBlock
    ) -> Optional[MaskBlock]:
        """Expand one partition's bit frontier; return the per-destination
        OR of the source masks (per-producer set semantics for free)."""
        runtime = self._runtime
        nodes, masks = block
        snapshot = self._snapshot_of(partition)

        row_idx = snapshot.lookup(nodes)
        if snapshot.num_rows == 0:
            degrees = np.zeros(len(nodes), dtype=np.int64)
        else:
            present = row_idx >= 0
            degrees = np.where(present, snapshot.degrees[np.maximum(row_idx, 0)], 0)

        rows_touched = len(nodes)
        bytes_streamed = int(degrees.sum()) * snapshot.bytes_per_entry
        contexts_per_node = _popcounts(masks)
        items_processed = int((degrees * contexts_per_node).sum())

        if partition == HOST_PARTITION:
            op.host.random_accesses(rows_touched, snapshot.working_set_bytes)
            op.host.stream_bytes(bytes_streamed)
            op.host.process_items(items_processed)
        else:
            module = op.module(partition)
            module.launch_kernel()
            module.random_accesses(rows_touched)
            module.stream_bytes(bytes_streamed)
            module.process_items(items_processed)
            if runtime.config.enable_migration and self._view is None:
                self._report_misplacement(
                    snapshot, nodes, row_idx, degrees,
                    runtime.processors[partition].misplacement_threshold,
                )

        num_edges = int(degrees.sum())
        if num_edges == 0:
            return None
        return self._bitset_produce(snapshot, masks, row_idx, degrees, num_edges)

    def _bitset_produce(
        self,
        snapshot,
        masks: np.ndarray,
        row_idx: np.ndarray,
        degrees: np.ndarray,
        num_edges: int,
    ) -> MaskBlock:
        """Compute one partition's produced ``(dsts, masks)`` block.

        The production kernel behind :meth:`_bitset_expand`, separated
        from the (shared) work accounting so subclasses can swap the
        frontier math without touching what the simulation measures.
        This implementation is the push-style gather: collect the
        adjacency rows of every frontier node, sort the edges by
        destination, and OR-reduce the source masks per destination.
        """
        node_rep = np.repeat(np.arange(len(row_idx)), degrees)
        starts = snapshot.indptr[np.maximum(row_idx, 0)]
        cumulative = np.cumsum(degrees)
        offsets = np.arange(num_edges) - np.repeat(cumulative - degrees, degrees)
        edge_pos = np.repeat(starts, degrees) + offsets
        dsts = snapshot.dsts[edge_pos]

        order = np.argsort(dsts)
        sorted_dsts = dsts[order]
        edge_masks = masks[node_rep[order]]
        run_mask, run_start = _run_starts(sorted_dsts)
        return (
            sorted_dsts[run_mask],
            np.bitwise_or.reduceat(edge_masks, run_start, axis=0),
        )

    def _bitset_merge(
        self, chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> Dict[int, MaskBlock]:
        """Union per-producer outputs and split them by owner partition."""
        if not chunks:
            return {}
        dsts = np.concatenate([chunk[0] for chunk in chunks])
        masks = np.concatenate([chunk[1] for chunk in chunks])
        owners = np.concatenate([chunk[2] for chunk in chunks])
        order = np.lexsort((dsts, owners))
        dsts, masks, owners = dsts[order], masks[order], owners[order]
        # The owner is a function of the destination, so runs of equal
        # destinations are also runs of equal owners.
        run_mask, run_start = _run_starts(dsts)
        unique_dsts = dsts[run_mask]
        unique_owners = owners[run_mask]
        merged = np.bitwise_or.reduceat(masks, run_start, axis=0)
        frontier: Dict[int, MaskBlock] = {}
        owner_runs, owner_starts = _run_starts(unique_owners)
        stops = np.append(owner_starts[1:], len(unique_owners))
        for owner, start, stop in zip(
            unique_owners[owner_runs].tolist(),
            owner_starts.tolist(),
            stops.tolist(),
        ):
            frontier[owner] = (unique_dsts[start:stop], merged[start:stop])
        return frontier

    def _bitset_reduce(
        self,
        op: OperationContext,
        frontier: Dict[int, MaskBlock],
        results: List[Set[int]],
    ) -> None:
        with op.phase("mwait"):
            charge_reduce(
                op,
                {
                    partition: int(_popcounts(masks).sum())
                    for partition, (_, masks) in frontier.items()
                },
            )
            if not frontier:
                return
            nodes = np.concatenate([block[0] for block in frontier.values()])
            masks = np.concatenate([block[1] for block in frontier.values()])
            # Unpack the bit matrix row-major so the per-row node runs
            # come out pre-grouped (no sort needed).
            bits = np.unpackbits(
                np.ascontiguousarray(masks).view(np.uint8),
                axis=1,
                bitorder="little",
            )[:, : self._num_rows]
            row_ids, node_pos = np.nonzero(np.ascontiguousarray(bits.T))
            unique_rows, counts = _sorted_unique_counts(row_ids)
            matched_nodes = nodes[node_pos]
            start = 0
            for row, count in zip(unique_rows.tolist(), counts.tolist()):
                results[row].update(matched_nodes[start:start + count].tolist())
                start += count

    # ==================================================================
    # Packed-key path (automaton-guided plans: (row, state) contexts)
    # ==================================================================
    def _execute_keys(
        self, plan: PhysicalPlan, sources: List[int]
    ) -> Tuple[BatchResult, ExecutionStats]:
        runtime = self._runtime
        op = self._begin_op()
        dfa = plan.dfa
        accumulate = plan.accumulate_results
        reverse = plan.direction == "reverse"
        #: Reverse plans expand the reversed-expression DFA from the
        #: candidate end nodes; the forward answer is recovered by
        #: inverting the matches after the plan drains.
        run_sources = list(plan.reverse.seeds) if reverse else sources
        results: List[Set[int]] = [set() for _ in run_sources]
        stepper = _DfaStepper(dfa, runtime.label_names)

        # Packed-key parameters for this batch (see module docstring).
        self._row_span = max(1, len(run_sources))
        self._state_span = stepper.num_slots + 1
        self._max_packable_node = (2 ** 62) // (self._row_span * self._state_span)
        #: ``(rows, dsts)`` array pairs accepted while routing (accumulate
        #: mode); merged into ``results`` once, after the plan finishes.
        self._accumulated: List[Tuple[np.ndarray, np.ndarray]] = []

        #: frontier: partition -> sorted array of unique context keys;
        #: seen: every context key ever routed (accumulate mode).
        state = {"frontier": {}, "seen": _EMPTY}

        def dispatch() -> None:
            frontier, skipped = self._build_initial_frontier(
                run_sources, dfa, results, accumulate
            )
            state["frontier"] = frontier
            with op.phase("dispatch"):
                self._charge_dispatch(op, frontier)
            op.add_counter("batch_size", len(run_sources))
            op.add_counter("unknown_sources", skipped)
            if accumulate and frontier:
                state["seen"] = _unique(np.concatenate(list(frontier.values())))

        def expand_route(phase_name: str) -> bool:
            state["frontier"], state["seen"] = self._run_expansion_phase(
                op, state["frontier"], stepper, accumulate, state["seen"],
                phase_name=phase_name,
            )
            return bool(state["frontier"])

        def clear_frontier() -> None:
            state["frontier"] = {}

        def reduce() -> None:
            self._run_reduce_phase(
                op, state["frontier"], results, accumulate, stepper
            )

        run_plan(
            plan,
            dispatch=dispatch,
            expand_route=expand_route,
            clear_frontier=clear_frontier,
            reduce=reduce,
        )

        if self._accumulated:
            _group_into_results(
                np.concatenate([rows for rows, _ in self._accumulated]),
                np.concatenate([dsts for _, dsts in self._accumulated]),
                results,
            )
            self._accumulated = []

        if reverse:
            results = invert_reverse_results(
                sources, plan.reverse.seeds, results
            )
        stats = op.finish()
        stats.add_counter(
            "results", sum(len(destinations) for destinations in results)
        )
        return BatchResult(sources=list(sources), destinations=results), stats

    # ------------------------------------------------------------------
    # Packed-key plumbing
    # ------------------------------------------------------------------
    def _pack(
        self, nodes: np.ndarray, rows: np.ndarray, states: np.ndarray
    ) -> np.ndarray:
        if nodes.size and int(nodes.max()) > self._max_packable_node:
            raise OverflowError(
                "node id too large for 64-bit frontier keys; "
                "re-densify node ids or shrink the batch"
            )
        return (nodes * self._row_span + rows) * self._state_span + states + 1

    def _unpack(
        self, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recover ``(nodes, rows, states)`` from packed context keys."""
        nodes, remainder = np.divmod(keys, self._row_span * self._state_span)
        rows, state_part = np.divmod(remainder, self._state_span)
        return nodes, rows, state_part - 1

    def _unpack_nodes(self, keys: np.ndarray) -> np.ndarray:
        """Recover only the node component from packed context keys."""
        return keys // (self._row_span * self._state_span)

    # ------------------------------------------------------------------
    # Frontier construction and dispatch
    # ------------------------------------------------------------------
    def _build_initial_frontier(
        self,
        sources: List[int],
        dfa: DFA,
        results: List[Set[int]],
        accumulate: bool,
    ) -> Tuple[Dict[int, np.ndarray], int]:
        start_state = dfa.start
        start_accepting = accumulate and dfa.is_accepting(dfa.start)
        source_nodes = np.asarray(sources, dtype=np.int64)
        source_rows = np.arange(len(sources), dtype=np.int64)
        owners = self._owners_of(source_nodes)
        known = owners != _UNKNOWN_OWNER
        skipped = int(len(sources) - known.sum())
        source_nodes, source_rows, owners = (
            source_nodes[known], source_rows[known], owners[known]
        )
        if start_accepting:
            for row, source in zip(source_rows.tolist(), source_nodes.tolist()):
                results[row].add(source)
        states = np.full(len(source_nodes), start_state, dtype=np.int64)
        keys = self._pack(source_nodes, source_rows, states)
        order = np.lexsort((keys, owners))
        owners, keys = owners[order], keys[order]
        frontier: Dict[int, np.ndarray] = {}
        group_owners, group_counts = _sorted_unique_counts(owners)
        start = 0
        for owner, count in zip(group_owners.tolist(), group_counts.tolist()):
            # Source/row pairs are unique by construction; no dedup needed.
            frontier[owner] = keys[start:start + count]
            start += count
        return frontier, skipped

    def _charge_dispatch(
        self, op: OperationContext, frontier: Dict[int, np.ndarray]
    ) -> None:
        charge_dispatch(
            op, {partition: len(keys) for partition, keys in frontier.items()}
        )

    # ------------------------------------------------------------------
    # Expansion phases
    # ------------------------------------------------------------------
    def _run_expansion_phase(
        self,
        op: OperationContext,
        frontier: Dict[int, np.ndarray],
        stepper: _DfaStepper,
        accumulate: bool,
        seen_keys: np.ndarray,
        phase_name: str,
    ) -> Tuple[Dict[int, np.ndarray], np.ndarray]:
        survivor_chunks: List[np.ndarray] = []
        total_cpc_items = 0
        total_ipc_items = 0
        with op.phase(phase_name):
            for partition in sorted(frontier):
                produced_keys = self._expand_partition(
                    op, partition, frontier[partition], stepper
                )
                cpc_items, ipc_items, seen_keys, survivors = self._route_produced(
                    partition, produced_keys, stepper, accumulate, seen_keys,
                )
                total_cpc_items += cpc_items
                total_ipc_items += ipc_items
                if survivors is not None:
                    survivor_chunks.append(survivors)
            # Same rank-level bulk transfers as the scalar engine: one
            # gather/scatter pair per channel moves every crossing item.
            if total_cpc_items:
                op.cpc_transfer(
                    total_cpc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
            if total_ipc_items:
                op.ipc_transfer(
                    total_ipc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
        return self._merge_next_frontier(survivor_chunks), seen_keys

    def _merge_next_frontier(
        self, survivor_chunks: List[np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Union per-producer survivors and split them by owner partition."""
        if not survivor_chunks:
            return {}
        if len(survivor_chunks) == 1:
            keys = _unique(survivor_chunks[0])
        else:
            keys = _unique(np.concatenate(survivor_chunks))
        owners = self._owners_of(self._unpack_nodes(keys))
        # ``keys`` is sorted, so a stable owner sort keeps each
        # partition's keys sorted node-major — the invariant expansion
        # relies on.
        order = np.argsort(owners, kind="stable")
        owners = owners[order]
        keys = keys[order]
        next_frontier: Dict[int, np.ndarray] = {}
        group_owners, group_counts = _sorted_unique_counts(owners)
        start = 0
        for owner, count in zip(group_owners.tolist(), group_counts.tolist()):
            next_frontier[owner] = keys[start:start + count]
            start += count
        return next_frontier

    def _expand_partition(
        self,
        op: OperationContext,
        partition: int,
        frontier_keys: np.ndarray,
        stepper: _DfaStepper,
    ) -> np.ndarray:
        """Expand one partition's frontier; return produced context keys
        (with duplicates — the router owns set semantics)."""
        runtime = self._runtime
        nodes, rows, states = self._unpack(frontier_keys)
        snapshot = self._snapshot_of(partition)

        # ``nodes`` is sorted node-major, so unique/counts align with a
        # contiguous grouping of the items.
        unique_nodes, counts = _sorted_unique_counts(nodes)
        row_idx = snapshot.lookup(unique_nodes)
        if snapshot.num_rows == 0:
            degrees = np.zeros(len(unique_nodes), dtype=np.int64)
        else:
            present = row_idx >= 0
            degrees = np.where(present, snapshot.degrees[np.maximum(row_idx, 0)], 0)

        rows_touched = len(unique_nodes)
        bytes_streamed = int(degrees.sum()) * snapshot.bytes_per_entry
        item_degrees = np.repeat(degrees, counts)
        items_processed = int(item_degrees.sum())

        if partition == HOST_PARTITION:
            op.host.random_accesses(rows_touched, snapshot.working_set_bytes)
            op.host.stream_bytes(bytes_streamed)
            op.host.process_items(items_processed)
        else:
            module = op.module(partition)
            module.launch_kernel()
            module.random_accesses(rows_touched)
            module.stream_bytes(bytes_streamed)
            module.process_items(items_processed)
            if runtime.config.enable_migration and self._view is None:
                self._report_misplacement(
                    snapshot, unique_nodes, row_idx, degrees,
                    runtime.processors[partition].misplacement_threshold,
                )

        if items_processed == 0:
            return _EMPTY
        return self._keys_produce(
            snapshot, rows, states, counts, row_idx, item_degrees,
            items_processed, stepper,
        )

    def _keys_produce(
        self,
        snapshot,
        rows: np.ndarray,
        states: np.ndarray,
        counts: np.ndarray,
        row_idx: np.ndarray,
        item_degrees: np.ndarray,
        items_processed: int,
        stepper: _DfaStepper,
    ) -> np.ndarray:
        """Compute one partition's produced context keys (with duplicates).

        The production kernel behind :meth:`_expand_partition`, separated
        from the (shared) work accounting so subclasses can swap the
        frontier math without touching what the simulation measures.
        This implementation is the push-style gather: enumerate every
        (item, out-edge) pair and step the automaton per pair.
        """
        item_starts = np.repeat(
            snapshot.indptr[np.maximum(row_idx, 0)], counts
        )
        cumulative = np.cumsum(item_degrees)
        item_rep = np.repeat(np.arange(len(rows)), item_degrees)
        offsets = np.arange(items_processed) - np.repeat(
            cumulative - item_degrees, item_degrees
        )
        edge_pos = np.repeat(item_starts, item_degrees) + offsets

        dsts = snapshot.dsts[edge_pos]
        produced_rows = rows[item_rep]
        labels = snapshot.labels[edge_pos]
        next_states = stepper.step(states[item_rep], labels)
        keep = next_states >= 0
        return self._pack(dsts[keep], produced_rows[keep], next_states[keep])

    def _report_misplacement(
        self,
        snapshot,
        unique_nodes: np.ndarray,
        row_idx: np.ndarray,
        degrees: np.ndarray,
        threshold: float,
    ) -> None:
        # ``threshold`` is the per-module OperatorProcessor's frozen value —
        # the same source the scalar engine honors — so a post-construction
        # config tweak cannot silently diverge the backends.
        active = degrees > 0
        if not active.any():
            return
        local = snapshot.local_counts[np.maximum(row_idx, 0)]
        remote = degrees - local
        reported = active & (remote > 0) & (remote / np.maximum(degrees, 1) > threshold)
        for node, local_count, remote_count in zip(
            unique_nodes[reported].tolist(),
            local[reported].tolist(),
            remote[reported].tolist(),
        ):
            self._runtime.migrator.report_misplaced(node, local_count, remote_count)

    def _route_produced(
        self,
        producer: int,
        produced_keys: np.ndarray,
        stepper: _DfaStepper,
        accumulate: bool,
        seen_keys: np.ndarray,
    ) -> Tuple[int, int, np.ndarray, Optional[np.ndarray]]:
        """Apply set semantics and ownership to one producer's output.

        Returns the CPC/IPC item counts of this producer, the updated
        seen-key set, and the surviving context keys (``None`` when
        nothing survives).
        """
        if produced_keys.size == 0:
            return 0, 0, seen_keys, None
        # Per-producer set semantics: the same context reaching the same
        # destination via two local edges is one frontier item.
        keys = _unique(produced_keys)

        # Dangling destinations (never registered with the partitioner)
        # are dropped before any accounting, as in the scalar path.
        owners = self._owners_of(self._unpack_nodes(keys))
        known = owners != _UNKNOWN_OWNER
        if not known.all():
            keys, owners = keys[known], owners[known]
            if keys.size == 0:
                return 0, 0, seen_keys, None

        if accumulate:
            if seen_keys.size:
                positions = np.minimum(
                    np.searchsorted(seen_keys, keys), seen_keys.size - 1
                )
                fresh = seen_keys[positions] != keys
                keys, owners = keys[fresh], owners[fresh]
            if keys.size == 0:
                return 0, 0, seen_keys, None
            seen_keys = _unique(np.concatenate([seen_keys, keys]))
            nodes, rows, states = self._unpack(keys)
            accepted = stepper.accepting[states]
            if accepted.any():
                self._accumulated.append((rows[accepted], nodes[accepted]))

        crossing = owners != producer
        if producer == HOST_PARTITION:
            cpc_items = int(crossing.sum())
            ipc_items = 0
        else:
            to_host = crossing & (owners == HOST_PARTITION)
            cpc_items = int(to_host.sum())
            ipc_items = int((crossing & ~to_host).sum())
        return cpc_items, ipc_items, seen_keys, keys

    # ------------------------------------------------------------------
    # Reduction (mwait)
    # ------------------------------------------------------------------
    def _run_reduce_phase(
        self,
        op: OperationContext,
        frontier: Dict[int, np.ndarray],
        results: List[Set[int]],
        accumulate: bool,
        stepper: _DfaStepper,
    ) -> None:
        with op.phase("mwait"):
            charge_reduce(
                op, {partition: len(keys) for partition, keys in frontier.items()}
            )
            if accumulate:
                # Results were accumulated on the fly; the reduce phase
                # only merges per-module partial sets, charged above.
                return
            if not frontier:
                return
            nodes, rows, states = self._unpack(
                np.concatenate(list(frontier.values()))
            )
            accepted = stepper.accepting[states]
            _group_into_results(rows[accepted], nodes[accepted], results)