"""The semiring-matrix execution backend (masked SpGEMM over CSR epochs).

The paper formulates k-hop traversal as ``ans = Q x Adj x ... x Adj`` —
a chain of boolean-semiring matrix products.  This backend executes the
chain literally: the frontier is a bit-packed boolean matrix ``F`` of
shape ``(num_sources, V)`` (stored as ``ceil(num_sources/64)`` uint64
words per node), and one expansion phase is the masked product

    ``F' = F ⊗ Adjᵀ``    (boolean semiring: AND combine, OR accumulate)

computed *pull-style*: the adjacency of each partition is pre-transposed
once per snapshot (:meth:`~repro.core.snapshot.GraphSnapshot.
transpose_block` — in-edges grouped by destination) and each phase is a
single numpy gather of the frontier words over the in-edge sources
followed by one ``np.bitwise_or.reduceat`` per destination segment.  No
per-phase edge sort: where the vectorized (push) engine pays
``O(E' log E')`` to group its produced edges by destination, the
transposed block *is* that grouping, amortised over every phase and
every query against the snapshot.

General RPQ plans run as block matrices over packed state×node keys:
the snapshot's adjacency is split into one transposed block per edge
label (:meth:`~repro.core.snapshot.GraphSnapshot.label_blocks`, built
lazily per snapshot and cached with the same replace-on-mutation
machinery), the frontier is split into one bit plane per live automaton
state, and each (label ``l``, state ``s`` with ``δ(s, l) = s'``) pair
contributes ``plane_s ⊗ Adj_lᵀ`` to the next frontier's ``s'`` plane.
Edges whose label every live state rejects are never touched.

Pull pays ``O(E_total)`` per phase regardless of frontier size, so tiny
frontiers stay on the inherited push path: the crossover compares the
frontier's *touched* edge count (already exact in the charged work
counters) against the dense pull cost derived from the snapshot's cached
out-degree histogram, biased by the plan shape
(:meth:`~repro.engine.physical.PhysicalPlan.max_expansion_phases`) —
deep traversals saturate their frontiers and tolerate an earlier switch.

Both kernels produce the same per-destination OR / produced-key sets as
the push path (the bit-identity is asserted by the three-way parity
suite), and all work accounting runs in the shared
:class:`~repro.engine.vectorized.VectorizedEngine` code *before* the
production kernel is chosen — so results **and** simulated stats are
bit-identical to the scalar reference by construction, whichever side
of the crossover a phase lands on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engine.base import EngineRuntime
from repro.engine.physical import PhysicalPlan
from repro.engine.vectorized import (
    MaskBlock,
    VectorizedEngine,
    _DfaStepper,
    _EMPTY,
    _row_bit_masks,
    _run_starts,
)
from repro.pim.stats import ExecutionStats
from repro.rpq.query import BatchResult


class MatrixEngine(VectorizedEngine):
    """Executes physical plans as masked boolean-semiring SpGEMM."""

    name = "matrix"

    #: Pull runs when ``touched_edges * factor >= rows + edges`` of the
    #: partition (the dense pull cost).  Deep plans (more than one
    #: expansion phase) use the permissive factor — their frontiers
    #: saturate within a hop or two — while one-shot plans must already
    #: be dense to amortise the scatter.
    PULL_CROSSOVER_DEEP = 4
    PULL_CROSSOVER_SHALLOW = 1

    #: DFA pull runs when its block work (live (label, state) pairs times
    #: block edges, plus plane assembly) stays under ``touched items *
    #: factor`` — the push path's per-(item, edge) stepping cost.
    KEYS_CROSSOVER = 2

    def __init__(self, runtime: EngineRuntime) -> None:
        super().__init__(runtime)
        #: Whether the current plan runs more than one expansion phase
        #: (set per ``execute`` call; biases the pull crossover).
        self._deep_plan = False

    def execute(
        self,
        plan: PhysicalPlan,
        sources: List[int],
        view=None,
    ) -> Tuple[BatchResult, ExecutionStats]:
        self._deep_plan = plan.max_expansion_phases() > 1
        return super().execute(plan, sources, view)

    # ==================================================================
    # Bit-mask path: frontier ← (frontier ⊗ Adjᵀ)
    # ==================================================================
    def _bitset_produce(
        self,
        snapshot,
        masks: np.ndarray,
        row_idx: np.ndarray,
        degrees: np.ndarray,
        num_edges: int,
    ) -> MaskBlock:
        if not self._use_pull_bitset(snapshot, num_edges):
            return super()._bitset_produce(
                snapshot, masks, row_idx, degrees, num_edges
            )
        block = snapshot.transpose_block()
        num_words = masks.shape[1]
        # Scatter the frontier masks into a dense per-row plane (absent
        # rows keep the zero word: they contribute nothing to the OR),
        # then one gather + segmented OR computes every destination's
        # mask.  Non-frontier sources carry zero masks, so the result is
        # exactly the push path's per-destination OR over frontier edges.
        plane = np.zeros((snapshot.num_rows, num_words), dtype=np.uint64)
        present = row_idx >= 0
        plane[row_idx[present]] = masks[present]
        gathered = plane[block.src_rows]
        produced = np.bitwise_or.reduceat(gathered, block.indptr[:-1], axis=0)
        keep = produced.any(axis=1)
        if keep.all():
            return block.dsts, produced
        return block.dsts[keep], produced[keep]

    def _use_pull_bitset(self, snapshot, touched_edges: int) -> bool:
        """Dense-vs-sparse crossover for one partition's expansion."""
        histogram = snapshot.degree_histogram()
        # rows + edges straight off the cached histogram: the pull side
        # touches every stored in-edge plus one plane slot per row.
        dense_work = int(histogram.sum()) + int(
            histogram @ np.arange(len(histogram), dtype=np.int64)
        )
        factor = (
            self.PULL_CROSSOVER_DEEP
            if self._deep_plan
            else self.PULL_CROSSOVER_SHALLOW
        )
        return touched_edges * factor >= dense_work

    # ==================================================================
    # Packed-key path: one block product per live (label, state) pair
    # ==================================================================
    def _keys_produce(
        self,
        snapshot,
        rows: np.ndarray,
        states: np.ndarray,
        counts: np.ndarray,
        row_idx: np.ndarray,
        item_degrees: np.ndarray,
        items_processed: int,
        stepper: _DfaStepper,
    ) -> np.ndarray:
        row_span = self._row_span
        num_words = max(1, (row_span + 63) // 64)

        blocks = snapshot.label_blocks()
        item_row_idx = np.repeat(row_idx, counts)
        present = item_row_idx >= 0
        active_states = np.unique(states[present]).tolist()

        # Live (label, state -> next state) transitions and their pull
        # cost: every block edge is gathered once per live state.
        live_pairs: List[Tuple[int, int, int]] = []
        pull_work = len(active_states) * snapshot.num_rows
        for label, block in blocks.items():
            column = stepper.column(label)
            for state in active_states:
                next_state = int(column[state])
                if next_state >= 0:
                    live_pairs.append((label, state, next_state))
                    pull_work += block.num_edges
        if not live_pairs:
            return _EMPTY
        if pull_work * num_words > items_processed * self.KEYS_CROSSOVER:
            return super()._keys_produce(
                snapshot, rows, states, counts, row_idx, item_degrees,
                items_processed, stepper,
            )

        # One bit plane per live automaton state: plane[s][row, w] holds
        # the query-row bits of the frontier items sitting on that
        # adjacency row in state s.
        p_rows = rows[present]
        p_states = states[present]
        p_idx = item_row_idx[present]
        order = np.lexsort((p_idx, p_states))
        p_rows, p_states, p_idx = p_rows[order], p_states[order], p_idx[order]
        masks = _row_bit_masks(p_rows, num_words)
        planes = {}
        state_mask, state_starts = _run_starts(p_states)
        state_stops = np.append(state_starts[1:], len(p_states))
        for state, start, stop in zip(
            p_states[state_mask].tolist(),
            state_starts.tolist(),
            state_stops.tolist(),
        ):
            idx_slice = p_idx[start:stop]
            run_mask, run_start = _run_starts(idx_slice)
            plane = np.zeros((snapshot.num_rows, num_words), dtype=np.uint64)
            plane[idx_slice[run_mask]] = np.bitwise_or.reduceat(
                masks[start:stop], run_start, axis=0
            )
            planes[state] = plane

        produced_chunks: List[np.ndarray] = []
        for label, state, next_state in live_pairs:
            plane = planes.get(state)
            if plane is None:
                continue
            block = blocks[label]
            gathered = plane[block.src_rows]
            produced = np.bitwise_or.reduceat(
                gathered, block.indptr[:-1], axis=0
            )
            keep = produced.any(axis=1)
            if not keep.any():
                continue
            kept = produced[keep]
            bits = np.unpackbits(
                np.ascontiguousarray(kept).view(np.uint8),
                axis=1,
                bitorder="little",
            )[:, :row_span]
            positions, bit_rows = np.nonzero(bits)
            dsts = block.dsts[keep][positions]
            produced_chunks.append(
                self._pack(
                    dsts,
                    bit_rows.astype(np.int64),
                    np.full(len(dsts), next_state, dtype=np.int64),
                )
            )
        if not produced_chunks:
            return _EMPTY
        if len(produced_chunks) == 1:
            return produced_chunks[0]
        return np.concatenate(produced_chunks)
