"""Physical plans: what an execution backend actually runs.

The logical planner (:mod:`repro.rpq.planner`) describes a query as
matrix algebra; a :class:`PhysicalPlan` lowers that description onto the
simulated platform's bulk-synchronous operator vocabulary:

* :class:`DispatchOp` — pack the batch's source nodes into per-owner
  ``smxm`` operators and ship them (one CPC scatter);
* :class:`ExpandOp` — one ``smxm`` phase: every owner expands its share
  of the frontier against its adjacency segment;
* :class:`RouteOp` — hand every produced frontier item to the owner of
  its destination node (free locally, IPC across modules, CPC to/from
  the host) — always paired with the preceding :class:`ExpandOp` inside
  the same bulk-synchronous phase;
* :class:`FixpointOp` — an expand/route pair repeated until the frontier
  drains (Kleene closure), bounded by ``max_iterations``;
* :class:`ReduceOp` — the final ``mwait``: gather per-owner partial
  results and reduce them into the answer matrix.

The lowering is backend-agnostic: both the scalar and the vectorized
engines execute the same :class:`PhysicalPlan`, which is what makes
their simulated work counters comparable item for item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.rpq.automaton import DFA
from repro.rpq.planner import ExpandStep, FixpointStep, LogicalPlan


@dataclass(frozen=True)
class DispatchOp:
    """Build the initial frontier and ship per-owner ``smxm`` operators."""


@dataclass(frozen=True)
class ExpandOp:
    """One ``smxm`` frontier expansion, executed as its own phase."""

    phase_name: str


@dataclass(frozen=True)
class RouteOp:
    """Hand produced frontier items to their owners (same phase as expand)."""


@dataclass(frozen=True)
class FixpointOp:
    """Expand/route repeatedly until the frontier drains."""

    #: Phase names are ``"smxm fixpoint <i>"`` with ``i`` starting at 1.
    max_iterations: int


@dataclass(frozen=True)
class ReduceOp:
    """The ``mwait`` operator: gather partial results into the answer."""


PhysicalOp = Union[DispatchOp, ExpandOp, RouteOp, FixpointOp, ReduceOp]


@dataclass(frozen=True)
class ReversePlan:
    """Reverse-direction execution parameters attached to a physical plan.

    A reverse plan runs the *reversed-expression* DFA (already carried by
    ``PhysicalPlan.dfa``) from ``seeds`` — the candidate path end nodes —
    and inverts the matches afterwards.  The dataclass is deliberately
    flat and picklable so the worker pool can ship reverse plans
    unchanged.
    """

    #: Sorted candidate end nodes the reverse expansion starts from.
    seeds: Tuple[int, ...]


def invert_reverse_results(
    sources: Sequence[int],
    seeds: Sequence[int],
    reverse_destinations: Sequence[Set[int]],
) -> List[Set[int]]:
    """Turn reverse-direction matches back into forward batch results.

    ``reverse_destinations[i]`` holds the *start* nodes reached from
    ``seeds[i]`` along the reversed expression; a forward query from
    ``source`` therefore matches exactly the seeds whose reverse set
    contains it.  Every engine funnels reverse results through this one
    helper so the inversion (and its result counters) stay bit-identical
    across backends.
    """
    reached: Dict[int, Set[int]] = {}
    for row, end_node in enumerate(seeds):
        for start_node in reverse_destinations[row]:
            reached.setdefault(start_node, set()).add(end_node)
    return [set(reached.get(source, ())) for source in sources]


@dataclass
class PhysicalPlan:
    """A lowered, backend-agnostic operator sequence for one batch query."""

    ops: List[PhysicalOp] = field(default_factory=list)
    #: Whether accepting frontier items accumulate into the result as
    #: they are reached (general RPQs) or only the final frontier counts
    #: (pure k-hop / fixed-length plans).
    accumulate_results: bool = False
    #: Automaton carried by the frontier contexts (``None`` = bare rows).
    dfa: Optional[DFA] = None
    #: Expansion direction (``"forward"`` or ``"reverse"``).  For reverse
    #: plans ``dfa`` is the reversed-expression automaton and ``reverse``
    #: carries the seed nodes; engines invert the matches at the end.
    direction: str = "forward"
    reverse: Optional[ReversePlan] = None
    #: Advisory engine choice from the cost planner; honoured only when
    #: the caller did not pin an engine.
    engine_hint: Optional[str] = None

    def max_expansion_phases(self) -> int:
        """Upper bound on the expand/route phases this plan can run.

        Plain :class:`ExpandOp`s count one each; a :class:`FixpointOp`
        counts its iteration bound.  Cost-aware backends (the matrix
        engine's dense-vs-sparse crossover) use this to tell a one-shot
        1-hop plan from a deep traversal whose frontiers will saturate.
        """
        total = 0
        for op in self.ops:
            if isinstance(op, ExpandOp):
                total += 1
            elif isinstance(op, FixpointOp):
                total += op.max_iterations
        return total

    def explain(self) -> str:
        """Human-readable operator listing (one line per op)."""
        lines = []
        if self.direction != "forward":
            seeds = len(self.reverse.seeds) if self.reverse is not None else 0
            lines.append(f"direction: {self.direction} (seeds={seeds})")
        for index, op in enumerate(self.ops):
            if isinstance(op, DispatchOp):
                lines.append(f"{index}: dispatch sources")
            elif isinstance(op, ExpandOp):
                lines.append(f"{index}: expand [{op.phase_name}]")
            elif isinstance(op, RouteOp):
                lines.append(f"{index}: route produced items")
            elif isinstance(op, FixpointOp):
                lines.append(
                    f"{index}: fixpoint expand/route (<= {op.max_iterations} iterations)"
                )
            else:
                lines.append(f"{index}: reduce (mwait)")
        return "\n".join(lines)


def run_plan(
    plan: PhysicalPlan,
    *,
    dispatch: Callable[[], None],
    expand_route: Callable[[str], bool],
    clear_frontier: Callable[[], None],
    reduce: Callable[[], None],
) -> None:
    """Drive a physical plan through representation-agnostic callbacks.

    This is the single interpreter every backend shares; only the
    frontier math behind the callbacks differs per engine.

    * ``dispatch()`` builds the initial frontier and charges the CPC
      scatter;
    * ``expand_route(phase_name)`` runs one fused expand+route phase and
      returns whether the frontier is still non-empty;
    * ``clear_frontier()`` empties the frontier after a fixpoint drains;
    * ``reduce()`` runs the final ``mwait`` phase.

    When a plain expand phase drains the frontier, the rest of the plan
    — including the reduce — is skipped, matching the bulk-synchronous
    schedule the scalar engine has always used.
    """
    index = 0
    while index < len(plan.ops):
        physical_op = plan.ops[index]
        if isinstance(physical_op, DispatchOp):
            dispatch()
        elif isinstance(physical_op, ExpandOp):
            if index + 1 >= len(plan.ops) or not isinstance(
                plan.ops[index + 1], RouteOp
            ):
                raise ValueError("every ExpandOp must be paired with a RouteOp")
            index += 1  # The paired route runs inside the same phase.
            if not expand_route(physical_op.phase_name):
                return
        elif isinstance(physical_op, FixpointOp):
            for iteration in range(physical_op.max_iterations):
                if not expand_route(f"smxm fixpoint {iteration + 1}"):
                    break
            clear_frontier()
        elif isinstance(physical_op, ReduceOp):
            reduce()
        else:
            raise TypeError(f"unknown physical operator {physical_op!r}")
        index += 1


def lower_plan(plan: LogicalPlan, default_fixpoint_iterations: int) -> PhysicalPlan:
    """Lower a :class:`LogicalPlan` into a :class:`PhysicalPlan`.

    ``default_fixpoint_iterations`` bounds Kleene closures whose logical
    step carries no explicit bound; the query processor passes the total
    number of stored rows.  DFA-guided plans explore the *product* graph
    — up to ``rows x dfa.num_states`` distinct ``(node, state)`` pairs —
    so the default is scaled by the attached automaton's state count
    here, where every caller gets it; a rows-only bound can drain the
    fixpoint early and silently truncate results (e.g. ``(a/a)*`` over a
    long cycle revisits nodes in different states).  Explicit per-step
    bounds are honoured verbatim.
    """
    default_bound = max(1, default_fixpoint_iterations)
    if plan.dfa is not None:
        default_bound *= max(1, plan.dfa.num_states)
    ops: List[PhysicalOp] = [DispatchOp()]
    expansion_index = 0
    for step in plan.steps:
        if isinstance(step, ExpandStep):
            expansion_index += 1
            ops.append(ExpandOp(phase_name=f"smxm {expansion_index}"))
            ops.append(RouteOp())
        elif isinstance(step, FixpointStep):
            ops.append(
                FixpointOp(max_iterations=step.max_iterations or default_bound)
            )
        else:
            ops.append(ReduceOp())
    reverse = None
    if plan.direction == "reverse":
        if plan.reverse_seeds is None:
            raise ValueError("reverse plans must carry reverse_seeds")
        reverse = ReversePlan(seeds=tuple(plan.reverse_seeds))
    decision = plan.decision
    return PhysicalPlan(
        ops=ops,
        accumulate_results=plan.accumulate_results,
        dfa=plan.dfa,
        direction=plan.direction,
        reverse=reverse,
        engine_hint=decision.engine_hint if decision is not None else None,
    )
