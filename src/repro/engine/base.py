"""The execution-engine protocol and the wiring both backends share.

The query processor lowers a logical plan into a
:class:`~repro.engine.physical.PhysicalPlan` and hands it to an
:class:`ExecutionEngine`.  Engines are interchangeable: every backend
must produce identical :class:`~repro.rpq.query.BatchResult`s *and*
identical simulated work counters (rows touched, bytes streamed, items
processed, channel traffic) for the same plan on the same system state —
the paper's figures are derived from those counters, so a faster backend
must not change what the simulation measures.

:class:`EngineRuntime` bundles the system components an engine needs;
:func:`create_engine` maps the ``MoctopusConfig.engine`` knob to a
backend instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.engine.physical import PhysicalPlan
from repro.partition.base import HOST_PARTITION
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import BatchResult, ContextSet

if TYPE_CHECKING:  # pragma: no cover — type-only imports, see note below.
    from repro.core.config import MoctopusConfig
    from repro.core.hetero_storage import HeterogeneousGraphStorage
    from repro.core.local_storage import LocalGraphStorage
    from repro.core.node_migrator import NodeMigrator
    from repro.core.operator_processor import OperatorProcessor
    from repro.core.partitioner import GraphPartitioner
    from repro.core.snapshot import GraphSnapshot

# NOTE: the ``repro.core`` imports above are type-only on purpose.  The
# query processor (a ``repro.core`` module) imports this module, so a
# runtime import of ``repro.core`` here would deadlock whichever package
# is imported second; the runtime only ever touches these objects
# through the :class:`EngineRuntime` fields it is handed.

#: A frontier as the scalar backend sees it: owner partition -> node ->
#: set of query contexts.
Frontier = Dict[int, Dict[int, ContextSet]]

#: Names accepted by :func:`create_engine` / ``MoctopusConfig.engine``.
ENGINE_NAMES = ("python", "vectorized", "matrix")


@runtime_checkable
class PlanView(Protocol):
    """A frozen, epoch-pinned substitute for the live system state.

    The serving layer (:mod:`repro.serve`) hands one of these to
    ``ExecutionEngine.execute`` to run a plan against an immutable
    epoch capture instead of the live storages: owner lookups resolve
    against the epoch's frozen partition table, adjacency reads against
    the epoch's (possibly session-patched) CSR snapshots, and simulated
    work is charged to the view's private accounting platform so
    concurrent pinned executions never share mutable phase counters.

    Pinned execution never reports misplacement — the reports would be
    derived from a stale epoch — so both engines skip detection when a
    view is supplied, keeping their outputs bit-identical.
    """

    #: Identifier of the pinned epoch (stamped into query stats).
    epoch_id: int
    #: Private accounting platform for this view's executions.
    pim: PIMSystem

    def owner(self, node: int) -> Optional[int]:
        """Partition owning ``node`` at the pinned epoch (``None`` unknown)."""
        ...

    def owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup (``OwnerIndex.UNKNOWN`` when unplaced)."""
        ...

    def snapshot_of(self, partition: int) -> "GraphSnapshot":
        """Pinned CSR snapshot of ``partition``'s adjacency segment."""
        ...

    def total_rows(self) -> int:
        """Total adjacency rows across all pinned snapshots."""
        ...


@dataclass
class EngineRuntime:
    """The system components an execution engine operates on."""

    config: MoctopusConfig
    pim: PIMSystem
    partitioner: GraphPartitioner
    module_storages: List[LocalGraphStorage]
    host_storage: HeterogeneousGraphStorage
    processors: List[OperatorProcessor]
    migrator: NodeMigrator
    label_names: Dict[int, str] = field(default_factory=dict)

    def owner(self, node: int) -> Optional[int]:
        """Partition owning ``node`` (``None`` when unknown)."""
        return self.partitioner.partition_of(node)

    def snapshot_of(self, partition: int) -> GraphSnapshot:
        """CSR snapshot of the storage backing ``partition``."""
        if partition == HOST_PARTITION:
            return self.host_storage.to_csr()
        return self.module_storages[partition].to_csr()


@runtime_checkable
class ExecutionEngine(Protocol):
    """A physical-plan executor (one of the swappable backends)."""

    #: Engine name as selected by ``MoctopusConfig.engine``.
    name: str

    def execute(
        self,
        plan: PhysicalPlan,
        sources: List[int],
        view: Optional[PlanView] = None,
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Run ``plan`` for the batch ``sources`` on the simulated system.

        With ``view`` supplied, the plan executes against the pinned
        epoch capture (frozen owners + snapshots, private accounting)
        instead of the live storages.
        """
        ...


def create_engine(name: str, runtime: EngineRuntime) -> ExecutionEngine:
    """Instantiate the backend selected by ``name``."""
    if name == "python":
        from repro.engine.python_engine import PythonEngine

        return PythonEngine(runtime)
    if name == "vectorized":
        from repro.engine.vectorized import VectorizedEngine

        return VectorizedEngine(runtime)
    if name == "matrix":
        from repro.engine.matrix_engine import MatrixEngine

        return MatrixEngine(runtime)
    raise ValueError(
        f"unknown execution engine {name!r}; expected one of {ENGINE_NAMES}"
    )
