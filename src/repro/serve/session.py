"""Sessions: snapshot-isolated client handles onto a Moctopus system.

A :class:`Session` pins one epoch at ``begin()`` and keeps every query
on that frozen state until the caller explicitly :meth:`refresh`\\ es —
the MVCC contract "a pinned reader never observes later writes".  On
top of isolation the session layers **read-your-writes**: updates
staged through the session are spliced into the pinned snapshots (with
the same :func:`~repro.core.snapshot.merge_snapshot` machinery the
storages use for their own incremental maintenance) so the session's
queries see its uncommitted edges immediately, while other readers and
the live system see nothing until :meth:`commit` hands the staged batch
to the single writer.

Each session owns a private execution engine instance and a private
accounting :class:`~repro.pim.system.PIMSystem`, so sessions on
different threads execute concurrently without sharing any mutable
state — the pinned arrays are frozen (``writeable=False``) and
everything else is session-local.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.snapshot import GraphSnapshot, merge_snapshot
from repro.engine.base import create_engine
from repro.graph.digraph import DEFAULT_LABEL
from repro.graph.stream import UpdateKind, UpdateOp
from repro.partition.base import HOST_PARTITION
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import BatchResult, KHopQuery
from repro.serve.epoch import Epoch, EpochView

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.system import Moctopus


class Session:
    """A snapshot-isolated reader (plus staged-writer) handle.

    Use as a context manager so the pinned epoch is always released:

    .. code-block:: python

        with system.begin() as session:
            result, stats = session.batch_khop([0, 1], hops=2)
            session.insert_edges([(0, 99)])      # visible to this session
            result2, _ = session.batch_khop([0], hops=1)   # sees 0 -> 99
            session.commit()                     # hand to the writer
    """

    def __init__(self, system: "Moctopus", engine: Optional[str] = None) -> None:
        self._system = system
        self._epoch: Epoch = system._epochs.pin()
        self._closed = False
        #: Private accounting platform: pinned executions charge here.
        self._pim = PIMSystem(system.config.cost_model)
        self._engine = create_engine(
            engine or system.engine_name, system._query_processor._runtime
        )
        #: Patched row contents of every source the session wrote:
        #: ``node -> [(dst, label), ...]`` (full row, storage semantics).
        self._local: Dict[int, List[Tuple[int, int]]] = {}
        #: Session-created nodes and their provisional partitions.
        self._new_nodes: Dict[int, int] = {}
        #: Staged updates in submission order, replayed verbatim on commit.
        self._ops: List[Tuple[UpdateKind, int, int, int]] = []
        self._view_cache: Optional[EpochView] = None
        #: Queries answered by this session (per-epoch stats feed).
        self.queries_executed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def epoch_id(self) -> int:
        """Id of the currently pinned epoch."""
        return self._epoch.epoch_id

    @property
    def pending_updates(self) -> int:
        """Number of staged (uncommitted) updates."""
        return len(self._ops)

    def refresh(self) -> int:
        """Re-pin the latest published epoch and return its id.

        Staged (uncommitted) updates survive a refresh: they are
        re-spliced onto the new epoch, so read-your-writes holds across
        the move.

        The swap is exception-safe: the old epoch's pin is only released
        after the move onto the new epoch (including the overlay rebase)
        has fully succeeded.  If anything raises in between, the freshly
        taken pin is dropped and the session rolls back to its previous
        epoch, staged ops and overlay — pin counts stay balanced either
        way, so a failed refresh can never block retention eviction.
        """
        self._assert_open()
        manager = self._system._epochs
        latest = manager.pin()
        previous = self._epoch
        # ``_rebase_local`` clears the staged state in place, so roll-back
        # needs real copies, not aliases.
        staged = list(self._ops)
        local_backup = {node: list(row) for node, row in self._local.items()}
        new_nodes_backup = dict(self._new_nodes)
        try:
            self._epoch = latest
            self._view_cache = None
            self._rebase_local()
        except BaseException:
            self._epoch = previous
            self._ops = staged
            self._local = local_backup
            self._new_nodes = new_nodes_backup
            self._view_cache = None
            manager.unpin(latest)
            raise
        manager.unpin(previous)
        return self._epoch.epoch_id

    def close(self) -> None:
        """Release the pinned epoch; idempotent (extra calls are no-ops).

        The session is marked closed *before* unpinning so a failure
        inside the manager can never lead to a double-unpin on retry;
        queries and writes after ``close()`` raise.
        """
        if not self._closed:
            self._closed = True
            self._system._epochs.unpin(self._epoch)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _assert_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # ------------------------------------------------------------------
    # Queries (epoch-pinned execution)
    # ------------------------------------------------------------------
    def batch_khop(
        self, sources, hops: int
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Batch k-hop query against the pinned epoch (+ staged writes)."""
        return self.execute(KHopQuery(hops=hops, sources=list(sources)))

    def execute(self, query) -> Tuple[BatchResult, ExecutionStats]:
        """Run a :class:`KHopQuery`/:class:`RPQuery` on the pinned state."""
        self._assert_open()
        view = self._view()
        result, stats = self._system._query_processor.execute_on_view(
            query, view, self._engine
        )
        stats.add_counter("epoch", view.epoch_id)
        self.queries_executed += 1
        self._system._epochs.note_served(view.epoch_id, 1)
        return result, stats

    # ------------------------------------------------------------------
    # Staged writes (read-your-writes overlay)
    # ------------------------------------------------------------------
    def insert_edges(
        self, edges, labels: Optional[List[int]] = None
    ) -> None:
        """Stage edge insertions, visible to this session immediately."""
        self._assert_open()
        edges = list(edges)
        for index, (src, dst) in enumerate(edges):
            label = labels[index] if labels else DEFAULT_LABEL
            self._stage_insert(src, dst, label)

    def delete_edges(self, edges) -> None:
        """Stage edge deletions, visible to this session immediately."""
        self._assert_open()
        for src, dst in list(edges):
            self._stage_delete(src, dst)

    def apply_updates(self, ops: List[UpdateOp]) -> None:
        """Stage a mixed :class:`UpdateOp` stream in order."""
        self._assert_open()
        for op in ops:
            if op.kind is UpdateKind.INSERT:
                self._stage_insert(op.src, op.dst, DEFAULT_LABEL)
            else:
                self._stage_delete(op.src, op.dst)

    def commit(self) -> Optional[ExecutionStats]:
        """Hand the staged updates to the writer and re-pin.

        The batch is applied to the live system in submission order (the
        writer publishes a fresh epoch), the overlay is cleared, and the
        session moves onto the new epoch — its own writes are now part
        of the pinned state.  Returns the writer's simulated cost, or
        ``None`` when nothing was staged.
        """
        self._assert_open()
        stats: Optional[ExecutionStats] = None
        if self._ops:
            ops = [
                UpdateOp(kind, src, dst) for kind, src, dst, _ in self._ops
            ]
            op_labels = [label for _, _, _, label in self._ops]
            stats = self._system.apply_updates(ops, labels=op_labels)
            self._ops.clear()
            self._local.clear()
            self._new_nodes.clear()
        # Commit always lands the session on the latest epoch, staged
        # writes or not — "after commit I see the current state".
        self.refresh()
        return stats

    # ------------------------------------------------------------------
    # Overlay plumbing
    # ------------------------------------------------------------------
    def _stage_insert(self, src: int, dst: int, label: int) -> None:
        self._ops.append((UpdateKind.INSERT, src, dst, label))
        row = self._row_for_write(src)
        for position, (existing_dst, _) in enumerate(row):
            if existing_dst == dst:
                row[position] = (dst, label)
                break
        else:
            row.append((dst, label))
        self._register_node(dst)
        self._view_cache = None

    def _stage_delete(self, src: int, dst: int) -> None:
        self._ops.append((UpdateKind.DELETE, src, dst, DEFAULT_LABEL))
        if self._epoch.owner(src) is None and src not in self._local:
            # Deleting from a node the epoch has never seen is a no-op
            # (the live update path treats it as a host no-op too).
            return
        row = self._row_for_write(src)
        for position, (existing_dst, _) in enumerate(row):
            if existing_dst == dst:
                del row[position]
                break
        self._view_cache = None

    def _row_for_write(self, node: int) -> List[Tuple[int, int]]:
        """The session's patched row of ``node``, seeded from the epoch."""
        row = self._local.get(node)
        if row is None:
            owner = self._epoch.owner(node)
            if owner is None:
                self._register_node(node)
                row = []
            else:
                row = self._epoch.snapshot_of(owner).row_entries(node)
            self._local[node] = row
        return row

    def _register_node(self, node: int) -> None:
        """Give a session-created node a provisional partition and row."""
        if self._epoch.owner(node) is not None or node in self._new_nodes:
            return
        # Provisional placement for routing only: the real partitioner
        # decides at commit time.  Reachability results are placement-
        # agnostic, so any deterministic choice works.
        self._new_nodes[node] = node % max(1, self._epoch.num_modules)
        self._local.setdefault(node, [])

    def _rebase_local(self) -> None:
        """Re-splice the staged ops onto a freshly pinned epoch."""
        if not self._ops:
            return
        staged = list(self._ops)
        self._ops.clear()
        self._local.clear()
        self._new_nodes.clear()
        for kind, src, dst, label in staged:
            if kind is UpdateKind.INSERT:
                self._stage_insert(src, dst, label)
            else:
                self._stage_delete(src, dst)

    def _view(self) -> EpochView:
        """The engine-facing view: pinned epoch + spliced staged writes."""
        if self._view_cache is not None:
            return self._view_cache
        if not self._local:
            self._view_cache = EpochView(self._epoch, self._pim)
            return self._view_cache
        by_owner: Dict[int, List[int]] = {}
        for node in self._local:
            owner = self._epoch.owner(node)
            if owner is None:
                owner = self._new_nodes[node]
            by_owner.setdefault(owner, []).append(node)
        patched: Dict[int, GraphSnapshot] = {}
        for owner, nodes in by_owner.items():
            base = self._epoch.snapshot_of(owner)
            dirty = np.sort(np.fromiter(nodes, dtype=np.int64, count=len(nodes)))
            patched[owner] = merge_snapshot(
                base,
                dirty,
                self._local.get,
                bytes_per_entry=base.bytes_per_entry,
                working_set_bytes=base.working_set_bytes,
                count_local=(owner != HOST_PARTITION),
            ).freeze()
        self._view_cache = EpochView(
            self._epoch, self._pim, patched=patched,
            extra_owners=dict(self._new_nodes),
        )
        return self._view_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"epoch={self._epoch.epoch_id}"
        return f"Session({state}, staged={len(self._ops)})"
