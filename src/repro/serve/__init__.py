"""The snapshot-isolated concurrent serving layer.

Built on the storages' incrementally-maintained immutable CSR bases
(:mod:`repro.core.snapshot`), this package adds the epoch/MVCC machinery
that lets many readers and one writer share a
:class:`~repro.core.system.Moctopus` instance:

* :mod:`repro.serve.epoch` — :class:`Epoch` captures (frozen snapshots +
  frozen owner table), the publish/pin/retire lifecycle in
  :class:`EpochManager`, and the :class:`EpochView` lens engines execute
  against;
* :mod:`repro.serve.session` — :class:`Session`: pin-on-begin snapshot
  isolation with a read-your-writes overlay and explicit
  ``refresh()``/``commit()``;
* :mod:`repro.serve.scheduler` — :class:`BatchScheduler`: bounded
  admission plus coalescing of concurrent single-source queries into
  engine-level batches.

Entry points live on the system facade: ``system.begin()`` opens a
session, ``system.serve()`` starts a scheduler.
"""

from repro.serve.epoch import Epoch, EpochManager, EpochView
from repro.serve.scheduler import BatchScheduler, SchedulerSaturated, ServingFuture
from repro.serve.session import Session

__all__ = [
    "BatchScheduler",
    "Epoch",
    "EpochManager",
    "EpochView",
    "SchedulerSaturated",
    "ServingFuture",
    "Session",
]
