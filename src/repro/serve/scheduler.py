"""The batch scheduler: coalescing admission control for concurrent readers.

The paper's system is built around *batch* path queries — one ``smxm``
cascade answers many sources at once — but concurrent clients each ask
for one source at a time.  :class:`BatchScheduler` bridges the two: it
admits client queries into a **bounded queue** (backpressure instead of
unbounded memory growth) and a single worker drains the queue in
windows, coalescing every compatible query (same hop count) into one
engine-level :class:`~repro.rpq.query.KHopQuery` executed against the
latest published epoch.  Eight clients asking 2-hop questions cost one
batched plan execution, not eight — which is where the serving layer's
throughput multiplier comes from (see
``benchmarks/bench_concurrent_serving.py``).

Every coalesced batch pins the newest epoch for exactly one execution,
so scheduled queries always observe a consistent published state while
the writer keeps publishing behind them.

With ``parallel=N`` (``Moctopus.serve(parallel=N)`` /
``MoctopusConfig.serve_workers``) the scheduler scatters each window's
per-hops batches across a :class:`~repro.parallel.pool.WorkerPool` of
``N`` child processes — zero-copy readers of shared-memory epoch
exports — and gathers the results in submission order, so concurrent
hop-groups execute on real cores instead of time-slicing one GIL.
Results, statistics and epoch stamps are bit-identical to in-process
execution (the differential suite proves it on both engines).

All window timing uses the monotonic clock: a wall-clock (NTP) step can
neither stall nor collapse the drain window.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.engine.base import ENGINE_NAMES, create_engine
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import KHopQuery, RPQuery
from repro.serve.epoch import EpochView

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.system import Moctopus


class SchedulerSaturated(RuntimeError):
    """Raised when the admission queue is full and the caller won't wait."""


class ResultGate:
    """One-shot outcome cell shared by serving futures and pool tickets.

    First outcome wins (the close/submit race resolves to whichever
    settles first); waiting re-raises a failure.  Subclasses define the
    payload shape and the public accessors.

    A waiter that times out simply abandons the gate: a later outcome is
    recorded but never delivered to that caller (and is still available
    to any other waiter), so a timed-out client can be answered by a
    slow batch without crashing anything.
    """

    def __init__(self, pending: str = "result") -> None:
        self._event = threading.Event()
        self._payload = None
        self._error: Optional[BaseException] = None
        self._pending = pending
        #: Guards the settle-once transition and the callback list; held
        #: only for pointer swaps, never while running callbacks.
        self._gate_lock = threading.Lock()
        self._callbacks: List[Callable[["ResultGate"], None]] = []

    def _settle(self, payload) -> None:
        with self._gate_lock:
            if self._event.is_set():
                return  # first outcome wins
            self._payload = payload
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fail(self, error: BaseException) -> None:
        with self._gate_lock:
            if self._event.is_set():
                return
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(
        self, callback: Callable[["ResultGate"], None]
    ) -> None:
        """Run ``callback(self)`` once an outcome is recorded.

        Invoked immediately when the gate is already settled, otherwise
        from whichever thread settles it — the bridge an event loop uses
        (``loop.call_soon_threadsafe`` inside the callback) to await a
        threaded future without blocking a loop thread per query.
        """
        with self._gate_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        """Whether an outcome (answer or failure) has been recorded."""
        return self._event.is_set()

    def _replicate_error(self) -> BaseException:
        """A per-waiter copy of the recorded failure.

        One failed batch fans out to every waiter of the group; raising
        the *shared* instance from concurrent ``_wait`` calls would make
        unrelated threads race on its ``__traceback__``.  Each waiter
        therefore gets a fresh copy chained (``__cause__``) to the
        original; exceptions that refuse to copy fall back to the shared
        instance rather than masking the failure.
        """
        error = self._error
        try:
            replica = copy.copy(error)
        except Exception:  # pragma: no cover - exotic uncopyable errors
            return error
        if replica is error or type(replica) is not type(error):
            return error  # pragma: no cover - copy() no-op'd
        replica.__traceback__ = None
        return replica

    def _wait(self, timeout: Optional[float]):
        if not self._event.wait(timeout):
            raise TimeoutError(f"{self._pending} not answered within timeout")
        if self._error is not None:
            replica = self._replicate_error()
            if replica is self._error:  # pragma: no cover - fallback path
                raise self._error
            raise replica from self._error
        return self._payload


class ServingFuture(ResultGate):
    """Handle for one admitted query; resolves when its batch executes.

    Carries either a hop count (the paper's k-hop workload) or a path
    expression (general RPQs); the scheduler coalesces futures with the
    same :attr:`group_key` into one engine-level batch.
    """

    def __init__(
        self,
        source: int,
        hops: Optional[int] = None,
        expression: Optional[str] = None,
    ) -> None:
        super().__init__(pending="query")
        if (hops is None) == (expression is None):
            raise ValueError("exactly one of hops/expression is required")
        self.source = source
        self.hops = hops
        self.expression = expression

    @property
    def group_key(self) -> Tuple[str, object]:
        """Coalescing key: queries with equal keys share one batch."""
        if self.expression is not None:
            return ("rpq", self.expression)
        return ("khop", self.hops)

    def _resolve(self, destinations: Set[int], stats: ExecutionStats) -> None:
        self._settle((destinations, stats))

    def result(self, timeout: Optional[float] = None) -> Set[int]:
        """Destination set of the query (blocks until resolved)."""
        destinations, _ = self.outcome(timeout=timeout)
        return destinations

    def outcome(
        self, timeout: Optional[float] = None
    ) -> Tuple[Set[int], ExecutionStats]:
        """``(destinations, batch stats)`` — stats are shared across the
        coalesced batch this query rode in."""
        return self._wait(timeout)


class BatchScheduler:
    """Coalesces concurrent client k-hop queries into engine batches."""

    def __init__(
        self,
        system: "Moctopus",
        engine: Optional[str] = None,
        batch_window: Optional[int] = None,
        queue_depth: Optional[int] = None,
        autostart: bool = True,
        parallel: Optional[int] = None,
        linger: Optional[float] = None,
    ) -> None:
        self._system = system
        config = system.config
        if batch_window is None:
            batch_window = config.serve_batch_window
        if queue_depth is None:
            queue_depth = config.serve_queue_depth
        if linger is None:
            linger = config.serve_linger
        if batch_window < 1 or queue_depth < 1:
            raise ValueError("batch_window and queue_depth must be >= 1")
        if linger < 0:
            raise ValueError("linger must be >= 0 seconds")
        self._window = batch_window
        #: How long (monotonic seconds) a drain waits for stragglers to
        #: fill the window.  0 preserves the drain-what's-there default.
        self._linger = linger
        self._queue: "queue.Queue[Optional[ServingFuture]]" = queue.Queue(
            maxsize=queue_depth
        )
        #: Worker-process pool for ``parallel=N`` scatter/gather
        #: (``None`` = execute windows in-process on the drain thread).
        self._pool = None
        self._gatherer: Optional[threading.Thread] = None
        self._scattered: Optional["queue.Queue"] = None
        #: Private engine + accounting platform of in-process execution:
        #: the drain thread never shares scratch state with live callers
        #: or sessions.  ``None`` in pool mode (workers own both).
        self._engine = None
        self._pim = None
        #: Backend name for in-process group execution (also the lazy
        #: fallback pool mode uses for expression groups, which the
        #: k-hop-only workers don't execute).
        self._engine_name = engine or system.engine_name
        if self._engine_name not in ENGINE_NAMES:
            # Fail fast on a bad engine name *before* any threads start
            # or processes fork: an invalid name surfacing later (inside
            # a worker) would leak resources this constructor could no
            # longer close.
            raise ValueError(
                f"unknown execution engine {self._engine_name!r}; expected "
                f"one of {ENGINE_NAMES}"
            )
        if parallel is None:
            parallel = 0
        if parallel:
            # Imported lazily: repro.parallel sits above repro.serve.
            from repro.parallel.pool import WorkerPool

            self._pool = WorkerPool(system, parallel, engine=engine)
            # Scatter/gather pipeline: the drain thread keeps scattering
            # new windows while this bounded queue of in-flight groups
            # is gathered — in submission order — by a dedicated thread,
            # so workers never idle between windows.  The bound is the
            # backpressure that keeps in-flight work proportional to the
            # pool, not to the admission queue.
            self._scattered = queue.Queue(maxsize=2 * parallel)
            self._gatherer = threading.Thread(
                target=self._gather, name="moctopus-batch-gatherer",
                daemon=True,
            )
            self._gatherer.start()
        else:
            # In-process mode only: pool mode executes k-hop windows on
            # the workers' engines and accounts on the pool's platform,
            # so these stay unbuilt there (created lazily only if an
            # expression group arrives, which workers don't execute).
            self._pim = PIMSystem(config.cost_model)
            self._engine = create_engine(
                self._engine_name,
                system._query_processor._runtime,
            )
        self._closed = threading.Event()
        #: Serializes ``close()``: concurrent/double closes must not race
        #: the drain thread or tear down the pool twice.
        self._close_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="moctopus-batch-scheduler", daemon=True
        )
        #: Scheduler-level counters (thread-safe under the GIL: single
        #: writer — the worker thread).
        self.batches_executed = 0
        self.queries_served = 0
        if autostart:
            self._worker.start()

    @property
    def parallel_workers(self) -> int:
        """Worker processes behind this scheduler (0 = in-process)."""
        return self._pool.workers if self._pool is not None else 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(
        self,
        source: int,
        hops: int,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServingFuture:
        """Admit one single-source k-hop query.

        With ``block=False`` (or on timeout) a full queue raises
        :class:`SchedulerSaturated` — the bounded-admission contract.
        """
        return self._admit(ServingFuture(source, hops=hops), block, timeout)

    def submit_rpq(
        self,
        source: int,
        expression: str,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServingFuture:
        """Admit one single-source regular path query.

        Queries with the same expression coalesce into one engine-level
        :class:`~repro.rpq.query.RPQuery` batch, exactly as equal-hops
        k-hop queries do.  The expression is parsed here so a syntax
        error surfaces synchronously at the caller, not inside the drain
        thread.
        """
        RPQuery(expression=expression).ast()  # validate eagerly
        return self._admit(
            ServingFuture(source, expression=expression), block, timeout
        )

    def _admit(
        self, future: ServingFuture, block: bool, timeout: Optional[float]
    ) -> ServingFuture:
        if self._closed.is_set():
            raise RuntimeError("scheduler is closed")
        try:
            self._queue.put(future, block=block, timeout=timeout)
        except queue.Full:
            raise SchedulerSaturated(
                f"admission queue full ({self._queue.maxsize} waiting queries)"
            ) from None
        # close() may have raced us between the flag check and the put;
        # if the worker is already gone, nothing will ever drain this
        # future — fail it instead of letting result() block forever.
        if self._closed.is_set() and not self._worker.is_alive():
            future._fail(RuntimeError("scheduler closed during submit"))
        return future

    def query(self, source: int, hops: int) -> Set[int]:
        """Blocking convenience wrapper: submit and wait for the answer."""
        return self.submit(source, hops).result()

    @property
    def pending(self) -> int:
        """Admitted queries waiting in the queue (approximate gauge)."""
        return self._queue.qsize()

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the worker after draining already-admitted queries.

        Idempotent and safe to call concurrently.  The close lock is
        held only to *mark* the scheduler closed (and wake the worker);
        every blocking step — thread joins, the stranded-future drain,
        pool teardown — runs outside it, so a concurrent closer (or any
        other path touching the lock) is never stalled behind a
        multi-second join (REP001: mark under the lock, act outside).
        Each post-mark step is idempotent, so concurrent closers can
        run them in parallel; queries already admitted when ``close()``
        is called are still drained and answered by the worker before
        it exits.
        """
        with self._close_lock:
            if not self._closed.is_set():
                self._closed.set()
                try:
                    self._queue.put_nowait(None)  # wake the worker early
                except queue.Full:
                    pass  # the worker's poll loop notices the flag anyway
        if self._worker.is_alive():
            self._worker.join(timeout)
        if self._worker.is_alive() and self._pool is not None:
            # In pool mode a drain thread that outlives the join is
            # almost certainly wedged *on the pool* — blocked
            # scattering into a full pipeline behind a hung worker.
            # Closing the pool fails every in-flight ticket, which
            # unblocks the gatherer and then the drain thread; an
            # in-process drain (below) needs no such push and is
            # left to finish on its own.
            self._pool.close()
            self._worker.join(timeout)
        # Fail anything that slipped into the queue after the
        # worker's final drain (the submit()/close() race) — no
        # caller may be left blocking on a future nobody will
        # resolve.  Only when the worker is really gone: if the join
        # merely timed out mid-batch, the still-running worker will
        # drain (and answer) the queue itself, and stealing its
        # items would spuriously fail admitted queries.  Concurrent
        # closers may interleave here; ``get_nowait`` and ``_fail``
        # are both safe to race.
        if self._worker.is_alive():
            return
        while True:
            try:
                stranded = self._queue.get_nowait()
            except queue.Empty:
                break
            if stranded is not None:
                stranded._fail(
                    RuntimeError("scheduler closed before execution")
                )
        if self._gatherer is not None and self._gatherer.is_alive():
            # Everything the drain thread scattered is already in the
            # pipeline queue; the sentinel lands behind it, so the
            # gatherer resolves every in-flight group before exiting.
            # A second closer's extra sentinel is left unread if the
            # gatherer already exited, so never block on a full
            # pipeline forever.
            try:
                self._scattered.put(None, timeout=timeout)
            except queue.Full:  # pragma: no cover - wedged pipeline
                pass
            self._gatherer.join(timeout)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            if first is None:
                if self._closed.is_set() and self._queue.empty():
                    return
                continue
            window: List[ServingFuture] = [first]
            # Window timing runs on the monotonic clock: an NTP step of
            # the wall clock can neither freeze the linger (clock jumped
            # back) nor collapse it to zero (clock jumped forward).
            deadline = (
                time.monotonic() + self._linger if self._linger > 0 else None
            )
            while len(window) < self._window:
                try:
                    if deadline is None:
                        item = self._queue.get_nowait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining > 0 and not self._closed.is_set():
                            item = self._queue.get(timeout=remaining)
                        else:
                            item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    continue
                window.append(item)
            self._execute_window(window)
            if self._closed.is_set() and self._queue.empty():
                return

    def _execute_window(self, window: List[ServingFuture]) -> None:
        """Group a drained window by query shape and run one batch each.

        In-process mode executes the groups back to back on this
        thread; with a worker pool the k-hop groups are *scattered*
        first — one task per group, round-robin across the workers, all
        in flight at once — and gathered in submission order, so the
        window's groups execute concurrently on separate processes.
        Expression (RPQ) groups always run in-process: the pool protocol
        ships k-hop batches only.
        """
        by_key: Dict[Tuple[str, object], List[ServingFuture]] = {}
        for future in window:
            by_key.setdefault(future.group_key, []).append(future)
        groups = sorted(by_key.items())
        for key, group in groups:
            if self._pool is None or key[0] == "rpq":
                try:
                    self._execute_group(key, group)
                except BaseException as error:
                    for future in group:
                        future._fail(error)
                continue
            try:
                ticket = self._pool.submit_khop(
                    key[1], [future.source for future in group]
                )
            except BaseException as error:
                for future in group:
                    future._fail(error)
                continue
            self._scattered.put((group, ticket))

    def _gather(self) -> None:
        """Resolve scattered groups in submission order (pool mode)."""
        while True:
            item = self._scattered.get()
            if item is None:
                return
            group, ticket = item
            try:
                result, stats, epoch_id = ticket.outcome()
            except BaseException as error:
                for future in group:
                    future._fail(error)
                continue
            self._account_group(epoch_id, stats, len(group))
            for row, future in enumerate(group):
                future._resolve(result.destinations_of(row), stats)

    def _account_group(self, epoch_id: int, stats, group_size: int) -> None:
        """Stamp and count one executed group (in-process or pooled).

        One shared implementation keeps the stats of both execution
        paths bit-identical: the same counters are added in the same
        order whether the batch ran on this thread or on a worker
        process.
        """
        stats.add_counter("epoch", epoch_id)
        stats.add_counter("coalesced_queries", group_size)
        self._system._epochs.note_served(epoch_id, group_size)
        self.batches_executed += 1
        self.queries_served += group_size

    def _execute_group(
        self, key: Tuple[str, object], group: List[ServingFuture]
    ) -> None:
        if self._pim is None:
            # Pool mode reaching the in-process path (an expression
            # group): build the private platform/engine on first use.
            self._pim = PIMSystem(self._system.config.cost_model)
        if self._engine is None:
            self._engine = create_engine(
                self._engine_name, self._system._query_processor._runtime
            )
        manager = self._system._epochs
        epoch = manager.pin()
        try:
            view = EpochView(epoch, self._pim)
            kind, detail = key
            sources = [future.source for future in group]
            if kind == "khop":
                query = KHopQuery(hops=detail, sources=sources)
            else:
                query = RPQuery(expression=detail, sources=sources)
            result, stats = self._system._query_processor.execute_on_view(
                query, view, self._engine
            )
            self._account_group(epoch.epoch_id, stats, len(group))
            for row, future in enumerate(group):
                future._resolve(result.destinations_of(row), stats)
        finally:
            manager.unpin(epoch)
