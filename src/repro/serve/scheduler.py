"""The batch scheduler: coalescing admission control for concurrent readers.

The paper's system is built around *batch* path queries — one ``smxm``
cascade answers many sources at once — but concurrent clients each ask
for one source at a time.  :class:`BatchScheduler` bridges the two: it
admits client queries into a **bounded queue** (backpressure instead of
unbounded memory growth) and a single worker drains the queue in
windows, coalescing every compatible query (same hop count) into one
engine-level :class:`~repro.rpq.query.KHopQuery` executed against the
latest published epoch.  Eight clients asking 2-hop questions cost one
batched plan execution, not eight — which is where the serving layer's
throughput multiplier comes from (see
``benchmarks/bench_concurrent_serving.py``).

Every coalesced batch pins the newest epoch for exactly one execution,
so scheduled queries always observe a consistent published state while
the writer keeps publishing behind them.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.engine.base import create_engine
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import KHopQuery
from repro.serve.epoch import EpochView

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.system import Moctopus


class SchedulerSaturated(RuntimeError):
    """Raised when the admission queue is full and the caller won't wait."""


class ServingFuture:
    """Handle for one admitted query; resolves when its batch executes."""

    def __init__(self, source: int, hops: int) -> None:
        self.source = source
        self.hops = hops
        self._done = threading.Event()
        self._destinations: Optional[Set[int]] = None
        self._stats: Optional[ExecutionStats] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, destinations: Set[int], stats: ExecutionStats) -> None:
        if self._done.is_set():
            return  # first outcome wins (close/submit race)
        self._destinations = destinations
        self._stats = stats
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        if self._done.is_set():
            return
        self._error = error
        self._done.set()

    def done(self) -> bool:
        """Whether the query has been answered (or failed)."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Set[int]:
        """Destination set of the query (blocks until resolved)."""
        destinations, _ = self.outcome(timeout=timeout)
        return destinations

    def outcome(
        self, timeout: Optional[float] = None
    ) -> Tuple[Set[int], ExecutionStats]:
        """``(destinations, batch stats)`` — stats are shared across the
        coalesced batch this query rode in."""
        if not self._done.wait(timeout):
            raise TimeoutError("query not answered within timeout")
        if self._error is not None:
            raise self._error
        return self._destinations, self._stats


class BatchScheduler:
    """Coalesces concurrent client k-hop queries into engine batches."""

    def __init__(
        self,
        system: "Moctopus",
        engine: Optional[str] = None,
        batch_window: Optional[int] = None,
        queue_depth: Optional[int] = None,
        autostart: bool = True,
    ) -> None:
        self._system = system
        config = system.config
        if batch_window is None:
            batch_window = config.serve_batch_window
        if queue_depth is None:
            queue_depth = config.serve_queue_depth
        if batch_window < 1 or queue_depth < 1:
            raise ValueError("batch_window and queue_depth must be >= 1")
        self._window = batch_window
        self._queue: "queue.Queue[Optional[ServingFuture]]" = queue.Queue(
            maxsize=queue_depth
        )
        #: Private engine + accounting platform: the worker never shares
        #: execution scratch state with live callers or sessions.
        self._pim = PIMSystem(config.cost_model)
        self._engine = create_engine(
            engine or system.engine_name, system._query_processor._runtime
        )
        self._closed = threading.Event()
        self._worker = threading.Thread(
            target=self._run, name="moctopus-batch-scheduler", daemon=True
        )
        #: Scheduler-level counters (thread-safe under the GIL: single
        #: writer — the worker thread).
        self.batches_executed = 0
        self.queries_served = 0
        if autostart:
            self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(
        self,
        source: int,
        hops: int,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServingFuture:
        """Admit one single-source k-hop query.

        With ``block=False`` (or on timeout) a full queue raises
        :class:`SchedulerSaturated` — the bounded-admission contract.
        """
        if self._closed.is_set():
            raise RuntimeError("scheduler is closed")
        future = ServingFuture(source, hops)
        try:
            self._queue.put(future, block=block, timeout=timeout)
        except queue.Full:
            raise SchedulerSaturated(
                f"admission queue full ({self._queue.maxsize} waiting queries)"
            ) from None
        # close() may have raced us between the flag check and the put;
        # if the worker is already gone, nothing will ever drain this
        # future — fail it instead of letting result() block forever.
        if self._closed.is_set() and not self._worker.is_alive():
            future._fail(RuntimeError("scheduler closed during submit"))
        return future

    def query(self, source: int, hops: int) -> Set[int]:
        """Blocking convenience wrapper: submit and wait for the answer."""
        return self.submit(source, hops).result()

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the worker after draining already-admitted queries."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._queue.put_nowait(None)  # wake the worker early
        except queue.Full:
            pass  # the worker's poll loop notices the flag anyway
        if self._worker.is_alive():
            self._worker.join(timeout)
        # Fail anything that slipped into the queue after the worker's
        # final drain (the submit()/close() race) — no caller may be
        # left blocking on a future nobody will resolve.  Only when the
        # worker is really gone: if the join merely timed out mid-batch,
        # the still-running worker will drain (and answer) the queue
        # itself, and stealing its items would spuriously fail admitted
        # queries.
        if self._worker.is_alive():
            return
        while True:
            try:
                stranded = self._queue.get_nowait()
            except queue.Empty:
                break
            if stranded is not None:
                stranded._fail(RuntimeError("scheduler closed before execution"))

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            if first is None:
                if self._closed.is_set() and self._queue.empty():
                    return
                continue
            window: List[ServingFuture] = [first]
            while len(window) < self._window:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    continue
                window.append(item)
            self._execute_window(window)
            if self._closed.is_set() and self._queue.empty():
                return

    def _execute_window(self, window: List[ServingFuture]) -> None:
        """Group a drained window by hop count and run one batch each."""
        by_hops: Dict[int, List[ServingFuture]] = {}
        for future in window:
            by_hops.setdefault(future.hops, []).append(future)
        for hops, group in sorted(by_hops.items()):
            try:
                self._execute_group(hops, group)
            except BaseException as error:  # pragma: no cover - defensive
                for future in group:
                    future._fail(error)

    def _execute_group(self, hops: int, group: List[ServingFuture]) -> None:
        manager = self._system._epochs
        epoch = manager.pin()
        try:
            view = EpochView(epoch, self._pim)
            query = KHopQuery(
                hops=hops, sources=[future.source for future in group]
            )
            result, stats = self._system._query_processor.execute_on_view(
                query, view, self._engine
            )
            stats.add_counter("epoch", epoch.epoch_id)
            stats.add_counter("coalesced_queries", len(group))
            manager.note_served(epoch.epoch_id, len(group))
            self.batches_executed += 1
            self.queries_served += len(group)
            for row, future in enumerate(group):
                future._resolve(result.destinations_of(row), stats)
        finally:
            manager.unpin(epoch)
