"""Epochs: immutable point-in-time captures of the served graph.

The serving layer gives every reader a **snapshot-isolated** view of the
system: a reader pins an :class:`Epoch` — the frozen CSR snapshots of
every storage plus a frozen copy of the node-partition table — and all
of its queries execute against those arrays no matter how far the
single writer advances in the meantime.  Capturing an epoch is cheap by
construction: the storages' :class:`~repro.core.snapshot.SnapshotCache`
already maintains immutable CSR bases incrementally, so a capture is
``to_csr()`` per storage (a cache hit when nothing changed since the
last refresh) plus one memcpy of the owner table.

:class:`EpochManager` owns the publish lifecycle.  The single writer
marks the current epoch **stale** after every update batch / migration
pass; the next pin atomically captures and publishes a fresh epoch.
Old epochs stay registered (bounded by ``MoctopusConfig.epoch_retention``)
while pinned epochs are retained unconditionally — a session holding
epoch N keeps its arrays alive and bit-identical however many
compactions, merges and row migrations later epochs absorb.

:class:`EpochView` is the lens an execution engine actually receives
(the :class:`~repro.engine.base.PlanView` contract): the epoch's frozen
state, optionally patched with a session's uncommitted writes
(read-your-writes), plus a private accounting
:class:`~repro.pim.system.PIMSystem` so concurrent pinned executions
never share mutable phase counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from types import TracebackType
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.snapshot import GraphSnapshot, build_snapshot
from repro.partition.base import HOST_PARTITION
from repro.partition.owner_index import OwnerIndex
from repro.pim.system import PIMSystem


class LockLike(Protocol):
    """Any mutex usable as the manager's writer lock.

    ``threading.RLock`` is a factory function, not a type, so callables
    passing an (R)Lock — or an instrumented stand-in from
    ``repro.analysis.lockcheck`` — are typed against this protocol.
    """

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        ...

    def release(self) -> None:
        ...

    def __enter__(self) -> object:
        ...

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> object:
        ...


#: What :meth:`EpochManager._capture` returns: the per-partition frozen
#: snapshots, the frozen owner table, and the live node/edge counts.
CaptureResult = Tuple[Tuple[GraphSnapshot, ...], OwnerIndex, int, int]


class Epoch:
    """One immutable published version of the served graph.

    ``snapshots`` holds the per-module CSR captures followed by the host
    capture (index ``num_modules``); ``owners`` is a frozen
    :class:`OwnerIndex` copy of the partition table at capture time.
    """

    __slots__ = (
        "epoch_id",
        "snapshots",
        "owners",
        "num_nodes",
        "num_edges",
        "num_modules",
        "_degree_histogram",
        "_label_edge_counts",
        "_reverse_index",
    )

    def __init__(
        self,
        epoch_id: int,
        snapshots: Tuple[GraphSnapshot, ...],
        owners: OwnerIndex,
        num_nodes: int,
        num_edges: int,
    ) -> None:
        self.epoch_id = epoch_id
        self.snapshots = snapshots
        self.owners = owners
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.num_modules = len(snapshots) - 1
        self._degree_histogram: Optional[np.ndarray] = None
        self._label_edge_counts: Optional[Dict[int, int]] = None
        self._reverse_index: Optional[
            Tuple[Tuple[GraphSnapshot, ...], Dict[int, int]]
        ] = None

    def degree_histogram(self) -> np.ndarray:
        """Out-degree histogram across every pinned snapshot (cached).

        ``histogram[d]`` counts adjacency rows of out-degree ``d`` over
        all modules plus the host capture.  Each per-snapshot histogram
        is itself cached on its (immutable) :class:`GraphSnapshot`, so
        an epoch only pays the padded sum once — the substrate for the
        matrix engine's dense-vs-sparse frontier crossover and the
        roadmap's cost-based planner.
        """
        histogram = self._degree_histogram
        if histogram is None:
            parts = [snapshot.degree_histogram() for snapshot in self.snapshots]
            width = max(len(part) for part in parts)
            histogram = np.zeros(width, dtype=np.int64)
            for part in parts:
                histogram[: len(part)] += part
            histogram.flags.writeable = False
            self._degree_histogram = histogram
        return histogram

    def label_edge_counts(self) -> Dict[int, int]:
        """Edge count per label id across every pinned snapshot (cached).

        Feeds the cost-based planner's per-label fanout estimates: the
        expected frontier growth of an ``smxm`` step filtered to label
        ``l`` is ``count[l] / total_rows`` per frontier node.
        """
        counts = self._label_edge_counts
        if counts is None:
            counts = {}
            for snapshot in self.snapshots:
                if len(snapshot.labels) == 0:
                    continue
                values, occurrences = np.unique(
                    snapshot.labels, return_counts=True
                )
                for value, occurrence in zip(
                    values.tolist(), occurrences.tolist()
                ):
                    counts[value] = counts.get(value, 0) + occurrence
            self._label_edge_counts = counts
        return counts

    def reverse_index(
        self,
    ) -> Tuple[Tuple[GraphSnapshot, ...], Dict[int, int]]:
        """Reversed-adjacency snapshots of this epoch (cached, lazy).

        Returns ``(snapshots, extra_owners)``: per-partition CSR captures
        whose row for node ``v`` lists ``v``'s *in*-edges ``(u, label)``,
        in the same module/host layout as the forward snapshots.  A
        reversed row lands on its node's owner so reverse expansion
        charges the same placement-sensitive routing as forward
        expansion; nodes that only ever appeared as destinations have no
        owner, so they get the session layer's deterministic provisional
        placement (``node % num_modules``), recorded in ``extra_owners``.

        The build is a one-off O(edges) pass per epoch, shared by every
        reader of the epoch afterwards (the arrays are frozen).  This is
        the ``TransposedBlock`` idea lifted from per-snapshot blocks to a
        whole epoch, which is what the planner's reverse direction
        executes against.
        """
        cached = self._reverse_index
        if cached is None:
            in_rows: Dict[int, List[Tuple[int, int]]] = {}
            for snapshot in self.snapshots:
                if len(snapshot.dsts) == 0:
                    continue
                srcs = np.repeat(snapshot.node_ids, np.diff(snapshot.indptr))
                for dst, src, label in zip(
                    snapshot.dsts.tolist(),
                    srcs.tolist(),
                    snapshot.labels.tolist(),
                ):
                    in_rows.setdefault(dst, []).append((src, label))
            extra_owners: Dict[int, int] = {}
            per_partition: Dict[int, List[Tuple[int, List[Tuple[int, int]]]]] = {}
            for node, entries in in_rows.items():
                owner = self.owner(node)
                if owner is None:
                    owner = node % max(1, self.num_modules)
                    extra_owners[node] = owner
                per_partition.setdefault(owner, []).append((node, entries))
            partitions = list(range(self.num_modules)) + [HOST_PARTITION]
            reversed_snapshots = []
            for partition in partitions:
                base = self.snapshot_of(partition)
                rows = per_partition.get(partition, [])
                entry_count = sum(len(entries) for _, entries in rows)
                reversed_snapshots.append(
                    build_snapshot(
                        rows,
                        bytes_per_entry=base.bytes_per_entry,
                        working_set_bytes=max(
                            1, entry_count * base.bytes_per_entry
                        ),
                        count_local=(partition != HOST_PARTITION),
                    ).freeze()
                )
            cached = (tuple(reversed_snapshots), extra_owners)
            self._reverse_index = cached
        return cached

    def reverse_snapshot_of(self, partition: int) -> GraphSnapshot:
        """Reversed-adjacency snapshot of ``partition``."""
        snapshots, _ = self.reverse_index()
        if partition == HOST_PARTITION:
            return snapshots[self.num_modules]
        return snapshots[partition]

    def reverse_owner(self, node: int) -> Optional[int]:
        """Owner of ``node``'s reversed row (provisional for dst-only nodes)."""
        owner = self.owner(node)
        if owner is not None:
            return owner
        _, extra_owners = self.reverse_index()
        return extra_owners.get(node)

    def reverse_owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup against the reversed index."""
        owners = np.array(self.owners_of(nodes), copy=True)
        _, extra_owners = self.reverse_index()
        if extra_owners:
            for position in np.flatnonzero(owners == OwnerIndex.UNKNOWN).tolist():
                owners[position] = extra_owners.get(
                    int(nodes[position]), OwnerIndex.UNKNOWN
                )
        return owners

    def snapshot_of(self, partition: int) -> GraphSnapshot:
        """Pinned snapshot of ``partition`` (``HOST_PARTITION`` = host)."""
        if partition == HOST_PARTITION:
            return self.snapshots[self.num_modules]
        return self.snapshots[partition]

    def owner(self, node: int) -> Optional[int]:
        """Owner of ``node`` at this epoch (``None`` when unplaced)."""
        owner = self.owners.owner_of(node)
        return None if owner == OwnerIndex.UNKNOWN else owner

    def owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup against the frozen partition table."""
        return self.owners.owners_of(nodes)

    def total_rows(self) -> int:
        """Total adjacency rows across every pinned snapshot."""
        return sum(snapshot.num_rows for snapshot in self.snapshots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Epoch(id={self.epoch_id}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


class EpochView:
    """A :class:`~repro.engine.base.PlanView` over one pinned epoch.

    ``patched`` optionally overrides per-partition snapshots with
    session-patched ones (uncommitted writes spliced in with
    :func:`~repro.core.snapshot.merge_snapshot`); ``extra_owners`` maps
    session-created nodes to their provisional partitions so the
    engines can route frontiers through rows that exist only in the
    session's overlay.
    """

    def __init__(
        self,
        epoch: Epoch,
        pim: PIMSystem,
        patched: Optional[Dict[int, GraphSnapshot]] = None,
        extra_owners: Optional[Dict[int, int]] = None,
    ) -> None:
        self.epoch = epoch
        #: Private accounting platform (PlanView contract).
        self.pim = pim
        self._patched = patched or {}
        self._extra_owners = extra_owners or {}

    @property
    def epoch_id(self) -> int:
        """Identifier of the pinned epoch."""
        return self.epoch.epoch_id

    def is_patched(self) -> bool:
        """Whether the view overlays session-local (uncommitted) state.

        Patched views are invisible to the epoch-keyed plan/result
        caches and to reverse-direction planning — both are only sound
        against the epoch's frozen, shared state.
        """
        return bool(self._patched) or bool(self._extra_owners)

    def reverse_snapshot_of(self, partition: int) -> GraphSnapshot:
        """Reversed-adjacency snapshot (epoch-level; never patched)."""
        return self.epoch.reverse_snapshot_of(partition)

    def reverse_owner(self, node: int) -> Optional[int]:
        """Owner of ``node``'s reversed row at the pinned epoch."""
        return self.epoch.reverse_owner(node)

    def reverse_owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized reversed-row owner lookup at the pinned epoch."""
        return self.epoch.reverse_owners_of(nodes)

    def snapshot_of(self, partition: int) -> GraphSnapshot:
        """Pinned (possibly session-patched) snapshot of ``partition``."""
        patched = self._patched.get(partition)
        if patched is not None:
            return patched
        return self.epoch.snapshot_of(partition)

    def owner(self, node: int) -> Optional[int]:
        """Owner at the pinned epoch, extended with session-local nodes."""
        extra = self._extra_owners.get(node)
        if extra is not None:
            return extra
        return self.epoch.owner(node)

    def owners_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup, extended with session-local nodes."""
        owners = self.epoch.owners_of(nodes)
        if self._extra_owners:
            for position in np.flatnonzero(owners == OwnerIndex.UNKNOWN).tolist():
                owners[position] = self._extra_owners.get(
                    int(nodes[position]), OwnerIndex.UNKNOWN
                )
        return owners

    def total_rows(self) -> int:
        """Total adjacency rows across the view's snapshots."""
        total = 0
        for partition in range(self.epoch.num_modules):
            total += self.snapshot_of(partition).num_rows
        return total + self.snapshot_of(HOST_PARTITION).num_rows


class EpochManager:
    """Publishes, pins and retires epochs (single-writer / many-reader).

    All state transitions run under the lock shared with the owning
    system, so a capture can never interleave with a half-applied update
    batch: the writer holds the lock while mutating and marks the
    manager stale; the next ``pin()``/``current()`` captures a fresh
    epoch atomically under the same lock.
    """

    def __init__(
        self,
        capture: Callable[[], CaptureResult],
        retention: int,
        lock: Optional[LockLike] = None,
    ) -> None:
        self._capture = capture
        self._retention = retention
        self._lock: LockLike = (
            lock if lock is not None else threading.RLock()
        )
        self._epochs: "OrderedDict[int, Epoch]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._current: Optional[Epoch] = None
        self._stale = True
        self._next_id = 0
        #: Per-epoch serving counters: queries answered, batches executed.
        self._served: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Publish lifecycle
    # ------------------------------------------------------------------
    def mark_stale(self) -> None:
        """The live state moved past the current epoch (writer-side)."""
        with self._lock:
            self._stale = True

    def publish(self) -> Epoch:
        """Force-publish (and return) an epoch of the current live state.

        This is the durability layer's **checkpoint barrier**: a
        checkpoint serializes exactly the frozen arrays of a published
        epoch, so every checkpoint is a consistent point-in-time capture
        — it can never observe a half-applied update batch, because both
        publishing and the writer path run under the system's writer
        lock.  Equivalent to :meth:`current` (which also publishes when
        stale); the explicit name marks the barrier call sites.
        """
        return self.current()

    def restore_published_count(self, count: int) -> None:
        """Resume epoch numbering after recovery (ids stay monotonic)."""
        with self._lock:
            if self._epochs:
                raise RuntimeError("cannot renumber after epochs were published")
            self._next_id = count

    def current(self) -> Epoch:
        """The latest epoch, capturing and publishing a fresh one if stale."""
        with self._lock:
            epoch = self._current
            if self._stale or epoch is None:
                snapshots, owners, num_nodes, num_edges = self._capture()
                epoch = Epoch(
                    epoch_id=self._next_id,
                    snapshots=snapshots,
                    owners=owners,
                    num_nodes=num_nodes,
                    num_edges=num_edges,
                )
                self._next_id += 1
                self._epochs[epoch.epoch_id] = epoch
                self._current = epoch
                self._stale = False
                self._evict()
            return epoch

    def _evict(self) -> None:
        """Drop the oldest unpinned epochs past the retention bound."""
        overflow = len(self._epochs) - self._retention
        if overflow <= 0:
            return
        current = self._current
        for epoch_id in list(self._epochs):
            if overflow <= 0:
                break
            if current is not None and epoch_id == current.epoch_id:
                continue
            if self._pins.get(epoch_id, 0) > 0:
                continue
            del self._epochs[epoch_id]
            # Retire the serving counters with the epoch, or a
            # publish-per-batch service leaks one dict per epoch forever.
            self._served.pop(epoch_id, None)
            overflow -= 1

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self) -> Epoch:
        """Pin (and if necessary publish) the latest epoch."""
        with self._lock:
            epoch = self.current()
            self._pins[epoch.epoch_id] = self._pins.get(epoch.epoch_id, 0) + 1
            return epoch

    def unpin(self, epoch: Epoch) -> None:
        """Release one pin of ``epoch``; unpinned old epochs may retire."""
        with self._lock:
            count = self._pins.get(epoch.epoch_id, 0) - 1
            if count > 0:
                self._pins[epoch.epoch_id] = count
            else:
                self._pins.pop(epoch.epoch_id, None)
            self._evict()

    def pin_count(self, epoch_id: int) -> int:
        """Open pins on ``epoch_id`` (0 when unpinned or retired)."""
        with self._lock:
            return self._pins.get(epoch_id, 0)

    def pins(self) -> int:
        """Total open pins across every epoch (0 = no reader holds one).

        The leak detector of the serving suite: after every session,
        scheduler and worker-pool export has closed, this must return to
        zero — a nonzero residue means some path dropped an epoch
        without unpinning it, which permanently blocks retention
        eviction of that epoch.
        """
        with self._lock:
            return sum(self._pins.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def note_served(self, epoch_id: int, queries: int, batches: int = 1) -> None:
        """Record ``queries`` answered against ``epoch_id``."""
        with self._lock:
            entry = self._served.setdefault(
                epoch_id, {"queries": 0, "batches": 0}
            )
            entry["queries"] += queries
            entry["batches"] += batches

    @property
    def published_epochs(self) -> int:
        """Total number of epochs published so far."""
        with self._lock:
            return self._next_id

    def retained_ids(self) -> List[int]:
        """Ids of the epochs currently registered (oldest first)."""
        with self._lock:
            return list(self._epochs)

    def serving_report(self) -> Dict[int, Dict[str, int]]:
        """Serving counters of the *retained* epochs (id -> queries/batches).

        Counters retire together with their epoch, so the report stays
        bounded by ``epoch_retention`` however long the service runs.
        """
        with self._lock:
            return {
                epoch_id: dict(entry) for epoch_id, entry in self._served.items()
            }
