"""Durability: write-ahead logging, checkpoints and crash recovery.

Layout of a durability directory (``MoctopusConfig.durability_dir``)::

    <dir>/
      wal/           wal-00000000.seg, wal-00000001.seg, ...
      checkpoints/   ckpt-<lsn>/{state.npz, manifest.json}

:class:`DurabilityController` is the thin glue a live
:class:`~repro.core.system.Moctopus` drives: it owns the
:class:`~repro.durability.wal.WriteAheadLog`, counts applied batches,
and runs the background :class:`~repro.durability.checkpoint.
CheckpointDaemon` when ``checkpoint_interval_batches`` is set.  The
recovery entry point is :func:`repro.durability.recovery.recover`
(surfaced as ``Moctopus.recover``).
"""

from __future__ import annotations

import json
import os
import threading
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.durability import wal as wal_log
from repro.durability.checkpoint import (
    CheckpointDaemon,
    CheckpointError,
    capture_checkpoint,
    checkpoint_dir_path,
    config_to_dict,
    latest_checkpoint,
    persist_checkpoint,
    retained_checkpoint_lsns,
    write_checkpoint,
)
from repro.durability.wal import (
    CorruptWalError,
    WalGapError,
    WriteAheadLog,
    prune_segments,
    scan_wal,
)
from repro.graph.stream import UpdateOp

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import MoctopusConfig
    from repro.core.system import Moctopus

__all__ = [
    "CONFIG_MANIFEST",
    "CheckpointError",
    "CorruptWalError",
    "DurabilityController",
    "WalGapError",
    "WriteAheadLog",
    "config_to_dict",
    "latest_checkpoint",
    "prune_segments",
    "read_config_manifest",
    "retained_checkpoint_lsns",
    "scan_wal",
    "wal_directory",
    "write_checkpoint",
    "write_config_manifest",
]


def wal_directory(durability_dir: str) -> str:
    """WAL segment directory under a durability root."""
    return os.path.join(durability_dir, "wal")


#: Name of the config echo written when a durability directory is first
#: initialized, so ``Moctopus.recover`` can rebuild with the writer's
#: configuration even when the crash predates the first checkpoint.
CONFIG_MANIFEST = "config.json"


def write_config_manifest(durability_dir: str, config: "MoctopusConfig") -> None:
    """Persist the writer's config echo (write-if-absent, atomic)."""
    path = os.path.join(durability_dir, CONFIG_MANIFEST)
    if os.path.exists(path):
        return
    payload = json.dumps(
        {"format": 1, "config": config_to_dict(config)}, sort_keys=True
    ).encode("utf-8")
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb", buffering=0) as handle:
        wal_log.wal_write(handle, payload)
    os.replace(tmp_path, path)


def read_config_manifest(durability_dir: str) -> Optional[Dict]:
    """The config echo of ``durability_dir`` (``None`` when unreadable)."""
    path = os.path.join(durability_dir, CONFIG_MANIFEST)
    try:
        with open(path, "rb") as handle:
            data = json.loads(handle.read().decode("utf-8"))
    except (OSError, ValueError):
        return None
    if data.get("format") != 1 or "config" not in data:
        return None
    return data["config"]


class DurabilityController:
    """Per-system durability state: the WAL, counters, and the daemon."""

    def __init__(
        self,
        system: "Moctopus",
        config: "MoctopusConfig",
        resume_lsn: Optional[int] = None,
    ) -> None:
        self._system = system
        self._config = config
        root = config.durability_dir
        os.makedirs(self.checkpoint_directory(root), exist_ok=True)
        # Recovery already scanned the log, truncated the torn tail and
        # applied everything through resume_lsn; passing it through lets
        # the appender skip a second full CRC scan of the history.
        self.wal = WriteAheadLog(
            wal_directory(root),
            segment_bytes=config.wal_segment_bytes,
            fsync=config.wal_fsync,
            resume_lsn=resume_lsn,
        )
        if resume_lsn is None and self.wal.last_lsn != 0:
            # A fresh system attaching over existing history would append
            # a second bootstrap and make the log unreplayable.  This is
            # almost always a restart that should have recovered instead.
            last_lsn = self.wal.last_lsn
            self.wal.close()
            raise CorruptWalError(
                f"durability directory {root!r} already holds a log "
                f"(lsn {last_lsn}); open it with "
                "Moctopus.recover() instead of constructing a new system"
            )
        write_config_manifest(root, config)
        #: Batches applied since the last checkpoint (daemon trigger).
        self.batches_since_checkpoint = 0
        #: Serializes whole checkpoint passes (a manual ``checkpoint()``
        #: racing the daemon) without involving the writer lock.
        self._checkpoint_mutex = threading.Lock()
        #: Last exception the background checkpointer swallowed (``None``
        #: when healthy); the daemon retries on the next interval and the
        #: flag clears on the next successful checkpoint.
        self.last_checkpoint_error: Optional[Exception] = None
        #: Set (to the causing exception) when post-apply journaling
        #: failed: the in-memory state has then moved past the durable
        #: history, so further logging would record batches against a
        #: baseline recovery can no longer reconstruct.  All log hooks
        #: refuse until the process restarts through ``recover()``.
        self.failed: Optional[BaseException] = None
        self._daemon: Optional[CheckpointDaemon] = None
        if config.checkpoint_interval_batches > 0:
            self._daemon = CheckpointDaemon(self)
            self._daemon.start()

    @staticmethod
    def checkpoint_directory(durability_dir: str) -> str:
        """Checkpoint directory under a durability root."""
        return os.path.join(durability_dir, "checkpoints")

    # ------------------------------------------------------------------
    # Logging hooks (called by the system, under its writer lock)
    # ------------------------------------------------------------------
    def _check_healthy(self) -> None:
        if self.failed is not None:
            raise CorruptWalError(
                "durability failed earlier (in-memory state moved past the "
                "durable history); restart via Moctopus.recover()"
            ) from self.failed

    def log_bootstrap(
        self, edges: Sequence[Tuple[int, int, int]], nodes: Sequence[int]
    ) -> int:
        """Write-ahead the initial bulk load."""
        self._check_healthy()
        return self.wal.append_bootstrap(edges, nodes)

    def log_batch(
        self, ops: Sequence[UpdateOp], labels: Optional[Sequence[int]]
    ) -> int:
        """Write-ahead one update batch (call before applying).

        A failure here is retryable: nothing has been applied yet (the
        appender repairs its own torn tail on the next attempt), so the
        caller's state and the durable history still agree.
        """
        self._check_healthy()
        return self.wal.append_batch(ops, labels)

    def log_abort(self, aborted_lsn: int, cause: BaseException) -> int:
        """Compensate a write-ahead batch whose apply raised.

        Also latches the controller as failed: the raising
        ``apply_batch`` may have partially mutated in-memory state, so
        later batches would be logged against a baseline replay cannot
        reconstruct (recovery skips the aborted batch *entirely*).  The
        durable history stays recoverable — it just ends here.
        """
        self._check_healthy()
        try:
            lsn = self.wal.append_abort(aborted_lsn)
        except BaseException as error:
            # Even the compensation failed: without the latch, the next
            # batch would bury the un-compensated record mid-log where
            # recovery's implicit-abort fallback (tail records only) can
            # no longer reach it.
            self.failed = error
            raise
        self.failed = cause
        return lsn

    def log_migrations(self, moves: Sequence[Tuple[int, int, int]]) -> int:
        """Journal one maintenance pass's applied moves (redo).

        Unlike :meth:`log_batch`, this runs *after* the moves mutated
        state.  If the append fails, the live system has advanced past
        what the log can reconstruct — so the controller latches
        ``failed`` and refuses all further logging rather than let later
        batches be recorded against an owner table recovery will never
        rebuild (silent divergence).
        """
        self._check_healthy()
        try:
            return self.wal.append_migrations(moves)
        except BaseException as error:
            self.failed = error
            raise

    def note_batch_applied(self) -> None:
        """Bump the checkpoint trigger after a batch finished applying."""
        self.batches_since_checkpoint += 1
        interval = self._config.checkpoint_interval_batches
        if (
            self._daemon is not None
            and interval > 0
            and self.batches_since_checkpoint >= interval
        ):
            self._daemon.notify()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint_now(self) -> str:
        """Write a checkpoint of the current state (synchronous).

        The writer lock is held only for the *capture* (cheap: frozen
        epoch arrays plus counter copies); the serialization, disk
        writes, fsyncs and WAL pruning all run with the lock released,
        so updates and live queries are never stalled behind checkpoint
        I/O.  After a successful checkpoint, WAL segments that every
        retained checkpoint already covers are pruned — both the
        on-disk footprint and recovery's replay stay bounded by the
        checkpoint cadence instead of growing with total history.
        """
        self._check_healthy()
        root = self._config.durability_dir
        ckpt_dir = self.checkpoint_directory(root)
        with self._checkpoint_mutex:
            with self._system._serve_lock:
                lsn = self.wal.last_lsn
                self.batches_since_checkpoint = 0
                if os.path.exists(checkpoint_dir_path(ckpt_dir, lsn)):
                    self.last_checkpoint_error = None
                    return checkpoint_dir_path(ckpt_dir, lsn)
                manifest, arrays = capture_checkpoint(self._system)
            path = persist_checkpoint(
                manifest, arrays, ckpt_dir, lsn, fsync=self._config.wal_fsync
            )
            self.last_checkpoint_error = None
            retained = retained_checkpoint_lsns(ckpt_dir)
            if retained:
                prune_segments(wal_directory(root), min(retained))
            return path

    def checkpoint_if_due(self) -> Optional[str]:
        """Daemon entry point: checkpoint when the interval elapsed."""
        interval = self._config.checkpoint_interval_batches
        if interval <= 0 or self.batches_since_checkpoint < interval:
            return None
        return self.checkpoint_now()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the daemon and close the log."""
        if self._daemon is not None:
            self._daemon.stop()
            self._daemon = None
        self.wal.close()
