"""Snapshot checkpoints: bounded-replay anchors for recovery.

A checkpoint is a full-fidelity serialization of everything a recovered
system needs to continue **bit-identically**:

* the frozen CSR arrays of every storage, captured through
  :meth:`~repro.serve.epoch.EpochManager.publish` — the checkpoint
  barrier — so the arrays are exactly a published epoch (consistent by
  construction: publishing and the writer path share one lock);
* the heterogeneous storage's positional internals (slot layout,
  capacities, free-list order) that a CSR view cannot express but the
  split update protocol's future costs depend on;
* the ``node_partition_vector`` (which is the :class:`~repro.partition.
  owner_index.OwnerIndex`'s source of truth), the labor-division
  degree counters, and the placement/migration counters;
* the simulated platform's lifetime counters and the epoch numbering,
  so diagnostics and epoch ids stay continuous across a crash.

On disk a checkpoint is a directory ``ckpt-<lsn>`` holding ``state.npz``
(the arrays) and ``manifest.json`` (scalars, counters, the config echo
and the WAL position the checkpoint covers).  Both files are written
into a ``.tmp`` sibling first and the directory is renamed into place
last, so a crash mid-checkpoint leaves either the previous checkpoint or
a ``.tmp`` orphan — never a half-readable "latest".  All writes go
through :func:`repro.durability.wal.wal_write` so the fault-injection
harness can tear a checkpoint at any byte.

The background checkpoint daemon (:class:`CheckpointDaemon`) watches the
batch counter and writes a checkpoint under the system's writer lock
every ``MoctopusConfig.checkpoint_interval_batches`` applied batches.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import shutil
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.snapshot import GraphSnapshot
from repro.durability import wal as wal_log
from repro.partition.base import HOST_PARTITION

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import MoctopusConfig
    from repro.core.system import Moctopus

#: On-disk format version (bump on incompatible layout changes).
CHECKPOINT_FORMAT = 1
#: How many finished checkpoints to keep (older ones are pruned).
CHECKPOINT_RETENTION = 2

_CKPT_PREFIX = "ckpt-"
_STATE_FILE = "state.npz"
_MANIFEST_FILE = "manifest.json"


@dataclass
class CheckpointState:
    """A loaded checkpoint, ready to be restored into a fresh system."""

    lsn: int
    manifest: Dict
    arrays: Dict[str, np.ndarray]
    path: str


class CheckpointError(RuntimeError):
    """A checkpoint directory failed validation on load."""


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def _snapshot_arrays(prefix: str, snapshot: GraphSnapshot, arrays: Dict) -> Dict:
    arrays[f"{prefix}_node_ids"] = snapshot.node_ids
    arrays[f"{prefix}_indptr"] = snapshot.indptr
    arrays[f"{prefix}_dsts"] = snapshot.dsts
    arrays[f"{prefix}_labels"] = snapshot.labels
    arrays[f"{prefix}_local_counts"] = snapshot.local_counts
    return {
        "bytes_per_entry": snapshot.bytes_per_entry,
        "working_set_bytes": snapshot.working_set_bytes,
        "num_edges": snapshot.num_edges,
    }


def _concat_ragged(rows: List[List]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a ragged int list-of-lists into (indptr, values)."""
    lengths = np.fromiter((len(row) for row in rows), dtype=np.int64, count=len(rows))
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    flat = [value for row in rows for value in row]
    return indptr, np.asarray(flat, dtype=np.int64)


def capture_checkpoint(system: "Moctopus") -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Gather a checkpoint's manifest and arrays (caller holds the lock)."""
    epoch = system._epochs.publish()
    arrays: Dict[str, np.ndarray] = {}
    storages_meta = []
    for module_id in range(epoch.num_modules):
        storages_meta.append(
            _snapshot_arrays(f"m{module_id}", epoch.snapshots[module_id], arrays)
        )
    host_meta = _snapshot_arrays(
        "host", epoch.snapshot_of(HOST_PARTITION), arrays
    )

    hetero = system._host_storage.capture_state()
    arrays["hx_row_ids"] = np.asarray(hetero["row_ids"], dtype=np.int64)
    arrays["hx_caps"] = np.asarray(hetero["capacities"], dtype=np.int64)
    occ_indptr, occ_flat = _concat_ragged(
        [
            [value for slot in row for value in slot]
            for row in hetero["occupied"]
        ]
    )
    arrays["hx_occ_indptr"] = occ_indptr
    arrays["hx_occ_flat"] = occ_flat
    free_indptr, free_flat = _concat_ragged(hetero["free_lists"])
    arrays["hx_free_indptr"] = free_indptr
    arrays["hx_free_flat"] = free_flat

    partition = system._partitioner.capture_state()
    assignments = np.asarray(
        partition["assignments"], dtype=np.int64
    ).reshape(len(partition["assignments"]), 2)
    arrays["p_assignments"] = assignments
    degrees = np.asarray(partition["out_degrees"], dtype=np.int64).reshape(
        len(partition["out_degrees"]), 2
    )
    arrays["ld_out_degrees"] = degrees
    pending = np.asarray(
        system._migrator.capture_pending(), dtype=np.int64
    ).reshape(-1, 3)
    arrays["mig_pending"] = pending

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "config": config_to_dict(system.config),
        "num_modules": epoch.num_modules,
        "num_nodes": epoch.num_nodes,
        "num_edges": epoch.num_edges,
        "storages": storages_meta,
        "host_storage": host_meta,
        "partition_counters": {
            "greedy_placements": partition["greedy_placements"],
            "fallback_placements": partition["fallback_placements"],
            "promotions": partition["promotions"],
            "migrations_performed": system._migrator.migrations_performed,
            "promotions_performed": system._migrator.promotions_performed,
            "batches_applied": system._update_processor.batches_applied,
        },
        "pim": system.pim.capture_lifetime(),
        "published_epochs": system._epochs.published_epochs,
    }
    return manifest, arrays


def config_to_dict(config: "MoctopusConfig") -> Dict:
    """The config as JSON, with durability paths stripped.

    The durability directory is a property of where the log *lives*,
    not of the logical system state; recovery re-attaches it from the
    recover() call site so a checkpoint directory can be moved or
    copied wholesale.
    """
    data = dataclasses.asdict(config)
    data.pop("durability_dir", None)
    return data


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def checkpoint_dir_path(directory: str, lsn: int) -> str:
    """Final path of the checkpoint covering the WAL prefix up to ``lsn``."""
    return os.path.join(directory, f"{_CKPT_PREFIX}{lsn:016d}")


def _write_file(path: str, payload: bytes, fsync: bool) -> None:
    # Resolved through the module so the fault-injection harness's
    # monkeypatch of ``wal.wal_write`` also tears checkpoint writes.
    with open(path, "ab", buffering=0) as handle:
        wal_log.wal_write(handle, payload)
        if fsync:
            # repro: noqa REP003 — file-handle fsync has no funnel; the
            # payload above went through wal_write (the crash axis).
            os.fsync(handle.fileno())


def _fsync_directory(path: str) -> None:
    # Resolved through the wal module (the shared durable-write hook
    # surface) so the fault-injection harness's monkeypatch of
    # ``wal.fsync_directory`` also crashes checkpoint directory fsyncs.
    wal_log.fsync_directory(path)


def persist_checkpoint(
    manifest: Dict,
    arrays: Dict[str, np.ndarray],
    directory: str,
    lsn: int,
    fsync: bool = False,
) -> str:
    """Write an already-captured checkpoint to disk.

    This is the I/O half of checkpointing and needs **no lock**: the
    captured arrays are frozen epoch snapshots and private copies, so
    the writer can keep applying batches while the serialization runs.
    ``fsync`` extends the system's power-loss contract to checkpoints:
    file contents and directory entries are forced to stable storage
    before the rename publishes the checkpoint — callers prune WAL
    segments on the strength of it, so under ``wal_fsync`` the
    checkpoint must be at least as durable as the log it retires.
    Returns the finished checkpoint's path.
    """
    final_path = checkpoint_dir_path(directory, lsn)
    if os.path.exists(final_path):
        # Re-checkpointing the same prefix (e.g. idle interval): the
        # existing capture is already equivalent.
        return final_path
    manifest = dict(manifest)
    manifest["lsn"] = lsn
    tmp_path = final_path + ".tmp"
    if os.path.exists(tmp_path):
        shutil.rmtree(tmp_path)
    os.makedirs(tmp_path)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    _write_file(os.path.join(tmp_path, _STATE_FILE), buffer.getvalue(), fsync)
    _write_file(
        os.path.join(tmp_path, _MANIFEST_FILE),
        json.dumps(manifest, sort_keys=True).encode("utf-8"),
        fsync,
    )
    if fsync:
        _fsync_directory(tmp_path)
    os.replace(tmp_path, final_path)
    if fsync:
        _fsync_directory(directory)
    _prune(directory)
    return final_path


def write_checkpoint(
    system: "Moctopus", directory: str, lsn: int, fsync: bool = False
) -> str:
    """Capture and persist a checkpoint in one call (caller holds the lock).

    Convenience composition of :func:`capture_checkpoint` and
    :func:`persist_checkpoint`; the live controller splits the two so
    only the capture runs under the writer lock.
    """
    if os.path.exists(checkpoint_dir_path(directory, lsn)):
        return checkpoint_dir_path(directory, lsn)
    manifest, arrays = capture_checkpoint(system)
    return persist_checkpoint(manifest, arrays, directory, lsn, fsync=fsync)


def _prune(directory: str) -> None:
    """Drop finished checkpoints past the retention bound, and orphans."""
    finished = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith(_CKPT_PREFIX) and not name.endswith(".tmp")
    )
    for name in finished[:-CHECKPOINT_RETENTION]:
        shutil.rmtree(os.path.join(directory, name), ignore_errors=True)
    for name in os.listdir(directory):
        if name.endswith(".tmp"):
            shutil.rmtree(os.path.join(directory, name), ignore_errors=True)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_checkpoint(path: str) -> CheckpointState:
    """Load and validate one checkpoint directory."""
    manifest_path = os.path.join(path, _MANIFEST_FILE)
    state_path = os.path.join(path, _STATE_FILE)
    try:
        with open(manifest_path, "rb") as handle:
            manifest = json.loads(handle.read().decode("utf-8"))
        with open(state_path, "rb") as handle:
            with np.load(io.BytesIO(handle.read())) as bundle:
                arrays = {key: bundle[key] for key in bundle.files}
    except (OSError, ValueError, KeyError) as error:
        raise CheckpointError(f"unreadable checkpoint at {path}: {error}")
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {manifest.get('format')!r}"
        )
    return CheckpointState(
        lsn=int(manifest["lsn"]), manifest=manifest, arrays=arrays, path=path
    )


def retained_checkpoint_lsns(directory: str) -> List[int]:
    """LSNs of the finished checkpoints on disk, oldest first."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        int(name[len(_CKPT_PREFIX) :])
        for name in os.listdir(directory)
        if name.startswith(_CKPT_PREFIX) and not name.endswith(".tmp")
    )


def latest_checkpoint(directory: str) -> Optional[CheckpointState]:
    """The newest *valid* checkpoint under ``directory`` (``None`` if none).

    A finished-looking directory that fails validation is skipped (not
    deleted) and the next older one is tried — a torn manifest must
    never mask an older good checkpoint.
    """
    if not os.path.isdir(directory):
        return None
    finished = sorted(
        (
            name
            for name in os.listdir(directory)
            if name.startswith(_CKPT_PREFIX) and not name.endswith(".tmp")
        ),
        reverse=True,
    )
    for name in finished:
        try:
            return load_checkpoint(os.path.join(directory, name))
        except CheckpointError:
            continue
    return None


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def _snapshot_from_arrays(prefix: str, meta: Dict, arrays: Dict) -> GraphSnapshot:
    return GraphSnapshot(
        node_ids=arrays[f"{prefix}_node_ids"],
        indptr=arrays[f"{prefix}_indptr"],
        dsts=arrays[f"{prefix}_dsts"],
        labels=arrays[f"{prefix}_labels"],
        local_counts=arrays[f"{prefix}_local_counts"],
        bytes_per_entry=int(meta["bytes_per_entry"]),
        working_set_bytes=int(meta["working_set_bytes"]),
    )


def _rows_from_snapshot(snapshot: GraphSnapshot) -> Dict[int, List[Tuple[int, int]]]:
    rows: Dict[int, List[Tuple[int, int]]] = {}
    indptr = snapshot.indptr
    dsts = snapshot.dsts.tolist()
    labels = snapshot.labels.tolist()
    for index, node in enumerate(snapshot.node_ids.tolist()):
        start, stop = int(indptr[index]), int(indptr[index + 1])
        rows[node] = list(zip(dsts[start:stop], labels[start:stop]))
    return rows


def restore_into(system: "Moctopus", state: CheckpointState) -> None:
    """Restore a checkpoint into a freshly constructed ``system``.

    The storages, partitioner and mirror are rebuilt in place (the
    processors, migrator and engine runtime keep their references), the
    snapshot caches are seeded with the checkpoint's frozen arrays, and
    the lifetime/diagnostic counters resume where the crashed process
    left them.  Restore fidelity is validated against the manifest's
    recorded working-set and edge totals — a mismatch means the capture
    and restore code drifted apart, and failing loudly here beats
    diverging silently later.
    """
    manifest, arrays = state.manifest, state.arrays
    num_modules = int(manifest["num_modules"])
    if num_modules != system.num_modules:
        raise CheckpointError(
            f"checkpoint has {num_modules} modules, system has "
            f"{system.num_modules}"
        )

    for module_id in range(num_modules):
        meta = manifest["storages"][module_id]
        snapshot = _snapshot_from_arrays(f"m{module_id}", meta, arrays)
        storage = system._module_storages[module_id]
        storage.restore_rows(_rows_from_snapshot(snapshot), base=snapshot)
        if storage.num_edges != int(meta["num_edges"]):
            raise CheckpointError(
                f"module {module_id} restored {storage.num_edges} edges, "
                f"checkpoint recorded {meta['num_edges']}"
            )

    host_meta = manifest["host_storage"]
    host_snapshot = _snapshot_from_arrays("host", host_meta, arrays)
    occ_indptr = arrays["hx_occ_indptr"]
    occ_flat = arrays["hx_occ_flat"].reshape(-1, 3)
    free_indptr = arrays["hx_free_indptr"]
    free_flat = arrays["hx_free_flat"]
    hetero_state = {
        "row_ids": arrays["hx_row_ids"].tolist(),
        "capacities": arrays["hx_caps"].tolist(),
        "occupied": [
            [tuple(slot) for slot in occ_flat[start // 3 : stop // 3].tolist()]
            for start, stop in zip(occ_indptr[:-1], occ_indptr[1:])
        ],
        "free_lists": [
            free_flat[start:stop].tolist()
            for start, stop in zip(free_indptr[:-1], free_indptr[1:])
        ],
    }
    system._host_storage.restore_state(hetero_state, base=host_snapshot)
    expected_ws = int(host_meta["working_set_bytes"])
    actual_ws = max(system._host_storage.total_bytes(), 1)
    if actual_ws != expected_ws:
        raise CheckpointError(
            f"host storage restored working set {actual_ws}, checkpoint "
            f"recorded {expected_ws}"
        )

    counters = manifest["partition_counters"]
    system._partitioner.restore_state(
        {
            "assignments": [
                tuple(pair) for pair in arrays["p_assignments"].tolist()
            ],
            "out_degrees": [
                tuple(pair) for pair in arrays["ld_out_degrees"].tolist()
            ],
            "greedy_placements": counters["greedy_placements"],
            "fallback_placements": counters["fallback_placements"],
            "promotions": counters["promotions"],
        }
    )
    system._migrator.migrations_performed = int(counters["migrations_performed"])
    system._migrator.promotions_performed = int(counters["promotions_performed"])
    system._update_processor.batches_applied = int(counters["batches_applied"])
    system._migrator.restore_pending(
        [tuple(row) for row in arrays["mig_pending"].tolist()]
    )

    # The mirror is the union of every storage's rows; node registration
    # follows the partition map so isolated nodes survive too.
    for node, _ in arrays["p_assignments"].tolist():
        system._mirror.add_node(node)
    for module_id in range(num_modules):
        storage = system._module_storages[module_id]
        for node in sorted(storage.rows()):
            for dst, label in storage.next_hops_with_labels(node):
                system._mirror.add_edge(node, dst, label)
    host = system._host_storage
    for node in sorted(host.rows()):
        for dst, label in host.next_hops_with_labels(node):
            system._mirror.add_edge(node, dst, label)
    if system._mirror.num_edges != int(manifest["num_edges"]):
        raise CheckpointError(
            f"mirror restored {system._mirror.num_edges} edges, checkpoint "
            f"recorded {manifest['num_edges']}"
        )

    system.pim.restore_lifetime(manifest["pim"])
    system._epochs.restore_published_count(int(manifest["published_epochs"]))
    system._epochs.mark_stale()


# ----------------------------------------------------------------------
# The background checkpointer
# ----------------------------------------------------------------------
class CheckpointDaemon(threading.Thread):
    """Writes checkpoints off the update path, under the writer lock.

    The update path only bumps a counter and sets an event; this thread
    wakes, takes the system's writer lock (so the capture is a
    consistent epoch — the same barrier the synchronous path uses) and
    writes the checkpoint.  Losing a checkpoint to a crash is always
    safe: recovery just replays a longer WAL tail.
    """

    def __init__(self, controller) -> None:
        super().__init__(name="moctopus-checkpointer", daemon=True)
        self._controller = controller
        self._wake = threading.Event()
        self._shutdown = False

    def notify(self) -> None:
        """Signal that the batch counter may have crossed the interval."""
        self._wake.set()

    def stop(self) -> None:
        """Ask the daemon to exit and wait for it."""
        self._shutdown = True
        self._wake.set()
        self.join(timeout=10.0)

    def run(self) -> None:  # pragma: no cover - exercised via liveness test
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._shutdown:
                return
            try:
                self._controller.checkpoint_if_due()
            except Exception as error:
                # A transient failure (disk full, permissions) must not
                # kill the daemon: skipping a checkpoint is always safe
                # (recovery just replays a longer tail).  The error is
                # surfaced on the controller and retried next interval.
                self._controller.last_checkpoint_error = error
