"""Segmented, checksummed write-ahead log of the system's logical history.

The durable truth of a Moctopus instance is a sequence of **records**,
each stamped with a monotonically increasing LSN (log sequence number):

* ``BOOTSTRAP`` — the initial bulk load (every edge in replay order plus
  the node list, so the radical greedy partitioner re-observes the exact
  stream it saw the first time);
* ``BATCH`` — one update batch (the ``UpdateOp`` stream plus optional
  per-op labels), appended *before* ``UpdateProcessor.apply_batch``
  mutates any state (write-ahead: a batch is committed once its record
  is on disk, whether or not the process survives the in-memory apply);
* ``MIGRATIONS`` — the partition-map change journal of one maintenance
  pass (``(node, from_module, to_module)`` triples), appended *after*
  the moves are applied (a redo journal: migration decisions depend on
  volatile misplacement reports, so they are logged as outcomes, not
  re-derived).

Records are written to fixed-size-bounded **segments**
(``wal-<n>.seg``); a record never spans segments.  Each record carries a
CRC-32 over its header and payload, so recovery can distinguish a torn
tail (the crash hit mid-write: truncate and continue) from corruption in
the middle of the log (hard error).  Replaying the same segment twice is
idempotent — records whose LSN is not past the already-applied prefix
are skipped.

All physical writes funnel through :func:`wal_write`, which the
fault-injection harness monkeypatches to kill the process at (and in the
middle of) every durable write — that hook is what makes the crash
matrix in ``tests/test_durability.py`` deterministic.  Files are opened
unbuffered so a partial write is really on the OS side when the
simulated crash hits.

Durability caveat: by default the log relies on the OS page cache
(``flush`` per record, no ``fsync``) — that survives process crashes,
which is what the simulator models.  Set ``MoctopusConfig.wal_fsync``
for power-loss durability at the usual latency cost.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.stream import UpdateKind, UpdateOp

#: First two bytes of every record.
RECORD_MAGIC = b"WR"
#: Header layout after the magic: type (1B) | lsn (8B) | payload length (4B).
_HEADER = struct.Struct("<BQI")
#: Trailing CRC-32 of (type | lsn | length | payload).
_CRC = struct.Struct("<I")
#: Fixed bytes around a record's payload.
RECORD_OVERHEAD = len(RECORD_MAGIC) + _HEADER.size + _CRC.size

#: Record types.
RT_BOOTSTRAP = 1
RT_BATCH = 2
RT_MIGRATIONS = 3
#: Compensation marker: the batch at the referenced LSN raised while
#: applying and must be skipped on replay (transaction aborted).
RT_ABORT = 4

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


class CorruptWalError(RuntimeError):
    """A WAL segment is damaged somewhere other than its final record."""


class WalGapError(CorruptWalError):
    """The LSN sequence has a hole (a segment went missing)."""


def wal_write(handle, payload: bytes) -> None:
    """Write ``payload`` to an (unbuffered) file handle.

    Every durable byte of the WAL *and* of checkpoints goes through this
    one function so the fault-injection harness can crash the process at
    any write boundary — or after only a prefix of ``payload``, which is
    how torn records and torn checkpoints are manufactured
    deterministically.
    """
    handle.write(payload)


def fsync_directory(path: str) -> None:
    """``fsync`` a directory so its entry table is on stable storage.

    Under ``wal_fsync`` a fully-fsynced file is not durable until its
    *directory entry* is too: a power loss after the file's fsync but
    before the directory's can orphan the bytes in an unlinked inode.
    Both durability sites that create or rename durable files — WAL
    segment creation here and the checkpoint ``os.replace`` in
    :mod:`repro.durability.checkpoint` — route through this one
    function, which (like :func:`wal_write`) the fault-injection
    harness monkeypatches to crash at every directory-fsync boundary.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Record encoding
# ----------------------------------------------------------------------
def encode_record(record_type: int, lsn: int, payload: bytes) -> bytes:
    """Frame ``payload`` as one WAL record."""
    header = _HEADER.pack(record_type, lsn, len(payload))
    crc = zlib.crc32(header)
    crc = zlib.crc32(payload, crc)
    return RECORD_MAGIC + header + payload + _CRC.pack(crc)


def encode_batch(
    ops: Sequence[UpdateOp], labels: Optional[Sequence[int]]
) -> bytes:
    """Payload of a ``BATCH`` record.

    Layout: has_labels flag (1B) | count (8B) | kinds ``uint8[count]`` |
    srcs/dsts (and labels when flagged) ``int64[count]`` each.
    """
    count = len(ops)
    kinds = np.fromiter(
        (op.kind is UpdateKind.INSERT for op in ops), dtype=np.uint8, count=count
    )
    srcs = np.fromiter((op.src for op in ops), dtype=np.int64, count=count)
    dsts = np.fromiter((op.dst for op in ops), dtype=np.int64, count=count)
    chunks = [
        struct.pack("<BQ", 1 if labels is not None else 0, count),
        kinds.tobytes(),
        srcs.tobytes(),
        dsts.tobytes(),
    ]
    if labels is not None:
        chunks.append(
            np.fromiter(labels, dtype=np.int64, count=count).tobytes()
        )
    return b"".join(chunks)


def decode_batch(payload: bytes) -> Tuple[List[UpdateOp], Optional[List[int]]]:
    """Inverse of :func:`encode_batch`."""
    has_labels, count = struct.unpack_from("<BQ", payload, 0)
    offset = struct.calcsize("<BQ")
    kinds = np.frombuffer(payload, dtype=np.uint8, count=count, offset=offset)
    offset += count
    srcs = np.frombuffer(payload, dtype=np.int64, count=count, offset=offset)
    offset += 8 * count
    dsts = np.frombuffer(payload, dtype=np.int64, count=count, offset=offset)
    offset += 8 * count
    labels: Optional[List[int]] = None
    if has_labels:
        labels = np.frombuffer(
            payload, dtype=np.int64, count=count, offset=offset
        ).tolist()
    ops = [
        UpdateOp(
            UpdateKind.INSERT if kind else UpdateKind.DELETE, int(src), int(dst)
        )
        for kind, src, dst in zip(kinds.tolist(), srcs.tolist(), dsts.tolist())
    ]
    return ops, labels


def encode_bootstrap(
    edges: Sequence[Tuple[int, int, int]], nodes: Sequence[int]
) -> bytes:
    """Payload of a ``BOOTSTRAP`` record (edges and nodes in replay order)."""
    edge_array = np.asarray(edges, dtype=np.int64).reshape(len(edges), 3)
    node_array = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
    return (
        struct.pack("<QQ", len(edges), len(nodes))
        + edge_array.tobytes()
        + node_array.tobytes()
    )


def decode_bootstrap(
    payload: bytes,
) -> Tuple[List[Tuple[int, int, int]], List[int]]:
    """Inverse of :func:`encode_bootstrap`."""
    num_edges, num_nodes = struct.unpack_from("<QQ", payload, 0)
    offset = struct.calcsize("<QQ")
    edges = np.frombuffer(
        payload, dtype=np.int64, count=3 * num_edges, offset=offset
    ).reshape(num_edges, 3)
    offset += 24 * num_edges
    nodes = np.frombuffer(payload, dtype=np.int64, count=num_nodes, offset=offset)
    return [tuple(edge) for edge in edges.tolist()], nodes.tolist()


def encode_migrations(moves: Sequence[Tuple[int, int, int]]) -> bytes:
    """Payload of a ``MIGRATIONS`` record: (node, from, to) triples."""
    array = np.asarray(moves, dtype=np.int64).reshape(len(moves), 3)
    return struct.pack("<Q", len(moves)) + array.tobytes()


def decode_migrations(payload: bytes) -> List[Tuple[int, int, int]]:
    """Inverse of :func:`encode_migrations`."""
    (count,) = struct.unpack_from("<Q", payload, 0)
    offset = struct.calcsize("<Q")
    moves = np.frombuffer(
        payload, dtype=np.int64, count=3 * count, offset=offset
    ).reshape(count, 3)
    return [tuple(move) for move in moves.tolist()]


def encode_abort(aborted_lsn: int) -> bytes:
    """Payload of an ``ABORT`` record: the LSN it compensates."""
    return struct.pack("<Q", aborted_lsn)


def decode_abort(payload: bytes) -> int:
    """Inverse of :func:`encode_abort`."""
    (aborted_lsn,) = struct.unpack_from("<Q", payload, 0)
    return aborted_lsn


# ----------------------------------------------------------------------
# Segment scanning
# ----------------------------------------------------------------------
@dataclass
class WalRecord:
    """One decoded record plus where it physically lives."""

    lsn: int
    record_type: int
    payload: bytes
    segment: str
    offset: int


@dataclass
class TornTail:
    """A partially written final record (crash mid-append)."""

    segment: str
    #: Byte offset of the first torn byte (the valid prefix length).
    valid_bytes: int


def segment_path(directory: str, index: int) -> str:
    """Path of segment ``index`` inside ``directory``."""
    return os.path.join(directory, f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}")


def list_segments(directory: str) -> List[str]:
    """Sorted paths of the WAL segments under ``directory``."""
    if not os.path.isdir(directory):
        return []
    names = [
        name
        for name in os.listdir(directory)
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
    ]
    return [os.path.join(directory, name) for name in sorted(names)]


def _parse_frame(
    data: bytes, offset: int
) -> Optional[Tuple[int, int, bytes, int]]:
    """Parse one record frame at ``offset``.

    Returns ``(record_type, lsn, payload, next_offset)``, or ``None``
    when no complete CRC-valid record starts there.  This is the single
    definition of the on-disk frame — segment scanning and the
    corruption-vs-torn-tail probe both build on it, so they can never
    disagree about what parses.
    """
    magic_len = len(RECORD_MAGIC)
    end = offset + magic_len + _HEADER.size
    if data[offset : offset + magic_len] != RECORD_MAGIC or end > len(data):
        return None
    record_type, lsn, length = _HEADER.unpack(data[offset + magic_len : end])
    payload_end = end + length
    crc_end = payload_end + _CRC.size
    if crc_end > len(data):
        return None
    payload = data[end:payload_end]
    (stored_crc,) = _CRC.unpack(data[payload_end:crc_end])
    crc = zlib.crc32(data[offset + magic_len : end])
    crc = zlib.crc32(payload, crc)
    if crc != stored_crc:
        return None
    return record_type, lsn, payload, crc_end


def _valid_record_after(data: bytes, offset: int) -> bool:
    """Whether any complete record survives past a damaged ``offset``.

    This is what tells *corruption* apart from a *torn tail*: a crash
    interrupts the last append, so nothing parseable can follow the
    damage — if something does, earlier bytes were damaged after the
    fact and truncating would silently discard committed records.
    """
    position = data.find(RECORD_MAGIC, offset + 1)
    while position != -1:
        if _parse_frame(data, position) is not None:
            return True
        position = data.find(RECORD_MAGIC, position + 1)
    return False


def _scan_segment(path: str) -> Tuple[List[WalRecord], Optional[int], bytes]:
    """Decode one segment.

    Returns the valid records, the offset of a torn/damaged suffix
    (``None`` when the segment is clean), and the raw bytes (for the
    caller's corruption-vs-torn-tail discrimination).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[WalRecord] = []
    offset = 0
    while offset < len(data):
        frame = _parse_frame(data, offset)
        if frame is None:
            return records, offset, data
        record_type, lsn, payload, next_offset = frame
        records.append(
            WalRecord(
                lsn=lsn,
                record_type=record_type,
                payload=payload,
                segment=path,
                offset=offset,
            )
        )
        offset = next_offset
    return records, None, data


def scan_wal(directory: str) -> Tuple[List[WalRecord], Optional[TornTail]]:
    """Decode every segment of the log, oldest first.

    A torn record is tolerated only at the very end of the *last*
    segment (the append the crash interrupted); anywhere else — an
    earlier segment, or damage with parseable records after it — means
    the log was damaged after the fact and :class:`CorruptWalError` is
    raised instead of silently discarding committed records.  Records
    are returned in physical order — the caller skips duplicate LSNs,
    which makes re-reading a segment idempotent.
    """
    segments = list_segments(directory)
    records: List[WalRecord] = []
    torn: Optional[TornTail] = None
    for position, path in enumerate(segments):
        decoded, torn_offset, data = _scan_segment(path)
        records.extend(decoded)
        if torn_offset is not None:
            if position != len(segments) - 1:
                raise CorruptWalError(
                    f"segment {os.path.basename(path)} is damaged at byte "
                    f"{torn_offset} but is not the final segment"
                )
            if _valid_record_after(data, torn_offset):
                raise CorruptWalError(
                    f"segment {os.path.basename(path)} is damaged at byte "
                    f"{torn_offset} with committed records after the damage"
                )
            torn = TornTail(segment=path, valid_bytes=torn_offset)
    return records, torn


def truncate_torn_tail(torn: TornTail) -> None:
    """Physically drop a torn final record (crash-interrupted append)."""
    with open(torn.segment, "rb+") as handle:
        handle.truncate(torn.valid_bytes)


def prune_segments(directory: str, safe_lsn: int) -> List[str]:
    """Delete leading segments whose records are all ``<= safe_lsn``.

    ``safe_lsn`` must be the LSN of the *oldest retained* checkpoint:
    everything at or below it can be reconstructed from that checkpoint,
    so its segments are dead weight.  The active (last) segment is never
    touched, and pruning stops at the first segment that still carries a
    live record, so the remaining log always starts at or before
    ``safe_lsn + 1``.  Returns the removed paths.
    """
    removed: List[str] = []
    for path in list_segments(directory)[:-1]:
        records, torn_offset, _ = _scan_segment(path)
        if torn_offset is not None or not records:
            break
        if max(record.lsn for record in records) > safe_lsn:
            break
        os.remove(path)
        removed.append(path)
    return removed


# ----------------------------------------------------------------------
# The appender
# ----------------------------------------------------------------------
class WriteAheadLog:
    """Appender over a directory of WAL segments.

    ``open()`` scans the existing segments (truncating a torn tail, so a
    recovered system can keep appending to the same directory) and
    resumes the LSN sequence after the last valid record.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int,
        fsync: bool = False,
        resume_lsn: Optional[int] = None,
    ) -> None:
        """Open (or create) the log under ``directory``.

        ``resume_lsn`` is the recovery fast path: the caller has already
        scanned the log, truncated any torn tail and applied everything
        up to that LSN, so the appender only needs the last segment's
        position — no second full-log CRC scan.
        """
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self._handle = None
        self._segment_index = 0
        self._segment_size = 0
        #: Set when an append failed mid-write: the segment tail holds
        #: partial bytes that must be trimmed before the next record, or
        #: a later successful append would strand damage mid-segment
        #: (which recovery rightly treats as corruption).
        self._tail_dirty = False
        self.last_lsn = 0
        self._resume(resume_lsn)

    def _resume(self, resume_lsn: Optional[int]) -> None:
        segments = list_segments(self.directory)
        if segments:
            if resume_lsn is None:
                records, torn = scan_wal(self.directory)
                if torn is not None:
                    truncate_torn_tail(torn)
                if records:
                    self.last_lsn = max(record.lsn for record in records)
            else:
                # Fast path, but still verified: the log's tail LSN is
                # whatever the *last* segment ends with, so scanning
                # that one segment (bounded by segment_bytes, not by
                # history) is enough to fail loudly if the directory
                # gained records behind the recovery that computed
                # ``resume_lsn`` — silently resuming would mint
                # duplicate LSNs and lose one writer's batches.
                tail_records, torn_offset, _ = _scan_segment(segments[-1])
                if torn_offset is not None:
                    raise CorruptWalError(
                        f"segment {os.path.basename(segments[-1])} still "
                        f"has a torn tail at byte {torn_offset} on resume"
                    )
                tail_lsn = max(
                    (record.lsn for record in tail_records), default=None
                )
                if tail_lsn is not None and tail_lsn != resume_lsn:
                    raise CorruptWalError(
                        f"resume expected the log to end at lsn "
                        f"{resume_lsn}, found {tail_lsn}"
                    )
                self.last_lsn = resume_lsn
            last = segments[-1]
            name = os.path.basename(last)
            self._segment_index = int(
                name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            )
            self._segment_size = os.path.getsize(last)
            self._handle = open(last, "ab", buffering=0)
        else:
            self.last_lsn = resume_lsn or 0
            self._open_segment(0)

    def _open_segment(self, index: int) -> None:
        if self._handle is not None:
            self._handle.close()
        self._segment_index = index
        path = segment_path(self.directory, index)
        self._handle = open(path, "ab", buffering=0)
        self._segment_size = os.path.getsize(path)
        if self.fsync:
            # Power-loss contract: the new segment's directory entry
            # must be stable before records land in it, or a crash could
            # orphan fsync'd record bytes in an unlinked file.
            fsync_directory(self.directory)

    @property
    def current_segment(self) -> str:
        """Path of the segment currently being appended to."""
        return segment_path(self.directory, self._segment_index)

    def append(self, record_type: int, payload: bytes) -> int:
        """Durably append one record; returns its LSN.

        The record is framed, CRC'd and written in one :func:`wal_write`
        call; the segment is rotated first when the record would push the
        current segment past ``segment_bytes`` (a record never spans
        segments, so every segment is independently scannable).
        """
        if self._handle is None:
            raise RuntimeError("write-ahead log is closed")
        if self._tail_dirty:
            # A previous append died mid-write (e.g. ENOSPC): trim the
            # partial bytes back to the last good record so this append
            # lands on a clean boundary.  The handle is in append mode,
            # so the next write lands at the new (repaired) end.
            os.ftruncate(self._handle.fileno(), self._segment_size)
            self._tail_dirty = False
        record = encode_record(record_type, self.last_lsn + 1, payload)
        if (
            self._segment_size > 0
            and self._segment_size + len(record) > self.segment_bytes
        ):
            self._open_segment(self._segment_index + 1)
        try:
            wal_write(self._handle, record)
            if self.fsync:
                # Inside the guard: if the fsync fails after a complete
                # write, the record would otherwise be durable-but-
                # unaccounted, and a retry would mint a second record
                # with the same LSN behind it.
                # repro: noqa REP003 — file-handle fsync has no funnel;
                # the bytes above went through wal_write, which is the
                # crash axis; fsync failure handling is the guard here.
                os.fsync(self._handle.fileno())
        except BaseException:
            self._tail_dirty = True
            raise
        self._segment_size += len(record)
        self.last_lsn += 1
        return self.last_lsn

    def append_bootstrap(
        self, edges: Sequence[Tuple[int, int, int]], nodes: Sequence[int]
    ) -> int:
        """Append the initial bulk load as one record."""
        return self.append(RT_BOOTSTRAP, encode_bootstrap(edges, nodes))

    def append_batch(
        self, ops: Sequence[UpdateOp], labels: Optional[Sequence[int]]
    ) -> int:
        """Append one update batch (call *before* applying it)."""
        return self.append(RT_BATCH, encode_batch(ops, labels))

    def append_migrations(self, moves: Sequence[Tuple[int, int, int]]) -> int:
        """Append one maintenance pass's migration journal (redo)."""
        return self.append(RT_MIGRATIONS, encode_migrations(moves))

    def append_abort(self, aborted_lsn: int) -> int:
        """Mark the record at ``aborted_lsn`` as never-applied (skip it)."""
        return self.append(RT_ABORT, encode_abort(aborted_lsn))

    def close(self) -> None:
        """Close the current segment handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(dir={self.directory!r}, last_lsn={self.last_lsn}, "
            f"segment={self._segment_index})"
        )
