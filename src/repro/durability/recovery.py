"""Crash recovery: latest checkpoint + WAL tail replay.

Recovery rebuilds a system that is **bit-identical** to what an
uncrashed process would hold after applying the same durable prefix:

1. load the newest *valid* checkpoint (torn or missing manifests are
   skipped; no checkpoint means "replay everything");
2. restore it into a freshly constructed :class:`~repro.core.system.
   Moctopus` (storages, hetero internals, partition vector, degree
   counters, pending misplacement reports, lifetime accounting, epoch
   numbering);
3. scan the WAL, verifying every record CRC; a torn final record (the
   append the crash interrupted) is truncated, damage anywhere else is
   a hard :class:`~repro.durability.wal.CorruptWalError`;
4. replay the records past the checkpoint's LSN **through the real code
   paths** — bootstrap re-ingests the original edge stream, update
   batches re-run ``UpdateProcessor.apply_batch`` (so placements,
   promotions and byte accounting re-derive exactly), and migration
   journal entries redo their row moves verbatim;
5. re-attach the durability controller so the recovered system resumes
   appending at the next LSN in the same directory.

Why this is exact: ``apply_batch`` is deterministic given the state it
observes, the checkpoint restores *all* of that state, and migration
decisions — the one non-replayable input (they depend on volatile
misplacement reports) — are journaled as outcomes rather than
re-derived.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.durability import checkpoint as ckpt
from repro.durability.wal import (
    RT_ABORT,
    RT_BATCH,
    RT_BOOTSTRAP,
    RT_MIGRATIONS,
    CorruptWalError,
    WalGapError,
    decode_abort,
    decode_batch,
    decode_bootstrap,
    decode_migrations,
    scan_wal,
    truncate_torn_tail,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import MoctopusConfig
    from repro.core.system import Moctopus


def _config_from_dict(data: dict) -> "MoctopusConfig":
    from repro.core.config import MoctopusConfig
    from repro.pim.cost_model import CostModel

    data = dict(data)
    cost_model = CostModel(**data.pop("cost_model"))
    return MoctopusConfig(cost_model=cost_model, **data)


def recover(
    durability_dir: str,
    config: Optional["MoctopusConfig"] = None,
    engine: Optional[str] = None,
) -> "Moctopus":
    """Rebuild the system persisted under ``durability_dir``.

    ``config`` defaults to the writer's own configuration — echoed in
    the newest checkpoint, or in the ``config.json`` manifest written
    when the directory was first initialized (so even a crash before the
    first checkpoint recovers under the right platform shape).  Replay
    is only bit-exact when the effective config matches the writing
    process's, so only pass an override that does.  ``engine`` swaps the
    execution backend after recovery — backends are state-identical, so
    this is always safe.
    """
    from repro.core.system import Moctopus
    from repro.durability import (
        DurabilityController,
        read_config_manifest,
        wal_directory,
    )

    state = ckpt.latest_checkpoint(
        DurabilityController.checkpoint_directory(durability_dir)
    )
    if config is None:
        if state is not None:
            config = _config_from_dict(state.manifest["config"])
        else:
            echo = read_config_manifest(durability_dir)
            if echo is not None:
                config = _config_from_dict(echo)
            else:
                from repro.core.config import MoctopusConfig

                config = MoctopusConfig()
    if config.durability_dir != durability_dir:
        config = dataclasses.replace(config, durability_dir=durability_dir)

    records, torn = scan_wal(wal_directory(durability_dir))
    if torn is not None:
        truncate_torn_tail(torn)

    # Batches whose apply raised in the writing process were compensated
    # with an ABORT marker; replaying them would re-raise the same
    # (deterministic) error and make the directory unrecoverable.  One
    # window escapes the marker: the crash landed *between* the batch
    # append and the abort append.  Such a batch is necessarily the
    # final record (the writer latches durability off after any abort),
    # so if replaying the tail record raises, it is treated as an
    # implicit abort — the rebuild restarts with that LSN skipped and a
    # real marker is appended once durability re-attaches.
    implicit_aborts: set = set()
    while True:
        try:
            system, applied = _rebuild(
                Moctopus, config, state, records, implicit_aborts
            )
            break
        except _TailApplyError as failure:
            implicit_aborts.add(failure.lsn)

    system._attach_durability(config, resume_lsn=applied)
    for lsn in sorted(implicit_aborts):
        system._durability.log_abort(
            lsn, RuntimeError("batch apply failed during recovery replay")
        )
        system._durability.failed = None
    if engine is not None:
        system.use_engine(engine)
    return system


class _TailApplyError(Exception):
    """Replaying the final, un-compensated tail record raised."""

    def __init__(self, lsn: int, cause: BaseException) -> None:
        super().__init__(f"tail record {lsn} failed to apply: {cause!r}")
        self.lsn = lsn
        self.cause = cause


def _rebuild(
    moctopus_cls,
    config: "MoctopusConfig",
    state,
    records,
    skip: set,
) -> tuple:
    """One restore-and-replay pass (fresh system every attempt)."""
    # Build the skeleton with durability detached: replay must not
    # re-append the records it is consuming.
    blank_config = dataclasses.replace(config, durability_dir=None)
    system = moctopus_cls(config=blank_config)

    applied = 0
    if state is not None:
        ckpt.restore_into(system, state)
        applied = state.lsn

    aborted = {
        decode_abort(record.payload)
        for record in records
        if record.record_type == RT_ABORT
    } | skip
    last_lsn = max((record.lsn for record in records), default=0)
    for record in records:
        if record.lsn <= applied:
            # Duplicate delivery (a re-read or re-copied segment):
            # replay is idempotent by LSN.
            continue
        if record.lsn != applied + 1:
            raise WalGapError(
                f"WAL jumps from lsn {applied} to {record.lsn}; a segment "
                "is missing"
            )
        if record.record_type != RT_ABORT and record.lsn not in aborted:
            try:
                _replay(system, record.record_type, record.payload)
            except (CorruptWalError, ckpt.CheckpointError):
                raise
            except Exception as error:
                if record.record_type == RT_BATCH and record.lsn == last_lsn:
                    raise _TailApplyError(record.lsn, error)
                raise
        applied = record.lsn
    if state is not None and applied < state.lsn:
        raise CorruptWalError(
            f"checkpoint covers lsn {state.lsn} but the log ends at {applied}"
        )
    return system, applied


def _replay(system: "Moctopus", record_type: int, payload: bytes) -> None:
    if record_type == RT_BOOTSTRAP:
        edges, nodes = decode_bootstrap(payload)
        system._replay_bootstrap(edges, nodes)
    elif record_type == RT_BATCH:
        ops, labels = decode_batch(payload)
        with system._serve_lock:
            system._update_processor.apply_batch(ops, labels=labels)
            system._epochs.mark_stale()
    elif record_type == RT_MIGRATIONS:
        moves = decode_migrations(payload)
        with system._serve_lock:
            for node, source, target in moves:
                system._migrator.replay_move(node, source, target)
            # The pass that produced this record consumed every pending
            # report (applied or skipped); reports restored from the
            # checkpoint must not survive its replay.
            system._migrator.clear_pending()
            system._epochs.mark_stale()
    else:
        raise CorruptWalError(f"unknown WAL record type {record_type}")
