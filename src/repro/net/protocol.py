"""The wire protocol of the network serving front-end.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned payload
length followed by one UTF-8 JSON object.  Every frame carries a
``type`` and (except HELLO replies pushed by the server) a client-chosen
integer ``id`` echoed verbatim in the reply, so one connection can keep
many requests in flight and match answers out of order — the pipelining
the coalescing scheduler feeds on.

Frame types
-----------

``hello`` / ``welcome``
    Connection handshake.  The client opens with
    ``{"type": "hello", "id": 0, "protocol": 1, "token": ...}``;
    the server answers ``welcome`` (server name, protocol version,
    engine, per-client in-flight cap) or ``error`` (code ``auth``) and
    closes.
``query``
    One single-source path query:
    ``{"type": "query", "id": n, "kind": "khop", "source": s,
    "hops": k}`` or ``{"kind": "rpq", "source": s, "expression": e}``.
``result``
    The answer: sorted destination list plus the simulated
    :class:`~repro.pim.stats.ExecutionStats` of the coalesced batch the
    query rode in (see :func:`stats_to_wire`).
``busy``
    Admission rejection — per-client in-flight cap
    (``reason: "client_inflight"``) or a saturated scheduler queue
    (``reason: "server_saturated"``).  The query was *not* admitted;
    the client should back off and retry.
``error``
    Request failure: ``code`` is ``auth``, ``bad_request``, ``timeout``,
    ``closed`` or ``internal``, plus a human-readable ``message``.
``stats``
    Metrics scrape over the protocol: request
    ``{"type": "stats", "id": n}``, reply carries the same mapping the
    ``GET /metrics`` endpoint renders, under ``"metrics"``.
``ping`` / ``pong``
    Liveness probe.
``goodbye``
    Graceful connection teardown (either side may initiate; the server
    answers in-flight queries first).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, List, Optional

from repro.pim.stats import ExecutionStats

#: A decoded wire frame: one JSON object with at least a ``type`` key.
Frame = Dict[str, Any]

#: Version of the frame protocol; HELLO carries it and the server
#: rejects clients speaking a different one.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload.  Both sides enforce it: a
#: length prefix past the bound is a protocol error, never an attempted
#: allocation — the admission control of the byte layer.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Every frame type either side may send.
FRAME_TYPES = frozenset(
    {
        "hello",
        "welcome",
        "query",
        "result",
        "busy",
        "error",
        "stats",
        "ping",
        "pong",
        "goodbye",
    }
)


class ProtocolError(ValueError):
    """A malformed frame (bad length, bad JSON, unknown type)."""


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame: 4-byte length prefix + compact JSON."""
    frame_type = frame.get("type")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    payload = json.dumps(
        frame, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds "
            f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Frame:
    """Parse one frame payload (the bytes after the length prefix)."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    if frame.get("type") not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame.get('type')!r}")
    return frame


def decode_length(header: bytes) -> int:
    """Parse and bound-check a 4-byte length prefix."""
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return length


async def read_frame(reader: asyncio.StreamReader) -> Optional[Frame]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF (the peer closed between frames);
    raises :class:`ProtocolError` on a truncated or malformed frame.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    try:
        payload = await reader.readexactly(decode_length(header))
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_frame(payload)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes from a blocking socket.

    Returns ``None`` on EOF before the first byte; raises
    :class:`ProtocolError` on EOF mid-read.
    """
    chunks: List[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame_blocking(sock: socket.socket) -> Optional[Frame]:
    """Read one frame from a blocking socket (``None`` on clean EOF)."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    payload = _recv_exactly(sock, decode_length(header))
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_frame(payload)


def stats_to_wire(stats: ExecutionStats) -> Dict[str, Any]:
    """Serialize :class:`ExecutionStats` for a RESULT frame.

    Carries the full simulated breakdown — times, channel counters,
    per-phase PIM times and every free-form counter — so a wire answer
    is byte-for-byte comparable to the stats of a direct
    :class:`~repro.serve.scheduler.BatchScheduler` call (the network
    benchmark's parity assert).
    """
    return {
        "host_time": stats.host_time,
        "cpc_time": stats.cpc_time,
        "ipc_time": stats.ipc_time,
        "pim_time": stats.pim_time,
        "total_time": stats.total_time,
        "cpc": {
            "bytes_moved": stats.cpc.bytes_moved,
            "transfers": stats.cpc.transfers,
        },
        "ipc": {
            "bytes_moved": stats.ipc.bytes_moved,
            "transfers": stats.ipc.transfers,
        },
        "phase_pim_times": list(stats.phase_pim_times),
        "counters": dict(stats.counters),
    }
