"""Clients of the network serving front-end.

Two clients over the same frame protocol:

* :class:`MoctopusClient` — blocking; a daemon reader thread demuxes
  reply frames by request id into per-request events, so one connection
  can pipeline many queries (``submit_khop``/``submit_rpq`` return
  :class:`PendingReply` handles resolved out of order);
* :class:`AsyncMoctopusClient` — asyncio-native; a reader task demuxes
  into per-request futures.

Both surface admission rejections as :class:`ServerBusy` (back off and
retry — the query was never admitted) and request failures as
:class:`ServerError` carrying the server's error ``code``
(``bad_request``, ``timeout``, ``closed``, ``internal``, ``auth``).
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
from typing import Any, Dict, Optional, Set, Tuple

from repro.net.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    read_frame,
    read_frame_blocking,
)

#: A resolved query reply: sorted destinations + wire-form batch stats.
QueryReply = Tuple[Set[int], Dict[str, Any]]


class ServerError(RuntimeError):
    """The server answered a request with an ERROR frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServerBusy(ServerError):
    """Admission rejection (BUSY frame): the query was never admitted.

    ``code`` is the rejection reason — ``client_inflight`` (this
    connection is at its in-flight cap) or ``server_saturated`` (the
    scheduler's admission queue is full).  Back off and resubmit.
    """


def _interpret(frame: Dict[str, Any]) -> Any:
    """Turn a reply frame into a value or an exception to raise."""
    frame_type = frame["type"]
    if frame_type == "result":
        return (set(frame["destinations"]), frame["stats"])
    if frame_type == "busy":
        return ServerBusy(frame.get("reason", "busy"), frame.get("message", ""))
    if frame_type == "error":
        return ServerError(
            frame.get("code", "internal"), frame.get("message", "")
        )
    if frame_type == "stats":
        return frame["metrics"]
    if frame_type in ("pong", "goodbye", "welcome"):
        return frame
    return ProtocolError(f"unexpected reply frame {frame_type!r}")


class PendingReply:
    """A pipelined request awaiting its reply frame (blocking client)."""

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._event = threading.Event()
        self._value: Any = None

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the reply arrives; raise what the server sent."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"no reply to request {self.request_id} within {timeout}s"
            )
        if isinstance(self._value, BaseException):
            raise self._value
        return self._value


class MoctopusClient:
    """Blocking client of a :class:`~repro.net.server.MoctopusServer`.

    The constructor performs the HELLO handshake synchronously (so an
    auth failure raises right here), then starts the reader thread.
    Safe for pipelined use from one or more threads: writes are
    lock-serialized and replies are matched by request id.
    """

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: Optional[str] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), connect_timeout)
        self._sock.settimeout(None)
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, PendingReply] = {}
        self._request_ids = itertools.count(1)
        self._closed = False
        # Handshake before the reader thread exists: the WELCOME (or the
        # auth ERROR) is the first and only frame on the wire right now.
        hello = {"type": "hello", "id": 0, "protocol": PROTOCOL_VERSION}
        if auth_token is not None:
            hello["token"] = auth_token
        self._sock.sendall(encode_frame(hello))
        self._sock.settimeout(connect_timeout)
        reply = read_frame_blocking(self._sock)
        self._sock.settimeout(None)
        if reply is None:
            self._sock.close()
            raise ConnectionError("server closed the connection during hello")
        if reply["type"] != "welcome":
            self._sock.close()
            outcome = _interpret(reply)
            if isinstance(outcome, BaseException):
                raise outcome
            raise ProtocolError(f"unexpected handshake reply {reply['type']!r}")
        self.server_info = reply
        self._reader = threading.Thread(
            target=self._read_loop, name="moctopus-client-reader", daemon=True
        )
        self._reader.start()

    # -- plumbing ------------------------------------------------------
    def _read_loop(self) -> None:
        failure: BaseException = ConnectionError("connection closed by server")
        try:
            while True:
                frame = read_frame_blocking(self._sock)
                if frame is None:
                    break
                rid = frame.get("id")
                with self._pending_lock:
                    pending = self._pending.pop(rid, None)
                if pending is not None:
                    pending._resolve(_interpret(frame))
        except (ProtocolError, ConnectionError, OSError) as error:
            if not self._closed:
                failure = error
        finally:
            with self._pending_lock:
                stranded = list(self._pending.values())
                self._pending.clear()
            for pending in stranded:
                pending._resolve(failure)

    def _send_request(self, frame: Dict[str, Any]) -> PendingReply:
        if self._closed:
            raise RuntimeError("client is closed")
        rid = next(self._request_ids)
        frame["id"] = rid
        pending = PendingReply(rid)
        with self._pending_lock:
            self._pending[rid] = pending
        payload = encode_frame(frame)
        try:
            with self._write_lock:
                self._sock.sendall(payload)
        except (ConnectionError, OSError):
            with self._pending_lock:
                self._pending.pop(rid, None)
            raise
        return pending

    # -- query surface -------------------------------------------------
    def submit_khop(self, source: int, hops: int) -> PendingReply:
        """Pipeline one k-hop query; resolve via ``.result()``."""
        return self._send_request(
            {"type": "query", "kind": "khop", "source": source, "hops": hops}
        )

    def khop(
        self, source: int, hops: int, timeout: Optional[float] = None
    ) -> QueryReply:
        """Run one k-hop query to completion."""
        return self.submit_khop(source, hops).result(timeout)

    def submit_rpq(self, source: int, expression: str) -> PendingReply:
        """Pipeline one regular-path query; resolve via ``.result()``."""
        return self._send_request(
            {
                "type": "query",
                "kind": "rpq",
                "source": source,
                "expression": expression,
            }
        )

    def rpq(
        self, source: int, expression: str, timeout: Optional[float] = None
    ) -> QueryReply:
        """Run one regular-path query to completion."""
        return self.submit_rpq(source, expression).result(timeout)

    def stats(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Scrape the server's metrics mapping over the protocol."""
        return self._send_request({"type": "stats"}).result(timeout)

    def ping(self, timeout: Optional[float] = None) -> None:
        """Round-trip a liveness probe."""
        self._send_request({"type": "ping"}).result(timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Send GOODBYE, wait for the server's confirmation, close."""
        if self._closed:
            return
        try:
            pending = self._send_request({"type": "goodbye"})
            self._closed = True
            pending.result(timeout)
        except (RuntimeError, OSError, TimeoutError, ServerError):
            pass  # best-effort: teardown proceeds regardless
        finally:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            self._reader.join(timeout)

    def __enter__(self) -> "MoctopusClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AsyncMoctopusClient:
    """Asyncio-native client; create via ``await connect(...)``."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        server_info: Dict[str, Any],
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.server_info = server_info
        self._pending: Dict[int, asyncio.Future] = {}
        self._request_ids = itertools.count(1)
        self._closed = False
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, auth_token: Optional[str] = None
    ) -> "AsyncMoctopusClient":
        """Open a connection and perform the HELLO handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        hello = {"type": "hello", "id": 0, "protocol": PROTOCOL_VERSION}
        if auth_token is not None:
            hello["token"] = auth_token
        writer.write(encode_frame(hello))
        await writer.drain()
        reply = await read_frame(reader)
        if reply is None:
            writer.close()
            raise ConnectionError("server closed the connection during hello")
        if reply["type"] != "welcome":
            writer.close()
            outcome = _interpret(reply)
            if isinstance(outcome, BaseException):
                raise outcome
            raise ProtocolError(f"unexpected handshake reply {reply['type']!r}")
        return cls(reader, writer, reply)

    async def _read_loop(self) -> None:
        failure: BaseException = ConnectionError("connection closed by server")
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                future = self._pending.pop(frame.get("id"), None)
                if future is None or future.done():
                    continue
                outcome = _interpret(frame)
                if isinstance(outcome, BaseException):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)
        except (ProtocolError, ConnectionError, OSError) as error:
            if not self._closed:
                failure = error
        except asyncio.CancelledError:
            pass
        finally:
            stranded, self._pending = list(self._pending.values()), {}
            for future in stranded:
                if not future.done():
                    future.set_exception(failure)

    async def _send_request(self, frame: Dict[str, Any]) -> Any:
        if self._closed:
            raise RuntimeError("client is closed")
        rid = next(self._request_ids)
        frame["id"] = rid
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        payload = encode_frame(frame)
        async with self._write_lock:
            self._writer.write(payload)
            await self._writer.drain()
        return await future

    async def khop(self, source: int, hops: int) -> QueryReply:
        """Run one k-hop query to completion."""
        return await self._send_request(
            {"type": "query", "kind": "khop", "source": source, "hops": hops}
        )

    async def rpq(self, source: int, expression: str) -> QueryReply:
        """Run one regular-path query to completion."""
        return await self._send_request(
            {
                "type": "query",
                "kind": "rpq",
                "source": source,
                "expression": expression,
            }
        )

    async def stats(self) -> Dict[str, Any]:
        """Scrape the server's metrics mapping over the protocol."""
        return await self._send_request({"type": "stats"})

    async def ping(self) -> None:
        """Round-trip a liveness probe."""
        await self._send_request({"type": "ping"})

    async def close(self) -> None:
        """Send GOODBYE, await the confirmation, close the streams."""
        if self._closed:
            return
        try:
            await asyncio.wait_for(
                self._send_request({"type": "goodbye"}), timeout=5.0
            )
        except (RuntimeError, OSError, asyncio.TimeoutError, ServerError):
            pass  # best-effort: teardown proceeds regardless
        finally:
            self._closed = True
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
