"""The asyncio network serving front-end.

This package puts a wire in front of the in-process serving layer: an
asyncio TCP server speaking a small length-prefixed JSON protocol feeds
the :class:`~repro.serve.scheduler.BatchScheduler` (and, through it, the
:class:`~repro.parallel.pool.WorkerPool`), so concurrent remote clients
get the same coalesced, epoch-pinned execution in-process callers do —
with admission control at the socket boundary instead of unbounded
buffering:

* :mod:`repro.net.protocol` — the frame layer: HELLO/WELCOME handshake,
  QUERY (k-hop and RPQ expression), RESULT, ERROR, BUSY, STATS,
  PING/PONG and GOODBYE frames, request-id correlated so one connection
  can pipeline many queries;
* :mod:`repro.net.server` — :class:`MoctopusServer`: per-client
  in-flight caps and scheduler-saturation BUSY frames (backpressure),
  per-request timeouts, graceful shutdown that answers every in-flight
  query before closing sockets, and an HTTP-ish ``GET /metrics`` text
  endpoint on the same port;
* :mod:`repro.net.client` — :class:`MoctopusClient` (blocking, with a
  demuxing reader thread for pipelining) and
  :class:`AsyncMoctopusClient` (asyncio streams);
* :mod:`repro.net.metrics` — the observable surface: server counters,
  scheduler/cache/epoch gauges and aggregated
  :class:`~repro.pim.stats.ExecutionStats`, rendered for the STATS
  frame and the ``/metrics`` endpoint.

Entry point: ``server = system.listen(host, port)`` (see
:meth:`repro.core.system.Moctopus.listen`).
"""

from repro.net.client import (
    AsyncMoctopusClient,
    MoctopusClient,
    ServerBusy,
    ServerError,
)
from repro.net.metrics import ServerMetrics, render_metrics
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    stats_to_wire,
)
from repro.net.server import MoctopusServer

__all__ = [
    "AsyncMoctopusClient",
    "MAX_FRAME_BYTES",
    "MoctopusClient",
    "MoctopusServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerBusy",
    "ServerError",
    "ServerMetrics",
    "decode_frame",
    "encode_frame",
    "render_metrics",
    "stats_to_wire",
]
