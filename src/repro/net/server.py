"""The asyncio TCP server bridging the wire to the batch scheduler.

One :class:`MoctopusServer` owns one
:class:`~repro.serve.scheduler.BatchScheduler` (or wraps a caller-made
one) and speaks the :mod:`repro.net.protocol` frame protocol.  The
design point is **backpressure, never unbounded buffering**, enforced at
three boundaries:

* per-client: a connection may keep at most
  ``net_max_inflight_per_client`` queries in flight; the next QUERY gets
  a BUSY frame (``reason: "client_inflight"``) without being admitted;
* server-wide: admission into the scheduler uses ``block=False``, so a
  full admission queue surfaces as
  :class:`~repro.serve.scheduler.SchedulerSaturated` and becomes a BUSY
  frame (``reason: "server_saturated"``) instead of a hidden backlog;
* per-request: every admitted query runs under ``net_request_timeout``;
  on expiry the client gets an ERROR(timeout) frame and the eventual
  scheduler outcome is discarded (the
  :class:`~repro.serve.scheduler.ResultGate` contract).

The asyncio/threading bridge is callback-shaped: the scheduler resolves
a :class:`~repro.serve.scheduler.ServingFuture` on its drain thread,
whose ``add_done_callback`` hops the outcome back onto the event loop
with ``loop.call_soon_threadsafe`` — no loop thread ever blocks on a
threading primitive, and no executor thread is parked per in-flight
query.

Graceful shutdown (:meth:`MoctopusServer.close`) stops accepting, lets
every connection's in-flight queries resolve and send their RESULT
frames, then closes the sockets and finally the scheduler.

The listening socket also answers an HTTP-ish ``GET /metrics`` text
scrape (the first bytes of a connection disambiguate HTTP from the
4-byte frame length prefix), mirroring the long-lived socket-service
shape — supervised service loop plus health/stats endpoints — of
production SCADA-style services.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
from typing import Dict, Optional, Set, TYPE_CHECKING

from repro.net.metrics import ServerMetrics, build_metrics, render_metrics
from repro.net.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    decode_length,
    encode_frame,
    read_frame,
    stats_to_wire,
)
from repro.serve.scheduler import SchedulerSaturated

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.system import Moctopus
    from repro.serve.scheduler import BatchScheduler, ServingFuture

#: A connection whose first four bytes spell an HTTP GET is a metrics
#: scrape, not a frame stream (a frame this long would be rejected
#: anyway — ``b"GET "`` decodes to a 1.2 GB length prefix).
_HTTP_GET = b"GET "


class _Connection:
    """Server-side state of one client connection."""

    def __init__(
        self,
        server: "MoctopusServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_id: int,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.client_id = client_id
        self.inflight = 0
        self.tasks: Set[asyncio.Task] = set()
        self.closing = False
        self._write_lock = asyncio.Lock()

    async def send(self, frame: dict) -> None:
        """Serialize and send one frame (writes are serialized)."""
        payload = encode_frame(frame)
        async with self._write_lock:
            self.writer.write(payload)
            await self.writer.drain()

    async def send_error(self, rid, code: str, message: str) -> None:
        await self.send(
            {"type": "error", "id": rid, "code": code, "message": message}
        )

    async def drain_inflight(self, timeout: Optional[float]) -> None:
        """Wait until every in-flight query task answered (or timeout)."""
        if self.tasks:
            await asyncio.wait(list(self.tasks), timeout=timeout)

    async def shutdown(self, timeout: Optional[float]) -> None:
        """Answer in-flight queries, then close the socket."""
        self.closing = True
        await self.drain_inflight(timeout)
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - racy close
            pass


class MoctopusServer:
    """Asyncio TCP front-end over a :class:`BatchScheduler`.

    Construction does not bind anything; call :meth:`start` (background
    thread with its own event loop — the blocking-world facade used by
    ``Moctopus.listen()``) or ``await`` :meth:`start_async` from a
    running loop.  Every ``None`` knob defaults from the system's
    :class:`~repro.core.config.MoctopusConfig` (``net_*`` fields).
    """

    def __init__(
        self,
        system: "Moctopus",
        scheduler: Optional["BatchScheduler"] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        auth_token: Optional[str] = None,
        max_inflight_per_client: Optional[int] = None,
        request_timeout: Optional[float] = None,
        engine: Optional[str] = None,
        parallel: Optional[int] = None,
        logger: Optional[logging.Logger] = None,
    ) -> None:
        config = system.config
        self.system = system
        self._host = host if host is not None else config.net_host
        self._port = port if port is not None else config.net_port
        self._auth_token = (
            auth_token if auth_token is not None else config.net_auth_token
        )
        self._max_inflight = (
            max_inflight_per_client
            if max_inflight_per_client is not None
            else config.net_max_inflight_per_client
        )
        self._request_timeout = (
            request_timeout
            if request_timeout is not None
            else config.net_request_timeout
        )
        if self._max_inflight < 1:
            raise ValueError("max_inflight_per_client must be >= 1")
        if self._request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 seconds")
        self._owns_scheduler = scheduler is None
        self.scheduler = (
            scheduler
            if scheduler is not None
            else system.serve(engine=engine, parallel=parallel)
        )
        self.metrics = ServerMetrics()
        self._log = logger or logging.getLogger("repro.net.server")
        self._connections: Set[_Connection] = set()
        self._client_ids = itertools.count(1)
        self._bound_port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._closing = False
        self._closed = False
        # Sync-facade plumbing (start()/close() from blocking code).
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``net_port=0`` ephemerals)."""
        if self._bound_port is None:
            raise RuntimeError("server is not started")
        return self._bound_port

    @property
    def address(self):
        """``(host, port)`` the server is bound to."""
        return (self._host, self.port)

    def client_inflight(self) -> Dict[int, int]:
        """Per-client in-flight gauge (client id -> admitted queries)."""
        return {
            conn.client_id: conn.inflight
            for conn in list(self._connections)
        }

    async def start_async(self) -> "MoctopusServer":
        """Bind and start accepting on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._log.info("listening on %s:%d", self._host, self._bound_port)
        self._started.set()
        return self

    async def shutdown_async(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: answer in-flight queries, then close.

        Stops accepting, waits (bounded by ``drain_timeout``) for every
        connection's admitted queries to send their RESULT/ERROR frames,
        closes the sockets, and finally closes the scheduler when this
        server created it.
        """
        if self._closed:
            return
        self._closing = True
        self._closed = True
        self._server.close()
        await self._server.wait_closed()
        connections = list(self._connections)
        if connections:
            await asyncio.gather(
                *(conn.shutdown(drain_timeout) for conn in connections),
                return_exceptions=True,
            )
        if self._owns_scheduler:
            # The scheduler's close() joins its drain thread — run it in
            # the default executor so an embedding application's other
            # tasks on this loop keep making progress during the drain
            # (REP005: never block the event loop).
            await asyncio.get_running_loop().run_in_executor(
                None, self.scheduler.close
            )
        self._log.info("server shut down (%d connections drained)",
                       len(connections))

    # Sync facade ------------------------------------------------------
    def start(self, timeout: float = 10.0) -> "MoctopusServer":
        """Run the server on a dedicated background event-loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="moctopus-net-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):  # pragma: no cover - hang guard
            raise RuntimeError("server failed to start in time")
        if self._startup_error is not None:
            self._thread.join(timeout)
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve_until_shutdown())
        except BaseException as error:  # pragma: no cover - startup failure
            self._startup_error = error
            self._started.set()
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve_until_shutdown(self) -> None:
        self._shutdown_requested = asyncio.Event()
        try:
            await self.start_async()
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        await self._shutdown_requested.wait()
        await self.shutdown_async()

    def close(self, timeout: float = 15.0) -> None:
        """Gracefully stop a :meth:`start`-ed server (idempotent).

        The close lock is held only to request the shutdown; the thread
        join and the scheduler teardown run outside it, so a concurrent
        closer is never stalled behind the multi-second drain (REP001:
        mark under the lock, act outside).  Both post-mark steps are
        idempotent, so racing closers are safe.
        """
        with self._close_lock:
            thread = self._thread
            if thread is not None and thread.is_alive():
                self._loop.call_soon_threadsafe(self._shutdown_requested.set)
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        if self._owns_scheduler:
            self.scheduler.close()  # idempotent; covers thread timeout

    def __enter__(self) -> "MoctopusServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            header = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            writer.close()
            return
        if header == _HTTP_GET:
            await self._serve_http(reader, writer)
            return
        conn = _Connection(self, reader, writer, next(self._client_ids))
        self._connections.add(conn)
        self.metrics.count("connections_opened")
        self.metrics.count("connections_active")
        try:
            await self._run_connection(conn, header)
        finally:
            self._connections.discard(conn)
            self.metrics.count("connections_active", -1)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _run_connection(self, conn: _Connection, header: bytes) -> None:
        peer = conn.writer.get_extra_info("peername")
        try:
            first = await self._read_after_header(conn.reader, header)
            if first is None:
                return
            if not await self._handshake(conn, first):
                return
            self._log.info("client %d connected from %s", conn.client_id, peer)
            while True:
                frame = await read_frame(conn.reader)
                if frame is None:
                    break
                if not await self._dispatch(conn, frame):
                    break
        except ProtocolError as error:
            self.metrics.count("bad_requests")
            self._log.warning(
                "client %d protocol error: %s", conn.client_id, error
            )
            try:
                await conn.send_error(None, "bad_request", str(error))
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass  # peer went away; in-flight tasks still drain below
        finally:
            # Never strand an admitted query: even a dropped connection
            # lets its in-flight tasks resolve (their sends fail softly).
            await conn.drain_inflight(self._request_timeout + 5.0)
            self._log.info("client %d disconnected", conn.client_id)

    async def _read_after_header(
        self, reader: asyncio.StreamReader, header: bytes
    ):
        """Read the first frame, whose length prefix was already read."""
        try:
            payload = await reader.readexactly(decode_length(header))
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-frame") from None
        return decode_frame(payload)

    async def _handshake(self, conn: _Connection, frame: dict) -> bool:
        rid = frame.get("id")
        if frame.get("type") != "hello":
            self.metrics.count("bad_requests")
            await conn.send_error(
                rid, "bad_request", "first frame must be hello"
            )
            return False
        if frame.get("protocol") != PROTOCOL_VERSION:
            self.metrics.count("bad_requests")
            await conn.send_error(
                rid,
                "bad_request",
                f"unsupported protocol {frame.get('protocol')!r} "
                f"(server speaks {PROTOCOL_VERSION})",
            )
            return False
        if self._auth_token is not None and frame.get("token") != self._auth_token:
            self.metrics.count("auth_failures")
            self._log.warning("client %d failed auth", conn.client_id)
            await conn.send_error(rid, "auth", "invalid auth token")
            return False
        await conn.send(
            {
                "type": "welcome",
                "id": rid,
                "server": "moctopus",
                "protocol": PROTOCOL_VERSION,
                "engine": self.scheduler._engine_name,
                "max_inflight": self._max_inflight,
            }
        )
        return True

    async def _dispatch(self, conn: _Connection, frame: dict) -> bool:
        """Handle one post-handshake frame; False ends the connection."""
        frame_type = frame["type"]
        rid = frame.get("id")
        if frame_type == "query":
            await self._admit_query(conn, frame)
            return True
        if frame_type == "ping":
            await conn.send({"type": "pong", "id": rid})
            return True
        if frame_type == "stats":
            self.metrics.count("metrics_scrapes")
            await conn.send(
                {"type": "stats", "id": rid, "metrics": build_metrics(self)}
            )
            return True
        if frame_type == "goodbye":
            # Answer everything already admitted, then confirm.
            await conn.drain_inflight(self._request_timeout + 5.0)
            await conn.send({"type": "goodbye", "id": rid})
            return False
        self.metrics.count("bad_requests")
        await conn.send_error(
            rid, "bad_request", f"unexpected frame type {frame_type!r}"
        )
        return True

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def _admit_query(self, conn: _Connection, frame: dict) -> None:
        rid = frame.get("id")
        if not isinstance(rid, int):
            self.metrics.count("bad_requests")
            await conn.send_error(rid, "bad_request", "query id must be an int")
            return
        if self._closing or conn.closing:
            await conn.send_error(rid, "closed", "server is shutting down")
            return
        if conn.inflight >= self._max_inflight:
            self.metrics.count("busy_client_inflight")
            await conn.send(
                {
                    "type": "busy",
                    "id": rid,
                    "reason": "client_inflight",
                    "message": (
                        f"client already has {conn.inflight} queries in "
                        f"flight (cap {self._max_inflight})"
                    ),
                }
            )
            return
        try:
            future = self._submit(frame)
        except SchedulerSaturated as error:
            self.metrics.count("busy_server_saturated")
            await conn.send(
                {
                    "type": "busy",
                    "id": rid,
                    "reason": "server_saturated",
                    "message": str(error),
                }
            )
            return
        except (TypeError, ValueError) as error:
            self.metrics.count("bad_requests")
            await conn.send_error(rid, "bad_request", str(error))
            return
        except RuntimeError as error:
            # The scheduler is closed (server shutting down underneath).
            await conn.send_error(rid, "closed", str(error))
            return
        conn.inflight += 1
        self.metrics.count("queries_admitted")
        task = asyncio.get_running_loop().create_task(
            self._answer_query(conn, rid, future)
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    def _submit(self, frame: dict) -> "ServingFuture":
        kind = frame.get("kind")
        source = frame.get("source")
        if not isinstance(source, int) or isinstance(source, bool):
            raise ValueError("query source must be an int")
        if kind == "khop":
            hops = frame.get("hops")
            if not isinstance(hops, int) or isinstance(hops, bool):
                raise ValueError("khop query needs an int 'hops'")
            return self.scheduler.submit(source, hops, block=False)
        if kind == "rpq":
            expression = frame.get("expression")
            if not isinstance(expression, str):
                raise ValueError("rpq query needs a string 'expression'")
            return self.scheduler.submit_rpq(source, expression, block=False)
        raise ValueError(f"unknown query kind {kind!r}")

    async def _answer_query(
        self, conn: _Connection, rid: int, future: "ServingFuture"
    ) -> None:
        loop = asyncio.get_running_loop()
        outcome = loop.create_future()

        def _transfer(gate) -> None:
            # Runs on the loop thread (scheduled below): a wait_for
            # cancellation can't race the state check.
            if outcome.done():
                return  # timed out; the late outcome is discarded
            try:
                payload = gate.outcome(timeout=0)
            except BaseException as error:
                outcome.set_exception(error)
            else:
                outcome.set_result(payload)

        def _on_done(gate) -> None:
            # Scheduler drain thread -> event loop hop.
            try:
                loop.call_soon_threadsafe(_transfer, gate)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

        future.add_done_callback(_on_done)
        try:
            try:
                destinations, stats = await asyncio.wait_for(
                    outcome, timeout=self._request_timeout
                )
            except asyncio.TimeoutError:
                self.metrics.count("queries_timed_out")
                self._log.warning(
                    "client %d query %d timed out after %.1fs",
                    conn.client_id, rid, self._request_timeout,
                )
                await conn.send_error(
                    rid,
                    "timeout",
                    f"query not answered within {self._request_timeout}s",
                )
                return
            except asyncio.CancelledError:  # pragma: no cover - teardown
                raise
            except BaseException as error:
                self.metrics.count("queries_failed")
                self._log.warning(
                    "client %d query %d failed: %s", conn.client_id, rid, error
                )
                await conn.send_error(rid, "internal", str(error))
                return
            self.metrics.note_answered(stats)
            await conn.send(
                {
                    "type": "result",
                    "id": rid,
                    "destinations": sorted(destinations),
                    "stats": stats_to_wire(stats),
                }
            )
        except (ConnectionError, OSError):
            pass  # client went away before the answer could be written
        finally:
            conn.inflight -= 1

    # ------------------------------------------------------------------
    # HTTP metrics scrape
    # ------------------------------------------------------------------
    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer ``GET /metrics`` (anything else is a 404) and close."""
        try:
            request = _HTTP_GET + await asyncio.wait_for(
                reader.readuntil(b"\r\n"), timeout=5.0
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ConnectionError, OSError):
            writer.close()
            return
        parts = request.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else ""
        if path in ("/metrics", "/metrics/"):
            self.metrics.count("metrics_scrapes")
            status = "200 OK"
            body = render_metrics(build_metrics(self)).encode("utf-8")
        else:
            status = "404 Not Found"
            body = b"only /metrics is served here\n"
        head = (
            f"HTTP/1.0 {status}\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - racy close
            pass
