"""The observable surface of the network front-end.

:class:`ServerMetrics` accumulates the server-side counters (connection
lifecycle, admissions, rejections, timeouts) plus an aggregated
:class:`~repro.pim.stats.ExecutionStats` of every answered query.
:func:`build_metrics` folds those together with the backend's live
gauges — scheduler throughput counters, the query processor's
plan/result cache counters, epoch pin/publish counts and per-client
in-flight gauges — into one flat mapping, which both the STATS frame
(as JSON) and the HTTP-ish ``GET /metrics`` endpoint (as
:func:`render_metrics` text, one ``moctopus_<name> <value>`` line per
entry) expose.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Mapping, Union

from repro.pim.stats import ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.net.server import MoctopusServer

Number = Union[int, float]

#: Prefix of every rendered metric line.
METRICS_PREFIX = "moctopus_"


class ServerMetrics:
    """Thread-safe counters of one :class:`MoctopusServer`.

    Incremented from the event loop *and* (via future callbacks) from
    scheduler threads, so every mutation takes the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.connections_opened = 0
        self.connections_active = 0
        self.auth_failures = 0
        self.bad_requests = 0
        self.queries_admitted = 0
        self.queries_answered = 0
        self.queries_failed = 0
        self.queries_timed_out = 0
        #: Admission rejections by reason (the BUSY frames sent).
        self.busy_client_inflight = 0
        self.busy_server_saturated = 0
        self.metrics_scrapes = 0
        #: Simulated cost of every answered query, merged; a query
        #: contributes the stats of the coalesced batch it rode in.
        self.served_stats = ExecutionStats()

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (an attribute of this object)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def note_answered(self, stats: ExecutionStats) -> None:
        """Record one answered query and fold in its batch stats."""
        with self._lock:
            self.queries_answered += 1
            self.served_stats.merge(stats)

    def snapshot(self) -> Dict[str, Number]:
        """Flat copy of every server-side counter."""
        with self._lock:
            out: Dict[str, Number] = {
                "connections_opened": self.connections_opened,
                "connections_active": self.connections_active,
                "auth_failures": self.auth_failures,
                "bad_requests": self.bad_requests,
                "queries_admitted": self.queries_admitted,
                "queries_answered": self.queries_answered,
                "queries_failed": self.queries_failed,
                "queries_timed_out": self.queries_timed_out,
                "busy_client_inflight": self.busy_client_inflight,
                "busy_server_saturated": self.busy_server_saturated,
                "admission_rejections": (
                    self.busy_client_inflight + self.busy_server_saturated
                ),
                "metrics_scrapes": self.metrics_scrapes,
                "served_host_time_seconds": self.served_stats.host_time,
                "served_cpc_time_seconds": self.served_stats.cpc_time,
                "served_ipc_time_seconds": self.served_stats.ipc_time,
                "served_pim_time_seconds": self.served_stats.pim_time,
                "served_total_time_seconds": self.served_stats.total_time,
                "served_cpc_bytes": self.served_stats.cpc.bytes_moved,
                "served_ipc_bytes": self.served_stats.ipc.bytes_moved,
            }
            for name, value in sorted(self.served_stats.counters.items()):
                out[f"served_counter_{name}"] = value
        return out


def build_metrics(server: "MoctopusServer") -> Dict[str, Number]:
    """The full metrics mapping of a live server.

    Server counters first, then the backend gauges: scheduler
    throughput, the query processor's cache counters, the epoch
    manager's pin/publish/retention state, and one in-flight gauge per
    connected client (labelled Prometheus-style).
    """
    system = server.system
    scheduler = server.scheduler
    out = server.metrics.snapshot()
    out["scheduler_batches_executed"] = scheduler.batches_executed
    out["scheduler_queries_served"] = scheduler.queries_served
    out["scheduler_queue_pending"] = scheduler.pending
    out["scheduler_parallel_workers"] = scheduler.parallel_workers
    epochs = system._epochs
    out["epoch_pins"] = epochs.pins()
    out["epochs_published"] = epochs.published_epochs
    out["epochs_retained"] = len(epochs.retained_ids())
    for name, value in sorted(system.cache_stats.counters.items()):
        out[f"cache_{name}"] = value
    for client_id, inflight in sorted(server.client_inflight().items()):
        out[f'client_inflight{{client="{client_id}"}}'] = inflight
    return out


def render_metrics(values: Mapping[str, Number]) -> str:
    """Render a metrics mapping as ``/metrics`` text.

    One ``moctopus_<name> <value>`` line per entry; names that carry a
    ``{label="..."}`` suffix keep it after the prefixed name, which is
    the Prometheus exposition shape.
    """
    lines = []
    for name, value in values.items():
        if isinstance(value, float):
            rendered = repr(value)
        else:
            rendered = str(value)
        lines.append(f"{METRICS_PREFIX}{name} {rendered}")
    return "\n".join(lines) + "\n"
