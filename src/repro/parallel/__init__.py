"""Multi-process parallel serving over shared-memory epoch snapshots.

The serving layer's epochs are immutable by construction (PR 3 froze
every published CSR array), which makes them a safe substrate for real
parallelism across the GIL: :mod:`repro.parallel.shm` publishes a pinned
epoch's frozen arrays into one :mod:`multiprocessing.shared_memory`
segment with a compact manifest, and :mod:`repro.parallel.pool` runs a
persistent :class:`WorkerPool` whose child processes attach the segment
zero-copy, rebuild :class:`~repro.serve.epoch.EpochView`\\ s locally and
execute the parent's lowered :class:`~repro.engine.physical.PhysicalPlan`
with the ordinary engines — results and per-operation accounting merge
bit-identically back into the parent.

Entry points: ``Moctopus.serve(parallel=N)`` (or
``MoctopusConfig.serve_workers``) makes the
:class:`~repro.serve.scheduler.BatchScheduler` scatter its coalesced
per-hops batches across the pool; :class:`WorkerPool` can also be driven
directly for whole-batch offload.
"""

from repro.parallel.pool import PoolTicket, WorkerPool, WorkerPoolError
from repro.parallel.shm import (
    EpochManifest,
    SegmentGuard,
    SnapshotSpec,
    attach_epoch,
    export_epoch,
    reap_stale_segments,
)

__all__ = [
    "EpochManifest",
    "PoolTicket",
    "SegmentGuard",
    "SnapshotSpec",
    "WorkerPool",
    "WorkerPoolError",
    "attach_epoch",
    "export_epoch",
    "reap_stale_segments",
]
