"""The persistent multi-process worker pool for epoch-pinned execution.

:class:`WorkerPool` is the process-level analogue of the in-process
:class:`~repro.serve.scheduler.BatchScheduler` worker: child processes
attach exported epochs (:mod:`repro.parallel.shm`) zero-copy, rebuild
:class:`~repro.serve.epoch.EpochView`\\ s locally, and execute the exact
:class:`~repro.engine.physical.PhysicalPlan` the parent lowered — same
plan, same frozen arrays, same engine code — so results *and* simulated
statistics are bit-identical to in-process pinned execution.

Protocol (per-worker FIFO task queues, one shared result queue):

* ``("epoch", manifest)`` — broadcast before any task referencing the
  epoch; the worker attaches the shared segment (idempotent);
* ``("exec", task_id, epoch_id, engine, plan, sources)`` — run one
  batch; replies ``("done", task_id, worker_id, result, stats,
  lifetime_delta)`` where the delta is the fresh per-task
  :class:`~repro.pim.system.PIMSystem`'s lifetime capture, merged by the
  parent into its own accounting platform (bit-identical integer
  counters, order-independent);
* ``("retire", epoch_id)`` — detach and acknowledge; the parent unlinks
  the segment only after **every** worker has acknowledged, and only
  then releases the epoch's pin — shared-memory lifetime is exactly the
  pin's lifetime;
* ``("stop",)`` — detach everything and exit.

Because the queues are FIFO per worker, an ``exec`` can never overtake
the ``epoch`` broadcast it depends on.  Worker death is detected by the
parent's collector thread, which fails every outstanding ticket instead
of letting callers block forever.
"""

from __future__ import annotations

import multiprocessing
import queue
import sys
import threading
import traceback
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import BatchResult, KHopQuery
from repro.serve.scheduler import ResultGate
from repro.parallel.shm import (
    SegmentGuard,
    attach_epoch,
    export_epoch,
    reap_stale_segments,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.system import Moctopus
    from repro.serve.epoch import Epoch


class WorkerPoolError(RuntimeError):
    """A worker failed (raised during execution, or died outright)."""


class PoolTicket(ResultGate):
    """Handle for one scattered batch; resolves when its worker replies."""

    def __init__(self, task_id: int, epoch_id: int) -> None:
        super().__init__(pending="pool batch")
        self.task_id = task_id
        #: Id of the (exported) epoch the batch is pinned to.
        self.epoch_id = epoch_id

    def _resolve(self, result: BatchResult, stats: ExecutionStats) -> None:
        self._settle((result, stats))

    def outcome(
        self, timeout: Optional[float] = None
    ) -> Tuple[BatchResult, ExecutionStats, int]:
        """``(result, stats, epoch_id)`` — blocks until the worker replies."""
        result, stats = self._wait(timeout)
        return result, stats, self.epoch_id


# ----------------------------------------------------------------------
# Child process
#
# Everything below the marker runs inside worker *processes*, where the
# parent's coverage tracer cannot see it — hence the no-cover pragmas.
# The logic itself is still proven in-process: attach/detach round-trips
# and view execution are exercised directly by tests/test_parallel_serving.py,
# and the loop's observable protocol by every pool test.
# ----------------------------------------------------------------------
def _detach(attached: Dict[int, tuple], epoch_id: int) -> None:  # pragma: no cover
    """Drop a cached epoch and close its mapping (views must die first)."""
    entry = attached.pop(epoch_id, None)
    if entry is None:
        return
    epoch, segment = entry
    del entry, epoch  # release the numpy views into the mapping
    try:
        segment.close()
    except BufferError:  # pragma: no cover - straggler view
        pass


def _execute_task(  # pragma: no cover - runs in the worker process
    worker_id: int,
    config,
    attached: Dict[int, tuple],
    engines: Dict[str, object],
    runtime,
    message: tuple,
    result_queue,
) -> None:
    """Run one scattered batch and reply.

    A dedicated function (not inline in the worker loop) so every
    reference to the attached epoch — the view, the engine's scratch
    bindings — dies when it returns: a lingering local in the loop
    would keep numpy views into the shared mapping alive across a later
    ``retire`` and block the detach's ``close()``.
    """
    from repro.engine.base import create_engine
    from repro.serve.epoch import EpochView

    _, task_id, epoch_id, engine_name, plan, sources = message
    try:
        epoch, _segment = attached[epoch_id]
        # A fresh platform per task makes its lifetime capture
        # exactly the task's accounting delta (see absorb_lifetime).
        pim = PIMSystem(config.cost_model)
        view = EpochView(epoch, pim)
        engine = engines.get(engine_name)
        if engine is None:
            engine = engines[engine_name] = create_engine(
                engine_name, runtime
            )
        result, stats = engine.execute(plan, sources, view=view)
        result_queue.put(
            ("done", task_id, worker_id, result, stats,
             pim.capture_lifetime())
        )
    except BaseException:
        result_queue.put(
            ("error", task_id, worker_id, traceback.format_exc())
        )


def worker_main(  # pragma: no cover - runs in the worker process
    worker_id: int,
    config,
    label_names: Dict[int, str],
    task_queue,
    result_queue,
) -> None:
    """Entry point of one pool worker process."""
    from repro.engine.base import EngineRuntime

    attached: Dict[int, tuple] = {}
    engines: Dict[str, object] = {}
    # View-mode execution never touches the live-system half of the
    # runtime (partitioner, storages, processors, migrator) — it reads
    # config flags and label names and charges the *view's* platform.
    runtime = EngineRuntime(
        config=config,
        pim=PIMSystem(config.cost_model),
        partitioner=None,
        module_storages=[],
        host_storage=None,
        processors=[],
        migrator=None,
        label_names=dict(label_names),
    )
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            for epoch_id in list(attached):
                _detach(attached, epoch_id)
            result_queue.put(("stopped", worker_id))
            return
        if kind == "epoch":
            manifest = message[1]
            if manifest.epoch_id not in attached:
                attached[manifest.epoch_id] = attach_epoch(manifest)
        elif kind == "retire":
            epoch_id = message[1]
            _detach(attached, epoch_id)
            result_queue.put(("retired", worker_id, epoch_id))
        else:  # ("exec", task_id, epoch_id, engine_name, plan, sources)
            _execute_task(
                worker_id, config, attached, engines, runtime, message,
                result_queue,
            )
        # Nothing epoch-shaped may survive the iteration (see
        # ``_execute_task``); ``message`` itself is plain data.
        del message


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Export:
    """One exported epoch: its pin, its segment, and its bookkeeping."""

    __slots__ = ("epoch", "segment", "manifest", "inflight", "retiring", "acks")

    def __init__(self, epoch: "Epoch", segment, manifest) -> None:
        self.epoch = epoch
        self.segment = segment
        self.manifest = manifest
        #: Tasks currently scattered against this epoch.
        self.inflight = 0
        #: Whether a retire broadcast is in flight.
        self.retiring = False
        #: Workers that have acknowledged the retire so far.
        self.acks = 0


class WorkerPool:
    """Scatters epoch-pinned batches across persistent worker processes."""

    def __init__(
        self,
        system: "Moctopus",
        workers: int,
        engine: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._system = system
        self._epochs = system._epochs
        config = system.config
        self._engine_name = engine or system.engine_name
        self.workers = workers
        method = start_method or config.serve_worker_start_method
        if method is None:
            # On Linux, ``fork`` starts in milliseconds and shares the
            # parent's loaded interpreter; workers only ever touch their
            # queues, the shared segments and numpy, so inherited locks
            # are harmless.  Everywhere else — notably macOS, where
            # CPython moved the default to spawn because fork-without-
            # exec in a threaded process can abort in system frameworks
            # — the platform-safe choice is spawn.
            available = multiprocessing.get_all_start_methods()
            method = (
                "fork"
                if sys.platform.startswith("linux") and "fork" in available
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(method)
        # Collect whatever a crashed sibling may have leaked before
        # creating segments of our own.
        reap_stale_segments()
        self._guard = SegmentGuard()
        #: Parent-side merged accounting platform: worker lifetime
        #: deltas fold in here, bit-identically to in-process serving.
        self.pim = PIMSystem(config.cost_model)
        self._lock = threading.Lock()
        self._task_queues = [self._ctx.Queue() for _ in range(workers)]
        self._results = self._ctx.Queue()
        label_names = system._query_processor._runtime.label_names
        self._processes = [
            self._ctx.Process(
                target=worker_main,
                args=(
                    worker_id,
                    config,
                    dict(label_names),
                    task_queue,
                    self._results,
                ),
                daemon=True,
                name=f"moctopus-pool-worker-{worker_id}",
            )
            for worker_id, task_queue in enumerate(self._task_queues)
        ]
        # The resource tracker must exist *before* the workers start, or
        # each child spawns a private tracker on its first attach and
        # every private tracker later reports the (parent-unlinked)
        # segments as leaked.  With the parent's tracker inherited, all
        # register/unregister traffic multiplexes one pipe where causal
        # order (attach happens-before detach-ack happens-before unlink)
        # keeps the books balanced.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - non-POSIX platforms
            pass
        for process in self._processes:
            process.start()
        self._exports: Dict[int, _Export] = {}
        #: Epoch id of the newest export (the only one new work targets).
        self._current_export_id: Optional[int] = None
        self._tickets: Dict[int, PoolTicket] = {}
        self._next_task = 0
        self._next_worker = 0
        self._closed = False
        self._broken: Optional[WorkerPoolError] = None
        self._stopped_acks = 0
        self._collector = threading.Thread(
            target=self._collect, name="moctopus-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Export lifecycle (pin -> export -> retire -> unlink -> unpin)
    # ------------------------------------------------------------------
    def _acquire_export_slot(self) -> _Export:
        """Reserve one in-flight slot on an export of the latest epoch.

        The returned export has had ``inflight`` incremented under the
        lock, which is what keeps it from being retired between here
        and the task enqueue.  The expensive half — copying every
        snapshot into a fresh shared segment — runs *outside* the lock,
        so the collector thread can keep settling results and retire
        acks while an export is being built; a concurrent builder that
        loses the install race simply unlinks its copy.
        """
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("worker pool is closed")
                if self._broken is not None:
                    raise self._broken
                epoch = self._epochs.pin()
                export = self._exports.get(epoch.epoch_id)
                if export is not None:
                    # The export already holds this epoch's pin.
                    self._epochs.unpin(epoch)
                    export.inflight += 1
                    return export
            # Latest epoch not exported yet: build the segment without
            # blocking the pool (our pin keeps the epoch alive).
            segment, manifest = export_epoch(epoch)
            self._guard.add(segment.name)
            closed = False
            installed: Optional[_Export] = None
            with self._lock:
                if self._closed:
                    closed = True
                else:
                    installed = self._exports.get(epoch.epoch_id)
                    if installed is None:
                        export = _Export(epoch, segment, manifest)
                        self._exports[epoch.epoch_id] = export
                        self._current_export_id = epoch.epoch_id
                        for task_queue in self._task_queues:
                            task_queue.put(("epoch", manifest))
                        self._retire_stale()
                        export.inflight += 1
                        return export
                    if installed.retiring:
                        # The racing winner was itself superseded and is
                        # already detaching — start over on the newest.
                        installed = None
                    else:
                        installed.inflight += 1
            # Lost the install race (or the pool closed underneath us):
            # drop our copy and the extra pin.
            segment.close()
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - unlink race
                pass
            self._guard.discard(segment.name)
            self._epochs.unpin(epoch)
            if closed:
                raise RuntimeError("worker pool is closed")
            if installed is not None:
                return installed

    def _release_export_slot(self, epoch_id: int) -> None:
        """Return an unused reserved slot.  Holds the lock."""
        export = self._exports.get(epoch_id)
        if export is not None:
            export.inflight -= 1
            self._maybe_retire(epoch_id)

    def _retire_stale(self) -> None:
        """Broadcast retires for idle superseded exports.  Holds the lock."""
        for epoch_id in list(self._exports):
            self._maybe_retire(epoch_id)

    def _maybe_retire(self, epoch_id: int) -> None:
        """Retire one export if superseded and drained.  Holds the lock.

        Called both when a newer epoch is exported and when an export's
        last in-flight task settles — an export busy at supersede time
        would otherwise be skipped once and never revisited, pinning its
        epoch (and holding its segment) until the next publish or pool
        close.
        """
        export = self._exports.get(epoch_id)
        if (
            export is None
            or epoch_id == self._current_export_id
            or export.inflight > 0
            or export.retiring
        ):
            return
        export.retiring = True
        export.acks = 0
        for task_queue in self._task_queues:
            task_queue.put(("retire", epoch_id))

    def _finish_retire(self, epoch_id: int) -> None:
        """Unlink after the last detach ack, then drop the pin.  Holds the lock."""
        export = self._exports.pop(epoch_id, None)
        if export is None:
            return
        export.segment.close()
        try:
            export.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - reaper race
            pass
        self._guard.discard(export.segment.name)
        self._epochs.unpin(export.epoch)

    def exported_epoch_ids(self) -> List[int]:
        """Ids of the epochs currently exported (diagnostics/tests)."""
        with self._lock:
            return sorted(self._exports)

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------
    def submit_khop(self, hops: int, sources: List[int]) -> PoolTicket:
        """Scatter one coalesced k-hop batch to the next worker."""
        return self.submit(KHopQuery(hops=hops, sources=list(sources)))

    def submit(self, query, engine: Optional[str] = None) -> PoolTicket:
        """Scatter one batch query against the latest published epoch."""
        export = self._acquire_export_slot()
        try:
            # Lower in the parent so every process executes the exact
            # plan in-process pinned execution would (identical fixpoint
            # bounds derived from the epoch's frozen row counts).  Pure
            # computation — deliberately outside the pool lock.
            plan = self._system._query_processor.lower(
                query, view=export.epoch
            )
        except BaseException:
            with self._lock:
                self._release_export_slot(export.epoch.epoch_id)
            raise
        with self._lock:
            if self._closed:
                self._release_export_slot(export.epoch.epoch_id)
                raise RuntimeError("worker pool is closed")
            task_id = self._next_task
            self._next_task += 1
            ticket = PoolTicket(task_id, export.epoch.epoch_id)
            self._tickets[task_id] = ticket
            worker_id = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.workers
            self._task_queues[worker_id].put(
                (
                    "exec",
                    task_id,
                    export.epoch.epoch_id,
                    engine or self._engine_name,
                    plan,
                    list(query.sources),
                )
            )
            return ticket

    def execute(
        self, query, engine: Optional[str] = None, timeout: float = 60.0
    ) -> Tuple[BatchResult, ExecutionStats, int]:
        """Blocking convenience wrapper: submit one batch and gather it."""
        return self.submit(query, engine=engine).outcome(timeout=timeout)

    # ------------------------------------------------------------------
    # The collector thread
    # ------------------------------------------------------------------
    def _settle_task(self, task_id: int) -> Optional[PoolTicket]:
        """Pop a ticket and release its inflight slot.  Holds the lock."""
        ticket = self._tickets.pop(task_id, None)
        if ticket is None:
            return None
        export = self._exports.get(ticket.epoch_id)
        if export is not None:
            export.inflight -= 1
            # The last drained task of a superseded export retires it.
            self._maybe_retire(ticket.epoch_id)
        return ticket

    def _collect(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=0.2)
            except queue.Empty:
                if self._check_liveness():
                    return
                continue
            kind = message[0]
            if kind == "done":
                _, task_id, _worker_id, result, stats, lifetime = message
                with self._lock:
                    ticket = self._settle_task(task_id)
                    if ticket is not None:
                        # Only work whose caller can observe the answer
                        # is merged — a straggler reply for a ticket the
                        # liveness check already failed must not skew
                        # the parent's accounting.
                        self.pim.absorb_lifetime(lifetime)
                if ticket is not None:
                    ticket._resolve(result, stats)
            elif kind == "error":
                _, task_id, worker_id, trace = message
                with self._lock:
                    ticket = self._settle_task(task_id)
                if ticket is not None:
                    ticket._fail(
                        WorkerPoolError(
                            f"worker {worker_id} failed:\n{trace}"
                        )
                    )
            elif kind == "retired":
                _, _worker_id, epoch_id = message
                with self._lock:
                    export = self._exports.get(epoch_id)
                    if export is not None and export.retiring:
                        export.acks += 1
                        if export.acks >= self.workers:
                            self._finish_retire(epoch_id)
            elif kind == "stopped":
                self._stopped_acks += 1
                if self._stopped_acks >= self.workers:
                    return

    def _check_liveness(self) -> bool:
        """Fail outstanding work if workers died; return True to exit."""
        if self._closed:
            return all(not process.is_alive() for process in self._processes)
        dead = [
            process
            for process in self._processes
            if not process.is_alive() and process.exitcode not in (0, None)
        ]
        if dead:
            error = WorkerPoolError(
                "worker process(es) died: "
                + ", ".join(
                    f"{process.name} (exit {process.exitcode})"
                    for process in dead
                )
            )
            with self._lock:
                self._broken = error
                tickets = list(self._tickets.values())
                self._tickets.clear()
                # Failed tickets still occupied in-flight slots; release
                # them or their (superseded) exports can never retire.
                for ticket in tickets:
                    self._release_export_slot(ticket.epoch_id)
            for ticket in tickets:
                ticket._fail(error)
        return False

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers, unlink every segment, release every pin.

        Idempotent and safe to call from any thread.  Workers that fail
        to exit in ``timeout`` are terminated; segments are unlinked
        either way (the kernel keeps the mapping alive for any straggler
        until it really exits).
        """
        with self._lock:
            if self._closed:
                already_closed = True
            else:
                already_closed = False
                self._closed = True
                for task_queue in self._task_queues:
                    task_queue.put(("stop",))
        if already_closed:
            self._collector.join(timeout)
            return
        self._collector.join(timeout)
        for process in self._processes:
            process.join(timeout=max(0.1, timeout / self.workers))
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=1.0)
        with self._lock:
            tickets = list(self._tickets.values())
            self._tickets.clear()
            for epoch_id in list(self._exports):
                self._finish_retire(epoch_id)
        for ticket in tickets:
            ticket._fail(RuntimeError("worker pool closed"))
        self._guard.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(workers={self.workers}, engine={self._engine_name!r}, "
            f"exports={len(self._exports)})"
        )
