"""Shared-memory export/attach of pinned serving epochs.

A published :class:`~repro.serve.epoch.Epoch` is already the perfect
unit of multi-process fan-out: every array in it is frozen
(``writeable=False``) and every consumer is a pure reader.  This module
moves those arrays into one :mod:`multiprocessing.shared_memory`
segment per epoch so worker *processes* can execute epoch-pinned plans
against them **zero-copy** — the child maps the segment and wraps numpy
views over it; no serialization of the graph ever crosses a process
boundary.

The wire format is deliberately dumb: every exported array is ``int64``
(the dtype all snapshot and owner arrays already share), so a segment
is a flat ``int64`` heap and the :class:`EpochManifest` — a small
picklable description shipped over the pool's task queue — records each
array as an ``(offset, length)`` pair in elements.  :func:`attach_epoch`
inverts the export into real :class:`~repro.core.snapshot.GraphSnapshot`
/ :class:`~repro.partition.owner_index.OwnerIndex` / ``Epoch`` objects
whose arrays are read-only views into the mapped segment.

Crash-safe cleanup
------------------
POSIX shared memory outlives its creator, so a killed parent would leak
``/dev/shm`` segments forever.  Every exporting process keeps a **guard
file** in the temp directory listing the segments it currently owns
(rewritten atomically on every create/unlink); :func:`reap_stale_segments`
scans the guard files of *dead* processes and unlinks whatever they left
behind.  The pool calls the reaper on startup, so one surviving process
eventually collects any crashed sibling's segments.
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
import tempfile
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.snapshot import GraphSnapshot
from repro.partition.owner_index import OwnerIndex
from repro.serve.epoch import Epoch

#: Every exported array shares this dtype (offsets are in elements).
SEGMENT_DTYPE = np.dtype("<i8")

#: The arrays a :class:`GraphSnapshot` is rebuilt from (``degrees`` is
#: derived, not stored).
_SNAPSHOT_FIELDS = ("node_ids", "indptr", "dsts", "labels", "local_counts")

_GUARD_PREFIX = "moctopus-shm-"
_GUARD_SUFFIX = ".guard"


@dataclass(frozen=True)
class SnapshotSpec:
    """Where one snapshot's arrays live inside the segment."""

    #: ``field name -> (offset, length)`` in ``SEGMENT_DTYPE`` elements.
    arrays: Dict[str, Tuple[int, int]]
    bytes_per_entry: int
    working_set_bytes: int


@dataclass(frozen=True)
class EpochManifest:
    """Picklable description of one exported epoch.

    Everything a worker needs to rebuild the epoch locally: the segment
    name, the per-snapshot array layout (modules first, host last — the
    same order ``Epoch.snapshots`` uses) and the owner-table layout
    (``dense`` or sorted ``nodes``/``parts``, mirroring
    :meth:`OwnerIndex.export_arrays`).
    """

    segment: str
    epoch_id: int
    num_nodes: int
    num_edges: int
    num_modules: int
    snapshots: Tuple[SnapshotSpec, ...]
    owners: Dict[str, Tuple[int, int]]
    total_elements: int


# ----------------------------------------------------------------------
# Export (parent side)
# ----------------------------------------------------------------------
def export_epoch(
    epoch: Epoch, segment_name: str = None
) -> Tuple[shared_memory.SharedMemory, EpochManifest]:
    """Copy ``epoch``'s frozen arrays into one fresh shared segment.

    Returns the created (still attached) segment and the manifest to
    ship to workers.  The caller owns the segment's lifetime: it must
    hold the epoch's pin for as long as the manifest circulates and
    ``unlink()`` the segment when the last worker has detached (the
    :class:`~repro.parallel.pool.WorkerPool` ties both to the epoch
    pin/unpin protocol).
    """
    chunks: List[np.ndarray] = []
    offset = 0

    def place(array: np.ndarray) -> Tuple[int, int]:
        nonlocal offset
        array = np.ascontiguousarray(array, dtype=SEGMENT_DTYPE)
        chunks.append(array)
        span = (offset, len(array))
        offset += len(array)
        return span

    specs = []
    for snapshot in epoch.snapshots:
        specs.append(
            SnapshotSpec(
                arrays={
                    name: place(getattr(snapshot, name))
                    for name in _SNAPSHOT_FIELDS
                },
                bytes_per_entry=snapshot.bytes_per_entry,
                working_set_bytes=snapshot.working_set_bytes,
            )
        )
    owners = {
        name: place(array)
        for name, array in epoch.owners.export_arrays().items()
    }

    if segment_name is None:
        segment_name = (
            f"moctopus-{os.getpid()}-{secrets.token_hex(4)}-e{epoch.epoch_id}"
        )
    segment = shared_memory.SharedMemory(
        create=True,
        name=segment_name,
        # At least one element so even a degenerate (empty) epoch maps
        # to a buffer ``frombuffer`` accepts.
        size=max(1, offset) * SEGMENT_DTYPE.itemsize,
    )
    heap = np.frombuffer(segment.buf, dtype=SEGMENT_DTYPE)
    cursor = 0
    for chunk in chunks:
        heap[cursor : cursor + len(chunk)] = chunk
        cursor += len(chunk)
    del heap  # drop the buffer view so close()/unlink() can't be blocked

    manifest = EpochManifest(
        segment=segment.name,
        epoch_id=epoch.epoch_id,
        num_nodes=epoch.num_nodes,
        num_edges=epoch.num_edges,
        num_modules=epoch.num_modules,
        snapshots=tuple(specs),
        owners=owners,
        total_elements=offset,
    )
    return segment, manifest


# ----------------------------------------------------------------------
# Attach (worker side)
# ----------------------------------------------------------------------
def attach_epoch(
    manifest: EpochManifest,
) -> Tuple[Epoch, shared_memory.SharedMemory]:
    """Rebuild a pinned :class:`Epoch` zero-copy over a mapped segment.

    Every array of the returned epoch is a read-only numpy view into
    the shared mapping; the caller must keep the returned segment
    object alive as long as the epoch is in use and ``close()`` it
    (after dropping the epoch) when told to detach.

    Resource-tracker bookkeeping: every process of a multiprocessing
    family multiplexes one tracker pipe, and the tracker's cache is a
    per-type *set* — so the exporter's create registers the name once,
    worker attaches are idempotent re-registers that land (by causal
    message order: attach happens-before the detach ack happens-before
    the unlink) *between* the create and the exporter's unlink, and the
    unlink's unregister balances the books.  Nothing here may
    unregister manually: any extra unregister races the exporter's and
    spams the tracker with KeyErrors.
    """
    segment = shared_memory.SharedMemory(name=manifest.segment)
    heap = np.frombuffer(segment.buf, dtype=SEGMENT_DTYPE)
    heap.flags.writeable = False  # read-only views, like any published epoch

    def view(span: Tuple[int, int]) -> np.ndarray:
        offset, length = span
        return heap[offset : offset + length]

    snapshots = tuple(
        GraphSnapshot(
            node_ids=view(spec.arrays["node_ids"]),
            indptr=view(spec.arrays["indptr"]),
            dsts=view(spec.arrays["dsts"]),
            labels=view(spec.arrays["labels"]),
            local_counts=view(spec.arrays["local_counts"]),
            bytes_per_entry=spec.bytes_per_entry,
            working_set_bytes=spec.working_set_bytes,
        ).freeze()
        for spec in manifest.snapshots
    )
    owners = OwnerIndex.from_arrays(
        dense=view(manifest.owners["dense"])
        if "dense" in manifest.owners
        else None,
        nodes=view(manifest.owners["nodes"])
        if "nodes" in manifest.owners
        else None,
        parts=view(manifest.owners["parts"])
        if "parts" in manifest.owners
        else None,
    )
    epoch = Epoch(
        epoch_id=manifest.epoch_id,
        snapshots=snapshots,
        owners=owners,
        num_nodes=manifest.num_nodes,
        num_edges=manifest.num_edges,
    )
    return epoch, segment


# ----------------------------------------------------------------------
# Crash-safe cleanup (guard files)
# ----------------------------------------------------------------------
def _guard_directory() -> str:
    return tempfile.gettempdir()


def _proc_start_token(pid: int) -> str:
    """A token identifying this *incarnation* of ``pid`` (or ``""``).

    A bare pid is not enough to decide whether a guard file's owner is
    dead: the kernel recycles pids, and a recycled pid would make a
    crashed owner look alive forever, permanently leaking its segments.
    On Linux the process start time (field 22 of ``/proc/<pid>/stat``)
    disambiguates; elsewhere the empty token degrades to the plain
    pid-liveness check.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        # The comm field may contain spaces/parens; everything after the
        # *last* ") " is space-separated, starting at field 3 (state).
        tail = data.rsplit(b") ", 1)[1].split()
        return tail[19].decode("ascii")  # field 22 overall = starttime
    except (OSError, IndexError):  # pragma: no cover - non-Linux
        return ""


@dataclass
class SegmentGuard:
    """Atomic on-disk ledger of the segments this process currently owns.

    The ledger exists purely for *crash* cleanup: a clean close unlinks
    the segments and removes the ledger, while a killed process leaves
    both behind for :func:`reap_stale_segments` to collect.  An
    ``atexit`` hook covers the middle ground (interpreter exit without
    an explicit close).
    """

    path: str = ""
    _segments: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.path:
            self.path = os.path.join(
                _guard_directory(),
                f"{_GUARD_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
                f"{_GUARD_SUFFIX}",
            )
        # Exporters add() from builder threads while the pool's collector
        # discard()s retired segments: the set mutation and the ledger
        # rewrite must be atomic with respect to each other, or a torn
        # ledger could hide a live segment from the crash reaper.
        self._lock = threading.Lock()
        self._write()
        atexit.register(self._atexit)

    def _write(self) -> None:
        """Serialize the ledger (caller holds ``self._lock``)."""
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "start": _proc_start_token(os.getpid()),
                "segments": sorted(self._segments),
            }
        )
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_path, self.path)

    def add(self, segment_name: str) -> None:
        """Record a freshly created segment."""
        with self._lock:
            self._segments.add(segment_name)
            self._write()

    def discard(self, segment_name: str) -> None:
        """Forget an unlinked segment."""
        with self._lock:
            self._segments.discard(segment_name)
            self._write()

    def close(self) -> None:
        """Remove the ledger (every owned segment has been unlinked)."""
        atexit.unregister(self._atexit)
        with self._lock:
            try:
                os.remove(self.path)
            except FileNotFoundError:
                pass

    def _atexit(self) -> None:  # pragma: no cover - interpreter teardown
        for name in list(self._segments):
            _unlink_segment(name)
        self.close()


def _unlink_segment(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - e.g. EACCES on a foreign segment
        # A multi-user temp directory can surface another user's dead
        # guard; their 0600 segments are not ours to reap, and failing
        # to reap must never break *this* process's pool startup.
        return False
    segment.close()
    try:
        segment.unlink()
    except OSError:  # pragma: no cover - unlink race
        return False
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign live process
        return True
    return True


def reap_stale_segments() -> List[str]:
    """Unlink segments whose owning process died without cleaning up.

    Scans every guard file in the temp directory; ledgers of live
    processes are left alone, ledgers of dead ones have their listed
    segments unlinked and the ledger removed.  Returns the names of the
    segments actually reaped.  Safe to call concurrently — unlink races
    resolve to one winner and the losers see ``FileNotFoundError``.
    """
    reaped: List[str] = []
    directory = _guard_directory()
    for name in os.listdir(directory):
        if not (name.startswith(_GUARD_PREFIX) and name.endswith(_GUARD_SUFFIX)):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                ledger = json.load(handle)
            pid = int(ledger["pid"])
            started = str(ledger.get("start", ""))
            segments = list(ledger.get("segments", []))
        except (OSError, ValueError, KeyError):
            continue  # torn write of a live guard; its owner will rewrite
        if _pid_alive(pid):
            # Same pid, but the same *process*?  A recycled pid must not
            # shield a dead owner's segments forever.
            if not started or _proc_start_token(pid) == started:
                continue
        for segment_name in segments:
            if _unlink_segment(segment_name):
                reaped.append(segment_name)
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - concurrent reaper / foreign
            pass  # owner in a sticky temp dir; retried by later reapers
    return reaped
