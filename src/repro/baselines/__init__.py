"""Comparison systems used in the paper's evaluation.

* :class:`RedisGraphEngine` — a single-node GraphBLAS-style sparse
  matrix engine with a host-only cost model (the paper's RedisGraph
  baseline);
* :class:`PIMHashSystem` — Moctopus's execution engine with plain hash
  partitioning (the paper's PIM-hash contrast system).
"""

from repro.baselines.pim_hash import PIMHashSystem
from repro.baselines.redisgraph import RedisGraphEngine

__all__ = ["RedisGraphEngine", "PIMHashSystem"]
