"""RedisGraph-like baseline: a single-node GraphBLAS-style engine.

The paper's primary baseline is RedisGraph, an in-memory graph database
that stores the graph as sparse matrices (SuiteSparse:GraphBLAS) and
evaluates path queries with sparse matrix products on one CPU core.
This module reproduces that *behaviour and cost profile* rather than the
code base (documented substitution, see DESIGN.md):

* the adjacency is kept in sorted per-row arrays, the mutable analogue
  of a CSC/CSR sparse matrix with delta updates;
* a batch k-hop query expands the batch frontier hop by hop with
  row gathers — every distinct frontier row is a dependent random access
  that falls out of cache once the matrix exceeds the modelled LLC,
  which is precisely the "memory wall" behaviour the paper measures;
* an edge update must locate the row, scan/shift the sorted row array,
  and fix up the internal index — all on the single host core, with no
  PIM parallelism to hide it.

Every public operation returns an
:class:`~repro.pim.stats.ExecutionStats` whose only non-zero component
is ``host_time``, so the benchmark harness can compare engines on one
axis.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.digraph import DEFAULT_LABEL, DiGraph
from repro.pim.cost_model import CostModel
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import BatchResult, KHopQuery, RPQuery

#: Bytes per stored matrix entry (column index + label).
BYTES_PER_ENTRY = 12
#: Bytes of per-row overhead (row pointer + length).
BYTES_PER_ROW = 16


class RedisGraphEngine:
    """Single-node sparse-matrix graph engine with a host-only cost model."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        # A single-module platform: only the host component is ever charged.
        self._platform = PIMSystem(self.cost_model.with_modules(1))
        self._label_names = label_names or {}
        #: Sorted next-hop arrays per row, plus a parallel label map.
        self._rows: Dict[int, List[int]] = {}
        #: Sorted in-neighbor arrays per row.  RedisGraph maintains the
        #: transpose of every relationship matrix so that reverse
        #: traversals stay fast; keeping it up to date is a large part of
        #: the update cost the paper measures.
        self._in_rows: Dict[int, List[int]] = {}
        self._labels: Dict[Tuple[int, int], int] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        cost_model: Optional[CostModel] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> "RedisGraphEngine":
        """Build an engine and bulk-load ``graph`` (no simulated cost)."""
        engine = cls(cost_model=cost_model, label_names=label_names)
        engine.load_graph(graph)
        return engine

    def load_graph(self, graph: DiGraph) -> None:
        """Bulk-load a graph without charging simulated time."""
        for src, dst, label in graph.labeled_edges():
            self._insert_edge_data(src, dst, label)
        for node in graph.nodes():
            self._rows.setdefault(node, [])

    def _insert_edge_data(self, src: int, dst: int, label: int) -> bool:
        row = self._rows.setdefault(src, [])
        position = bisect.bisect_left(row, dst)
        if position < len(row) and row[position] == dst:
            self._labels[(src, dst)] = label
            return False
        row.insert(position, dst)
        in_row = self._in_rows.setdefault(dst, [])
        in_row.insert(bisect.bisect_left(in_row, src), src)
        self._labels[(src, dst)] = label
        self._rows.setdefault(dst, [])
        self._in_rows.setdefault(src, [])
        self._num_edges += 1
        return True

    def _delete_edge_data(self, src: int, dst: int) -> bool:
        row = self._rows.get(src)
        if row is None:
            return False
        position = bisect.bisect_left(row, dst)
        if position >= len(row) or row[position] != dst:
            return False
        del row[position]
        in_row = self._in_rows.get(dst, [])
        in_position = bisect.bisect_left(in_row, src)
        if in_position < len(in_row) and in_row[in_position] == src:
            del in_row[in_position]
        self._labels.pop((src, dst), None)
        self._num_edges -= 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of stored nodes."""
        return len(self._rows)

    @property
    def num_edges(self) -> int:
        """Number of stored edges."""
        return self._num_edges

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether ``src -> dst`` is stored."""
        return (src, dst) in self._labels

    def next_hops(self, node: int) -> List[int]:
        """Next hops of ``node`` (sorted)."""
        return list(self._rows.get(node, ()))

    def matrix_bytes(self) -> int:
        """Approximate resident size of the forward plus transpose matrices."""
        return 2 * (
            len(self._rows) * BYTES_PER_ROW + self._num_edges * BYTES_PER_ENTRY
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def batch_khop(
        self, sources: Iterable[int], hops: int
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Batch k-hop query evaluated with hop-by-hop row gathers."""
        query = KHopQuery(hops=hops, sources=list(sources))
        operation = self._platform.begin_operation()
        working_set = max(self.matrix_bytes(), 1)
        # Frontier as node -> set of query rows (the transpose of Q).
        frontier: Dict[int, Set[int]] = {}
        for row, source in enumerate(query.sources):
            if source in self._rows:
                frontier.setdefault(source, set()).add(row)
        results: List[Set[int]] = [set() for _ in query.sources]

        for hop in range(query.hops):
            with operation.phase(f"mxm {hop + 1}"):
                next_frontier: Dict[int, Set[int]] = {}
                rows_touched = 0
                streamed = 0
                items = 0
                for node, query_rows in frontier.items():
                    row = self._rows.get(node, [])
                    rows_touched += 1
                    streamed += len(row) * BYTES_PER_ENTRY
                    for destination in row:
                        items += len(query_rows)
                        next_frontier.setdefault(destination, set()).update(query_rows)
                operation.host.random_accesses(rows_touched, working_set)
                operation.host.stream_bytes(streamed)
                operation.host.process_items(items)
                frontier = next_frontier
            if not frontier:
                break

        with operation.phase("reduce"):
            total = 0
            for node, query_rows in frontier.items():
                for row in query_rows:
                    results[row].add(node)
                    total += 1
            operation.host.process_items(total)

        stats = operation.finish()
        stats.add_counter("results", sum(len(dests) for dests in results))
        return BatchResult(sources=list(query.sources), destinations=results), stats

    def execute(self, query) -> Tuple[BatchResult, ExecutionStats]:
        """Run a :class:`KHopQuery` or a general :class:`RPQuery`."""
        if isinstance(query, KHopQuery):
            return self.batch_khop(query.sources, query.hops)
        if isinstance(query, RPQuery):
            return self._execute_rpq(query)
        raise TypeError(f"unsupported query type {type(query).__name__}")

    def _execute_rpq(self, query: RPQuery) -> Tuple[BatchResult, ExecutionStats]:
        dfa = query.dfa()
        operation = self._platform.begin_operation()
        working_set = max(self.matrix_bytes(), 1)
        results: List[Set[int]] = [set() for _ in query.sources]
        frontier: Dict[int, Set[Tuple[int, int]]] = {}
        seen: Set[Tuple[int, Tuple[int, int]]] = set()
        for row, source in enumerate(query.sources):
            if source not in self._rows:
                continue
            context = (row, dfa.start)
            frontier.setdefault(source, set()).add(context)
            seen.add((source, context))
            if dfa.is_accepting(dfa.start):
                results[row].add(source)

        iteration = 0
        while frontier:
            iteration += 1
            with operation.phase(f"mxm {iteration}"):
                next_frontier: Dict[int, Set[Tuple[int, int]]] = {}
                rows_touched = 0
                streamed = 0
                items = 0
                for node, contexts in frontier.items():
                    row = self._rows.get(node, [])
                    rows_touched += 1
                    streamed += len(row) * BYTES_PER_ENTRY
                    for destination in row:
                        label = self._labels.get((node, destination), DEFAULT_LABEL)
                        label_string = self._label_names.get(label, str(label))
                        for context in contexts:
                            items += 1
                            query_row, state = context
                            next_state = dfa.step(state, label_string)
                            if next_state is None:
                                continue
                            next_context = (query_row, next_state)
                            key = (destination, next_context)
                            if key in seen:
                                continue
                            seen.add(key)
                            if dfa.is_accepting(next_state):
                                results[query_row].add(destination)
                            next_frontier.setdefault(destination, set()).add(next_context)
                operation.host.random_accesses(rows_touched, working_set)
                operation.host.stream_bytes(streamed)
                operation.host.process_items(items)
                frontier = next_frontier

        stats = operation.finish()
        stats.add_counter("results", sum(len(dests) for dests in results))
        return BatchResult(sources=list(query.sources), destinations=results), stats

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    #: Dependent random accesses paid by one edge update: node-index
    #: lookups for both endpoints, locating the row in the forward matrix
    #: and in the transpose, the edge-id map, and the delta-matrix entry.
    RANDOM_ACCESSES_PER_UPDATE = 6

    def insert_edges(
        self, edges: List[Tuple[int, int]], labels: Optional[List[int]] = None
    ) -> ExecutionStats:
        """Insert a batch of edges on the single host core.

        Each insertion updates the forward matrix *and* its transpose
        (duplicate check, positional insert with a shift) after resolving
        both endpoints through the node index — the full update path of a
        general-purpose graph database, which is what the paper compares
        against.
        """
        operation = self._platform.begin_operation()
        working_set = max(self.matrix_bytes(), 1)
        with operation.phase("insert"):
            for index, (src, dst) in enumerate(edges):
                label = labels[index] if labels else DEFAULT_LABEL
                out_length = len(self._rows.get(src, ()))
                in_length = len(self._in_rows.get(dst, ()))
                operation.host.random_accesses(
                    self.RANDOM_ACCESSES_PER_UPDATE, working_set
                )
                operation.host.stream_bytes(
                    (out_length + in_length) * BYTES_PER_ENTRY
                )
                operation.host.process_items(max(1, (out_length + in_length) // 2))
                self._insert_edge_data(src, dst, label)
        stats = operation.finish()
        stats.add_counter("updates", len(edges))
        return stats

    def delete_edges(self, edges: List[Tuple[int, int]]) -> ExecutionStats:
        """Delete a batch of edges on the single host core."""
        operation = self._platform.begin_operation()
        working_set = max(self.matrix_bytes(), 1)
        with operation.phase("delete"):
            for src, dst in edges:
                out_length = len(self._rows.get(src, ()))
                in_length = len(self._in_rows.get(dst, ()))
                # Deletion pays a full pass over both rows: GraphBLAS-style
                # engines tombstone the entry and compact the row, touching
                # every remaining element in the forward and transpose rows.
                operation.host.random_accesses(
                    self.RANDOM_ACCESSES_PER_UPDATE, working_set
                )
                operation.host.stream_bytes(
                    (out_length + in_length) * BYTES_PER_ENTRY
                )
                operation.host.process_items(max(1, out_length + in_length))
                self._delete_edge_data(src, dst)
        stats = operation.finish()
        stats.add_counter("updates", len(edges))
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RedisGraphEngine(nodes={self.num_nodes}, edges={self.num_edges})"
        )
