"""The PIM-hash contrast system.

The paper's second comparison point: the same PIM platform and the same
matrix-based execution engine as Moctopus, but with the partitioning
scheme that distributed graph databases (G-Tran, ByteGraph) actually
use — every graph node is hash-partitioned across PIM modules.  There is
no labor division (hubs sit on whatever module the hash picked), no
locality-aware placement and no migration.

Because the execution engine is shared with Moctopus, every difference
in the simulated numbers comes from partitioning alone, which is exactly
the comparison Figures 4 and 5 of the paper make (load imbalance from
skew, and the IPC cost of ignoring locality).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import MoctopusConfig
from repro.core.system import Moctopus
from repro.graph.digraph import DiGraph
from repro.pim.cost_model import CostModel


class PIMHashSystem(Moctopus):
    """Moctopus's engine with hash partitioning and nothing else."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> None:
        super().__init__(
            config=MoctopusConfig.pim_hash_config(cost_model),
            label_names=label_names,
        )

    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        cost_model: Optional[CostModel] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> "PIMHashSystem":
        """Build a PIM-hash system and bulk-load ``graph``."""
        system = cls(cost_model=cost_model, label_names=label_names)
        system.load_graph(graph)
        return system
