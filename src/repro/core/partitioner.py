"""Moctopus's Graph Partitioner component.

Wires the partitioning policies of :mod:`repro.partition` into the
configuration the rest of the system expects:

* with the default configuration, low-degree nodes are placed by the
  radical greedy heuristic (first-neighbor placement with the 1.05x
  dynamic capacity constraint) and high-degree nodes are routed to the
  host by the labor-division wrapper;
* with :meth:`MoctopusConfig.pim_hash_config`, every node is placed by a
  plain hash, reproducing the paper's PIM-hash contrast system.

The partitioner owns the ``node_partition_vector`` (the
:class:`~repro.partition.base.PartitionMap`), which records every
placement decision so new nodes can be assigned in O(1) by consulting
their first neighbor's entry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import MoctopusConfig
from repro.partition.base import HOST_PARTITION, PartitionMap, StreamingPartitioner
from repro.partition.hash_partition import HashPartitioner
from repro.partition.labor_division import LaborDivisionPartitioner
from repro.partition.radical_greedy import RadicalGreedyPartitioner


class GraphPartitioner:
    """The component deciding which computing node owns each graph node."""

    def __init__(self, config: MoctopusConfig) -> None:
        self._config = config
        if config.pim_placement == "radical_greedy":
            pim_policy: StreamingPartitioner = RadicalGreedyPartitioner(
                config.num_modules, capacity_factor=config.capacity_factor
            )
        else:
            pim_policy = HashPartitioner(config.num_modules)
        self._pim_policy = pim_policy
        if config.labor_division_enabled:
            self._policy: StreamingPartitioner = LaborDivisionPartitioner(
                pim_policy, high_degree_threshold=config.high_degree_threshold
            )
        else:
            self._policy = pim_policy

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def ingest_edge(self, src: int, dst: int) -> Tuple[int, int]:
        """Observe an arriving edge and place any unseen endpoint.

        Returns the ``(src_partition, dst_partition)`` pair *after* the
        edge has been taken into account; the source may have just been
        promoted to the host if its degree crossed the threshold.
        """
        return self._policy.ingest_edge(src, dst)

    def assign_node(self, node: int, first_neighbor: Optional[int] = None) -> int:
        """Place an isolated new node (no edge yet)."""
        return self._policy.assign_node(node, first_neighbor=first_neighbor)

    def partition_of(self, node: int) -> Optional[int]:
        """Partition of ``node`` (``HOST_PARTITION`` for the host, ``None`` if unknown)."""
        return self._policy.partition_of(node)

    def migrate(self, node: int, target_partition: int) -> None:
        """Record that ``node`` now lives on ``target_partition``."""
        self.partition_map.assign(node, target_partition)

    # ------------------------------------------------------------------
    # Degree stream bookkeeping (the labor-division wrapper's view)
    # ------------------------------------------------------------------
    def observed_out_degree(self, node: int) -> int:
        """Out-degree of ``node`` as seen by the ingest stream (0 for
        policies that track no degrees)."""
        return self._policy.observed_out_degree(node)

    def record_observed_edges(
        self, src_counts: Iterable[Tuple[int, int]], dsts: Iterable[int]
    ) -> None:
        """Bulk degree bookkeeping for edges whose placement is settled.

        Used by the vectorized update path for batch updates that cannot
        change any placement (both endpoints assigned, no source near the
        high-degree threshold); equivalent to the per-edge observations
        :meth:`ingest_edge` would have recorded.  No-op for policies that
        track no degrees.
        """
        self._policy.observe_edges(src_counts, dsts)

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Everything future placement decisions depend on.

        The ``node_partition_vector`` (sorted assignment pairs), the
        labor-division wrapper's observed out-degrees (they decide
        future promotions) and the placement counters (diagnostics the
        recovered system must keep reporting consistently).
        """
        assignments = sorted(self.partition_map.items())
        degrees: List[Tuple[int, int]] = []
        if isinstance(self._policy, LaborDivisionPartitioner):
            degrees = sorted(self._policy._out_degree.items())
        return {
            "assignments": assignments,
            "out_degrees": degrees,
            "greedy_placements": self.greedy_placements(),
            "fallback_placements": self.fallback_placements(),
            "promotions": self.promotions(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild policy state from a capture (freshly constructed only)."""
        if len(self.partition_map):
            raise RuntimeError("restore_state requires an empty partitioner")
        for node, partition in state["assignments"]:
            self.partition_map.assign(node, partition)
        if isinstance(self._policy, LaborDivisionPartitioner):
            self._policy._out_degree = dict(state["out_degrees"])
            self._policy.promotions = int(state["promotions"])
        if isinstance(self._pim_policy, RadicalGreedyPartitioner):
            self._pim_policy.greedy_placements = int(state["greedy_placements"])
            self._pim_policy.fallback_placements = int(state["fallback_placements"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def partition_map(self) -> PartitionMap:
        """The ``node_partition_vector``."""
        return self._policy.partition_map

    @property
    def num_modules(self) -> int:
        """Number of PIM partitions."""
        return self._config.num_modules

    def is_host(self, node: int) -> bool:
        """Whether ``node`` currently lives on the host partition."""
        return self.partition_of(node) == HOST_PARTITION

    def greedy_placements(self) -> int:
        """Placements that followed the first-neighbor heuristic (0 for hash)."""
        if isinstance(self._pim_policy, RadicalGreedyPartitioner):
            return self._pim_policy.greedy_placements
        return 0

    def fallback_placements(self) -> int:
        """Placements diverted by the capacity constraint (0 for hash)."""
        if isinstance(self._pim_policy, RadicalGreedyPartitioner):
            return self._pim_policy.fallback_placements
        return 0

    def promotions(self) -> int:
        """Nodes promoted to the host because they became high-degree."""
        if isinstance(self._policy, LaborDivisionPartitioner):
            return self._policy.promotions
        return 0
