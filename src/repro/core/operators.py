"""Matrix-based operators dispatched from the host to PIM modules.

The query processor translates every request into a small set of
operators, mirroring the paper's architecture (Figure 1):

* :class:`SmxmOperator` — one step of sparse matrix-matrix
  multiplication: "expand these frontier rows against your local
  adjacency segment";
* :class:`MwaitOperator` — gather the partial result a module holds so
  the host can reduce the answer matrix;
* :class:`AddOperator` / :class:`SubOperator` — apply a batch of edge
  insertions / deletions to the module's local segment.

Operator objects are what crosses the CPU-PIM channel, so their
:meth:`payload_bytes` methods define the CPC traffic the simulator
charges for dispatching them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: Bytes to encode one frontier item (destination node id + query context).
BYTES_PER_FRONTIER_ITEM = 16
#: Bytes to encode one edge update (src, dst, label, opcode).
BYTES_PER_UPDATE_ITEM = 20
#: Fixed bytes of an operator header (opcode, counts, plan position).
OPERATOR_HEADER_BYTES = 32


@dataclass
class SmxmOperator:
    """A frontier-expansion task for one PIM module.

    ``frontier`` maps a locally stored node id to the set of query
    contexts (query row for k-hop plans, ``(row, automaton state)`` for
    general RPQs) that currently sit on that node.
    """

    module_id: int
    frontier: Dict[int, Set[object]] = field(default_factory=dict)

    @property
    def num_items(self) -> int:
        """Number of (node, context) frontier items carried."""
        return sum(len(contexts) for contexts in self.frontier.values())

    def payload_bytes(self) -> int:
        """CPC bytes needed to ship this operator to its module."""
        return OPERATOR_HEADER_BYTES + self.num_items * BYTES_PER_FRONTIER_ITEM


@dataclass
class MwaitOperator:
    """A gather request: return the module's partial result to the host."""

    module_id: int
    num_result_items: int = 0

    def payload_bytes(self) -> int:
        """CPC bytes of the returned partial result."""
        return OPERATOR_HEADER_BYTES + self.num_result_items * BYTES_PER_FRONTIER_ITEM


@dataclass
class AddOperator:
    """A batch of edge insertions for one PIM module."""

    module_id: int
    edges: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def num_items(self) -> int:
        """Number of edges carried."""
        return len(self.edges)

    def payload_bytes(self) -> int:
        """CPC bytes needed to ship this operator to its module."""
        return OPERATOR_HEADER_BYTES + self.num_items * BYTES_PER_UPDATE_ITEM


@dataclass
class SubOperator:
    """A batch of edge deletions for one PIM module."""

    module_id: int
    edges: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def num_items(self) -> int:
        """Number of edges carried."""
        return len(self.edges)

    def payload_bytes(self) -> int:
        """CPC bytes needed to ship this operator to its module."""
        return OPERATOR_HEADER_BYTES + self.num_items * BYTES_PER_UPDATE_ITEM
