"""Columnar CSR snapshots of the graph storages, maintained incrementally.

The vectorized execution backend expands frontiers with numpy gathers
instead of per-node dict lookups, which requires the adjacency segments
to be available as flat arrays.  Both storage classes
(:class:`~repro.core.local_storage.LocalGraphStorage` and
:class:`~repro.core.hetero_storage.HeterogeneousGraphStorage`) expose a
``to_csr()`` method returning a :class:`GraphSnapshot`.

Snapshot lifecycle
------------------
A storage keeps one cached **base** snapshot plus a :class:`DeltaOverlay`
that records which rows have been edited since the base was frozen
(edge add/sub, whole-row install/removal from migrations and
labor-division promotions).  ``to_csr()`` then refreshes the cache with
whichever strategy is cheaper:

* **empty overlay** — the cached base is returned as-is (fast path; this
  is what back-to-back queries between updates hit);
* **small overlay** — :func:`merge_snapshot` splices the current data of
  the dirty rows into the base with vectorized segment gathers: clean
  rows are copied as contiguous array slices, only dirty rows are
  re-read from the storage;
* **large overlay** — when the dirty-row count exceeds
  ``snapshot_compact_ratio`` x the base row count, the splice
  bookkeeping would touch most of the snapshot anyway, so the storage
  *compacts*: it rebuilds a fresh base from scratch with the (also
  vectorized) :func:`build_snapshot`.

All three paths produce **array-for-array identical** snapshots — the
engine-parity suite asserts incremental results against from-scratch
rebuilds — so callers never observe which strategy ran.  The pre-PR
behaviour (invalidate on every mutation, rebuild with per-edge Python
appends) is preserved behind the storages' ``incremental=False`` switch
as a benchmark baseline and differential-testing reference
(:func:`build_snapshot_reference`).

A snapshot is a *simulation-faithful* view: alongside the CSR topology
it carries the byte-accounting constants of its storage (hash-map entry
bytes for PIM segments, ``cols_vector`` slot bytes for the host rows)
and the per-row count of locally-owned destinations that the paper's
misplacement detection needs, so the vectorized engine charges exactly
the same simulated work as the scalar one.
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, List, Optional, Tuple

import numpy as np

#: Dirty-row fraction above which ``to_csr`` rebuilds a fresh base
#: instead of splicing the overlay into the cached one.
DEFAULT_SNAPSHOT_COMPACT_RATIO = 0.25

_EMPTY = np.empty(0, dtype=np.int64)
# The empty column is shared by every empty snapshot; freeze it so no
# published snapshot can be mutated through the shared instance.
_EMPTY.flags.writeable = False

#: A row's adjacency entries as the storages hand them over.
RowEntries = List[Tuple[int, int]]


class TransposedBlock:
    """In-edge (CSC-style) view of a snapshot's adjacency: edges grouped
    by *destination*.

    ``dsts`` holds the sorted unique destination node ids, ``indptr``
    the per-destination segment bounds, and ``src_rows`` the producing
    row *indices* (positions into the owning snapshot's ``node_ids``,
    not global ids) of each in-edge.  This is the matrix engine's
    pull-side operand: one ``np.bitwise_or.reduceat`` over the
    ``indptr`` segments computes ``frontier ⊗ Adj`` for a whole
    partition without any per-phase edge sort.
    """

    __slots__ = ("dsts", "indptr", "src_rows")

    def __init__(
        self, dsts: np.ndarray, indptr: np.ndarray, src_rows: np.ndarray
    ) -> None:
        self.dsts = dsts
        self.indptr = indptr
        self.src_rows = src_rows
        for array in (dsts, indptr, src_rows):
            array.flags.writeable = False

    @property
    def num_edges(self) -> int:
        """Number of in-edges in the block."""
        return len(self.src_rows)


def _transpose_edges(
    dsts: np.ndarray, src_rows: np.ndarray
) -> TransposedBlock:
    """Group ``(src_row, dst)`` edge pairs by destination."""
    if dsts.size == 0:
        return TransposedBlock(
            _EMPTY.copy(), np.zeros(1, dtype=np.int64), _EMPTY.copy()
        )
    order = np.argsort(dsts, kind="stable")
    sorted_dsts = dsts[order]
    boundary = np.empty(len(sorted_dsts), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_dsts[1:], sorted_dsts[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    indptr = np.append(starts, len(sorted_dsts))
    return TransposedBlock(sorted_dsts[starts], indptr, src_rows[order])


class GraphSnapshot:
    """Immutable CSR view of one storage's adjacency rows.

    Rows are identified by their *global* node ids; ``node_ids`` is
    sorted so membership and row lookup are ``searchsorted`` calls.
    """

    def __init__(
        self,
        node_ids: np.ndarray,
        indptr: np.ndarray,
        dsts: np.ndarray,
        labels: np.ndarray,
        local_counts: np.ndarray,
        bytes_per_entry: int,
        working_set_bytes: int,
    ) -> None:
        self.node_ids = node_ids
        self.indptr = indptr
        self.dsts = dsts
        self.labels = labels
        #: Per row: how many of its destinations are rows of the *same*
        #: storage (the "local" side of misplacement detection).
        self.local_counts = local_counts
        #: Bytes streamed per adjacency entry when a row is scanned.
        self.bytes_per_entry = bytes_per_entry
        #: Size of the structure for working-set-dependent access costs
        #: (the host's ``cols_vector`` capacity; a module's segment bytes).
        self.working_set_bytes = working_set_bytes
        self.degrees = np.diff(indptr)
        # Lazily built derived views (transpose / per-label blocks /
        # degree histogram).  A snapshot is immutable — the storages'
        # SnapshotCache *replaces* the snapshot object on any mutation —
        # so once built these can never go stale.  Concurrent pinned
        # readers may race to build one; both compute the same arrays
        # and the single reference assignment publishes either safely.
        self._transpose: Optional[TransposedBlock] = None
        self._label_blocks: Optional[dict] = None
        self._degree_histogram: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        """Number of adjacency rows in the snapshot."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of adjacency entries in the snapshot."""
        return len(self.dsts)

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Row index of each node id in ``nodes`` (``-1`` when absent)."""
        if self.num_rows == 0:
            return np.full(len(nodes), -1, dtype=np.int64)
        positions = np.searchsorted(self.node_ids, nodes)
        positions = np.minimum(positions, self.num_rows - 1)
        found = self.node_ids[positions] == nodes
        return np.where(found, positions, -1)

    def row_index(self, node: int) -> int:
        """Row index of a single node id (``-1`` when absent)."""
        count = self.num_rows
        if count == 0:
            return -1
        position = int(np.searchsorted(self.node_ids, node))
        if position < count and int(self.node_ids[position]) == node:
            return position
        return -1

    def row_entries(self, node: int) -> RowEntries:
        """``(dst, label)`` entries of ``node``'s row, in stored order.

        Empty when the row is absent — the same contract as the storages'
        ``next_hops_with_labels``, which is what lets the scalar engine
        expand frontiers against a pinned snapshot instead of the live
        storage.
        """
        row = self.row_index(node)
        if row < 0:
            return []
        start, stop = int(self.indptr[row]), int(self.indptr[row + 1])
        return list(
            zip(self.dsts[start:stop].tolist(), self.labels[start:stop].tolist())
        )

    def degree_histogram(self) -> np.ndarray:
        """Out-degree histogram of the snapshot's rows (cached, frozen).

        ``histogram[d]`` is the number of rows with out-degree ``d``;
        always at least one bucket long.  Computed once per snapshot
        from the CSR ``indptr`` diff — the dense-vs-sparse crossover
        substrate of the matrix engine and the cost-based planner.
        """
        histogram = self._degree_histogram
        if histogram is None:
            histogram = np.bincount(self.degrees, minlength=1).astype(np.int64)
            histogram.flags.writeable = False
            self._degree_histogram = histogram
        return histogram

    def transpose_block(self) -> TransposedBlock:
        """In-edges of the snapshot grouped by destination (cached).

        Built once per snapshot: ``src_rows`` repeats each row index by
        its degree, then a stable sort by destination groups the edges.
        """
        block = self._transpose
        if block is None:
            src_rows = np.repeat(
                np.arange(self.num_rows, dtype=np.int64), self.degrees
            )
            block = _transpose_edges(self.dsts, src_rows)
            self._transpose = block
        return block

    def label_blocks(self) -> dict:
        """Per-label transposed adjacency blocks (cached): label ->
        :class:`TransposedBlock` over only that label's edges.

        The matrix engine's DFA path pulls one block per (label, live
        automaton transition) pair, so edges whose label the automaton
        rejects are never touched.
        """
        blocks = self._label_blocks
        if blocks is None:
            blocks = {}
            if self.num_edges:
                src_rows = np.repeat(
                    np.arange(self.num_rows, dtype=np.int64), self.degrees
                )
                order = np.argsort(self.labels, kind="stable")
                sorted_labels = self.labels[order]
                boundary = np.empty(len(sorted_labels), dtype=bool)
                boundary[0] = True
                np.not_equal(
                    sorted_labels[1:], sorted_labels[:-1], out=boundary[1:]
                )
                starts = np.flatnonzero(boundary)
                stops = np.append(starts[1:], len(sorted_labels))
                for start, stop in zip(starts.tolist(), stops.tolist()):
                    chunk = order[start:stop]
                    blocks[int(sorted_labels[start])] = _transpose_edges(
                        self.dsts[chunk], src_rows[chunk]
                    )
            self._label_blocks = blocks
        return blocks

    def freeze(self) -> "GraphSnapshot":
        """Mark every array read-only and return ``self``.

        Published snapshots are shared by reference between the storage
        cache, pinned serving epochs and the engines; freezing turns any
        accidental in-place mutation of a handed-out base into an
        immediate ``ValueError`` instead of silent corruption of every
        reader.
        """
        for array in (
            self.node_ids,
            self.indptr,
            self.dsts,
            self.labels,
            self.local_counts,
            self.degrees,
        ):
            array.flags.writeable = False
        return self

    def same_arrays(self, other: "GraphSnapshot") -> bool:
        """Array-for-array equality (the incremental-maintenance contract)."""
        return (
            np.array_equal(self.node_ids, other.node_ids)
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.dsts, other.dsts)
            and np.array_equal(self.labels, other.labels)
            and np.array_equal(self.local_counts, other.local_counts)
            and self.bytes_per_entry == other.bytes_per_entry
            and self.working_set_bytes == other.working_set_bytes
        )


def _sorted_member_mask(members: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean mask of which ``values`` occur in the sorted ``members``."""
    if len(members) == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    positions = np.minimum(np.searchsorted(members, values), len(members) - 1)
    return members[positions] == values


def _local_counts(
    node_ids: np.ndarray, indptr: np.ndarray, dsts: np.ndarray
) -> np.ndarray:
    """Per-``indptr``-segment count of destinations found in ``node_ids``.

    ``indptr`` need not span all of ``node_ids``'s rows — the merge path
    recounts only its dirty-row segments against the full member set.
    """
    if len(node_ids) == 0 or len(dsts) == 0:
        return np.zeros(len(indptr) - 1, dtype=np.int64)
    local_flags = _sorted_member_mask(node_ids, dsts).astype(np.int64)
    # Per-row segment sums via prefix sums: exact for empty rows
    # anywhere (reduceat would mishandle out-of-bounds segment
    # starts produced by trailing empty rows).
    prefix = np.concatenate([[0], np.cumsum(local_flags)])
    return prefix[indptr[1:]] - prefix[indptr[:-1]]


def _flatten_entries(
    entry_lists: List[RowEntries], total: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-row ``(dst, label)`` lists into two flat columns.

    ``total`` is the known entry count.  The pairs are streamed through
    one scalar ``fromiter`` (an order of magnitude faster than
    ``np.array`` on a list of tuples) and unzipped by reshaping.
    """
    if total == 0:
        return _EMPTY, _EMPTY
    flat = np.fromiter(
        chain.from_iterable(chain.from_iterable(entry_lists)),
        dtype=np.int64,
        count=2 * total,
    ).reshape(total, 2)
    return np.ascontiguousarray(flat[:, 0]), np.ascontiguousarray(flat[:, 1])


def build_snapshot(
    rows: List[Tuple[int, RowEntries]],
    bytes_per_entry: int,
    working_set_bytes: int,
    count_local: bool,
) -> GraphSnapshot:
    """Freeze ``rows`` (``(node, [(dst, label), ...])`` pairs) into CSR form.

    ``rows`` need not be sorted; they are sorted by node id here.  The
    per-row entry lists are flattened with one array construction and
    the local-destination counter runs as a prefix-sum — no per-edge
    Python work.  When ``count_local`` is set, each row's destinations
    are checked for membership in the snapshot's own row set (the
    misplacement-detection ``local`` counter); host snapshots skip it —
    the host never detects misplacement.
    """
    rows = sorted(rows, key=lambda item: item[0])
    count = len(rows)
    node_ids = np.fromiter((node for node, _ in rows), dtype=np.int64, count=count)
    degrees = np.fromiter(
        (len(entries) for _, entries in rows), dtype=np.int64, count=count
    )
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    dsts, labels = _flatten_entries(
        [entries for _, entries in rows], int(indptr[-1])
    )
    if count_local:
        local_counts = _local_counts(node_ids, indptr, dsts)
    else:
        local_counts = np.zeros(count, dtype=np.int64)
    return GraphSnapshot(
        node_ids=node_ids,
        indptr=indptr,
        dsts=dsts,
        labels=labels,
        local_counts=local_counts,
        bytes_per_entry=bytes_per_entry,
        working_set_bytes=working_set_bytes,
    )


def build_snapshot_reference(
    rows: List[Tuple[int, RowEntries]],
    bytes_per_entry: int,
    working_set_bytes: int,
    count_local: bool,
) -> GraphSnapshot:
    """Per-edge Python-append builder (the pre-vectorization behaviour).

    Kept as the differential-testing oracle for :func:`build_snapshot`
    and :func:`merge_snapshot`, and as the wall-clock baseline the
    mixed-workload benchmark measures the incremental path against.
    """
    rows = sorted(rows, key=lambda item: item[0])
    node_ids = np.fromiter((node for node, _ in rows), dtype=np.int64, count=len(rows))
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    dst_chunks: List[int] = []
    label_chunks: List[int] = []
    for index, (_, entries) in enumerate(rows):
        for dst, label in entries:
            dst_chunks.append(dst)
            label_chunks.append(label)
        indptr[index + 1] = len(dst_chunks)
    dsts = np.asarray(dst_chunks, dtype=np.int64)
    labels = np.asarray(label_chunks, dtype=np.int64)
    if count_local:
        local_counts = _local_counts(node_ids, indptr, dsts)
    else:
        local_counts = np.zeros(len(rows), dtype=np.int64)
    return GraphSnapshot(
        node_ids=node_ids,
        indptr=indptr,
        dsts=dsts,
        labels=labels,
        local_counts=local_counts,
        bytes_per_entry=bytes_per_entry,
        working_set_bytes=working_set_bytes,
    )


class DeltaOverlay:
    """Row-granularity edit log accumulated between snapshot refreshes.

    Storages append the node id of every row a mutation touches —
    ``record_add``/``record_sub`` for edge-level edits, ``record_move_in``
    /``record_move_out`` for whole-row installs/removals (migrations,
    promotions).  :func:`merge_snapshot` only needs the *set* of dirty
    rows (the rows' current data is re-read from the storage at merge
    time, so a row that was removed and re-installed in the same batch
    resolves to whatever the storage holds now); the per-kind counters
    exist for tests and diagnostics.
    """

    __slots__ = ("_dirty", "_edits", "edge_adds", "edge_subs", "row_moves")

    def __init__(self) -> None:
        #: Dirty row ids, deduplicated on entry so a long update-only
        #: stretch costs O(distinct rows) memory, not O(mutations).
        self._dirty: set = set()
        self._edits = 0
        #: Edge insertions (and in-place relabels) recorded.
        self.edge_adds = 0
        #: Edge deletions recorded.
        self.edge_subs = 0
        #: Whole-row installs/removals recorded (migration traffic).
        self.row_moves = 0

    def record_add(self, node: int) -> None:
        """An edge was inserted into (or relabeled in) ``node``'s row."""
        self._dirty.add(node)
        self._edits += 1
        self.edge_adds += 1

    def record_sub(self, node: int) -> None:
        """An edge was deleted from ``node``'s row."""
        self._dirty.add(node)
        self._edits += 1
        self.edge_subs += 1

    def record_move_in(self, node: int) -> None:
        """A whole row was installed (migration/promotion arrival)."""
        self._dirty.add(node)
        self._edits += 1
        self.row_moves += 1

    def record_move_out(self, node: int) -> None:
        """A whole row was removed (migration/promotion departure)."""
        self._dirty.add(node)
        self._edits += 1
        self.row_moves += 1

    @property
    def is_empty(self) -> bool:
        """Whether no mutation has been recorded since the last refresh."""
        return not self._dirty

    @property
    def num_edits(self) -> int:
        """Number of recorded edits (a row may be edited repeatedly)."""
        return self._edits

    def dirty_rows(self) -> np.ndarray:
        """Sorted node ids of the rows touched since the base froze."""
        if not self._dirty:
            return _EMPTY
        return np.sort(
            np.fromiter(self._dirty, dtype=np.int64, count=len(self._dirty))
        )

    def clear(self) -> None:
        """Forget all recorded edits (the base has been refreshed)."""
        self._dirty.clear()
        self._edits = 0
        self.edge_adds = 0
        self.edge_subs = 0
        self.row_moves = 0


class SnapshotCache:
    """The base + overlay refresh lifecycle shared by both storages.

    Owns the cached base :class:`GraphSnapshot`, the :class:`DeltaOverlay`
    of rows dirtied since it froze, and the refresh-strategy counters.
    :meth:`refresh` picks return-cached / splice / compact exactly as the
    module docstring describes; the storages only supply their row data
    (``rows`` provider and per-row ``fetch_row``) and byte-accounting
    constants.
    """

    def __init__(self, compact_ratio: float, incremental: bool) -> None:
        self.overlay = DeltaOverlay()
        self.base: Optional[GraphSnapshot] = None
        self._compact_ratio = compact_ratio
        self._incremental = incremental
        #: Number of snapshot refreshes performed (any strategy).
        self.builds = 0
        #: Refreshes that rebuilt the base from scratch.
        self.full_builds = 0
        #: Refreshes that spliced the overlay into the cached base.
        self.merges = 0
        #: Full builds forced by the overlay crossing ``compact_ratio``.
        self.compactions = 0

    @property
    def tracking(self) -> bool:
        """Whether mutations need recording (a base exists to merge into)."""
        return self.base is not None

    def seed_base(self, snapshot: GraphSnapshot) -> None:
        """Install an externally built base (checkpoint restore).

        Recovery hands the storage the CSR arrays deserialized from a
        checkpoint so the first post-recovery ``to_csr()`` is a cache
        hit on bit-identical arrays instead of a from-scratch rebuild.
        The seeded arrays are frozen (they may be shared with the
        checkpoint loader) — every later refresh strategy, splice and
        compaction alike, must tolerate a read-only base, which the
        regression suite asserts explicitly.
        """
        self.base = snapshot.freeze()
        self.overlay.clear()

    def refresh(
        self,
        rows: Callable[[], List[Tuple[int, RowEntries]]],
        fetch_row: Callable[[int], Optional[RowEntries]],
        bytes_per_entry: int,
        working_set_bytes: Callable[[], int],
        count_local: bool,
    ) -> GraphSnapshot:
        """Bring the cached snapshot up to date and return it.

        ``rows`` and ``working_set_bytes`` are providers, not values —
        they are only evaluated when a refresh actually happens, so the
        clean-cache fast path stays O(1) even for storages whose
        footprint is O(rows) to compute.
        """
        base = self.base
        if base is not None and self.overlay.is_empty:
            return base
        if base is None or not self._incremental:
            builder = build_snapshot if self._incremental else build_snapshot_reference
            self.base = builder(
                rows(),
                bytes_per_entry=bytes_per_entry,
                working_set_bytes=working_set_bytes(),
                count_local=count_local,
            )
            self.full_builds += 1
        else:
            dirty = self.overlay.dirty_rows()
            if len(dirty) > self._compact_ratio * max(1, base.num_rows):
                self.base = build_snapshot(
                    rows(),
                    bytes_per_entry=bytes_per_entry,
                    working_set_bytes=working_set_bytes(),
                    count_local=count_local,
                )
                self.full_builds += 1
                self.compactions += 1
            else:
                self.base = merge_snapshot(
                    base,
                    dirty,
                    fetch_row,
                    bytes_per_entry=bytes_per_entry,
                    working_set_bytes=working_set_bytes(),
                    count_local=count_local,
                )
                self.merges += 1
        self.overlay.clear()
        self.builds += 1
        # Published bases are shared by reference (engines, pinned serving
        # epochs); freeze so no caller can mutate a handed-out snapshot.
        return self.base.freeze()


def merge_snapshot(
    base: GraphSnapshot,
    dirty_rows: np.ndarray,
    fetch_row: Callable[[int], Optional[RowEntries]],
    bytes_per_entry: int,
    working_set_bytes: int,
    count_local: bool,
) -> GraphSnapshot:
    """Splice the current data of ``dirty_rows`` into ``base``.

    ``fetch_row`` returns a dirty row's current ``(dst, label)`` entries,
    or ``None`` when the row no longer exists on the storage.  Clean base
    rows are carried over as contiguous array slices via one gather; the
    result is array-for-array identical to a from-scratch
    :func:`build_snapshot` of the storage's current contents.
    """
    # Clean base rows survive with their segments; dirty ones are
    # replaced (or dropped) wholesale from the storage's live data.
    keep = ~_sorted_member_mask(dirty_rows, base.node_ids)
    keep_nodes = base.node_ids[keep]
    keep_degrees = base.degrees[keep]

    delta_node_list: List[int] = []
    delta_entry_lists: List[RowEntries] = []
    for node in dirty_rows.tolist():
        entries = fetch_row(node)
        if entries is None:
            continue
        delta_node_list.append(node)
        delta_entry_lists.append(entries)
    delta_nodes = np.fromiter(
        delta_node_list, dtype=np.int64, count=len(delta_node_list)
    )
    delta_degrees = np.fromiter(
        (len(entries) for entries in delta_entry_lists),
        dtype=np.int64,
        count=len(delta_entry_lists),
    )
    delta_starts = np.zeros(len(delta_entry_lists), dtype=np.int64)
    np.cumsum(delta_degrees[:-1], out=delta_starts[1:])
    delta_dsts, delta_labels = _flatten_entries(
        delta_entry_lists, int(delta_degrees.sum())
    )

    # Two-source segment splice: order the union of surviving and dirty
    # rows by node id (all ids are unique, so the sort is total), then
    # copy each *run* of source-consecutive rows as one contiguous slice
    # — clean base rows between two dirty rows come over in a single
    # memcpy, so the splice costs O(dirty rows) numpy calls, not O(rows).
    all_nodes = np.concatenate([keep_nodes, delta_nodes])
    all_degrees = np.concatenate([keep_degrees, delta_degrees])
    from_delta = np.concatenate(
        [
            np.zeros(len(keep_nodes), dtype=bool),
            np.ones(len(delta_nodes), dtype=bool),
        ]
    )
    source_index = np.concatenate(
        [np.flatnonzero(keep), np.arange(len(delta_nodes), dtype=np.int64)]
    )
    order = np.argsort(all_nodes)
    node_ids = all_nodes[order]
    degrees = all_degrees[order]
    from_delta = from_delta[order]
    source_index = source_index[order]

    indptr = np.zeros(len(node_ids) + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])

    dst_chunks: List[np.ndarray] = []
    label_chunks: List[np.ndarray] = []
    if len(node_ids):
        boundary = np.empty(len(node_ids), dtype=bool)
        boundary[0] = True
        boundary[1:] = (from_delta[1:] != from_delta[:-1]) | (
            source_index[1:] != source_index[:-1] + 1
        )
        run_starts = np.flatnonzero(boundary)
        run_stops = np.append(run_starts[1:], len(node_ids))
        for start, stop in zip(run_starts.tolist(), run_stops.tolist()):
            first, last = source_index[start], source_index[stop - 1]
            if from_delta[start]:
                lo = delta_starts[first]
                hi = delta_starts[last] + delta_degrees[last]
                dst_chunks.append(delta_dsts[lo:hi])
                label_chunks.append(delta_labels[lo:hi])
            else:
                lo = base.indptr[first]
                hi = base.indptr[last + 1]
                dst_chunks.append(base.dsts[lo:hi])
                label_chunks.append(base.labels[lo:hi])
    dsts = np.concatenate(dst_chunks) if dst_chunks else _EMPTY
    labels = np.concatenate(label_chunks) if label_chunks else _EMPTY

    if count_local:
        # Locality of a *clean* row only changes when the row-id set
        # itself changed (an install or removal flips membership of its
        # destinations).  With the membership intact, splice the base
        # counts and recount just the dirty rows' destinations;
        # otherwise recompute over the merged arrays in one pass.
        rows_removed = len(delta_nodes) < len(dirty_rows)
        rows_added = bool(len(delta_nodes)) and not np.all(
            _sorted_member_mask(base.node_ids, delta_nodes)
        )
        if rows_removed or rows_added:
            local_counts = _local_counts(node_ids, indptr, dsts)
        else:
            delta_local = _local_counts(
                node_ids,
                np.concatenate([delta_starts, [len(delta_dsts)]]),
                delta_dsts,
            )
            local_counts = np.concatenate(
                [base.local_counts[keep], delta_local]
            )[order]
    else:
        local_counts = np.zeros(len(node_ids), dtype=np.int64)
    return GraphSnapshot(
        node_ids=node_ids,
        indptr=indptr,
        dsts=dsts,
        labels=labels,
        local_counts=local_counts,
        bytes_per_entry=bytes_per_entry,
        working_set_bytes=working_set_bytes,
    )
