"""Columnar CSR snapshots of the graph storages.

The vectorized execution backend expands frontiers with numpy gathers
instead of per-node dict lookups, which requires the adjacency segments
to be available as flat arrays.  Both storage classes
(:class:`~repro.core.local_storage.LocalGraphStorage` and
:class:`~repro.core.hetero_storage.HeterogeneousGraphStorage`) expose a
``to_csr()`` method returning a :class:`GraphSnapshot`; the snapshot is
cached on the storage and **invalidated by every mutation** (edge
inserts/deletes through the update processor, row moves through the node
migrator), so a query always sees the storage's current contents while
back-to-back queries between updates reuse the same arrays.

A snapshot is a *simulation-faithful* view: alongside the CSR topology
it carries the byte-accounting constants of its storage (hash-map entry
bytes for PIM segments, ``cols_vector`` slot bytes for the host rows)
and the per-row count of locally-owned destinations that the paper's
misplacement detection needs, so the vectorized engine charges exactly
the same simulated work as the scalar one.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class GraphSnapshot:
    """Immutable CSR view of one storage's adjacency rows.

    Rows are identified by their *global* node ids; ``node_ids`` is
    sorted so membership and row lookup are ``searchsorted`` calls.
    """

    def __init__(
        self,
        node_ids: np.ndarray,
        indptr: np.ndarray,
        dsts: np.ndarray,
        labels: np.ndarray,
        local_counts: np.ndarray,
        bytes_per_entry: int,
        working_set_bytes: int,
    ) -> None:
        self.node_ids = node_ids
        self.indptr = indptr
        self.dsts = dsts
        self.labels = labels
        #: Per row: how many of its destinations are rows of the *same*
        #: storage (the "local" side of misplacement detection).
        self.local_counts = local_counts
        #: Bytes streamed per adjacency entry when a row is scanned.
        self.bytes_per_entry = bytes_per_entry
        #: Size of the structure for working-set-dependent access costs
        #: (the host's ``cols_vector`` capacity; a module's segment bytes).
        self.working_set_bytes = working_set_bytes
        self.degrees = np.diff(indptr)

    @property
    def num_rows(self) -> int:
        """Number of adjacency rows in the snapshot."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of adjacency entries in the snapshot."""
        return len(self.dsts)

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Row index of each node id in ``nodes`` (``-1`` when absent)."""
        if self.num_rows == 0:
            return np.full(len(nodes), -1, dtype=np.int64)
        positions = np.searchsorted(self.node_ids, nodes)
        positions = np.minimum(positions, self.num_rows - 1)
        found = self.node_ids[positions] == nodes
        return np.where(found, positions, -1)


def build_snapshot(
    rows: List[Tuple[int, List[Tuple[int, int]]]],
    bytes_per_entry: int,
    working_set_bytes: int,
    count_local: bool,
) -> GraphSnapshot:
    """Freeze ``rows`` (``(node, [(dst, label), ...])`` pairs) into CSR form.

    ``rows`` need not be sorted; they are sorted by node id here.  When
    ``count_local`` is set, each row's destinations are checked for
    membership in the snapshot's own row set (the misplacement-detection
    ``local`` counter); host snapshots skip it — the host never detects
    misplacement.
    """
    rows = sorted(rows, key=lambda item: item[0])
    node_ids = np.fromiter((node for node, _ in rows), dtype=np.int64, count=len(rows))
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    dst_chunks: List[int] = []
    label_chunks: List[int] = []
    for index, (_, entries) in enumerate(rows):
        for dst, label in entries:
            dst_chunks.append(dst)
            label_chunks.append(label)
        indptr[index + 1] = len(dst_chunks)
    dsts = np.asarray(dst_chunks, dtype=np.int64)
    labels = np.asarray(label_chunks, dtype=np.int64)
    if count_local and len(rows) and len(dsts):
        positions = np.searchsorted(node_ids, dsts)
        positions = np.minimum(positions, len(node_ids) - 1)
        local_flags = (node_ids[positions] == dsts).astype(np.int64)
        # Per-row segment sums via prefix sums: exact for empty rows
        # anywhere (reduceat would mishandle out-of-bounds segment
        # starts produced by trailing empty rows).
        prefix = np.concatenate([[0], np.cumsum(local_flags)])
        local_counts = prefix[indptr[1:]] - prefix[indptr[:-1]]
    else:
        local_counts = np.zeros(len(rows), dtype=np.int64)
    return GraphSnapshot(
        node_ids=node_ids,
        indptr=indptr,
        dsts=dsts,
        labels=labels,
        local_counts=local_counts,
        bytes_per_entry=bytes_per_entry,
        working_set_bytes=working_set_bytes,
    )
