"""The Query Processor: batch RPQ execution across host and PIM modules.

The processor lowers a query into a matrix-based logical plan
(:mod:`repro.rpq.planner`) and executes it as a sequence of
bulk-synchronous phases on the simulated platform:

1. **dispatch** — the batch's source nodes are packed into ``smxm``
   operators and shipped to the modules that own them (CPC traffic);
   host-owned sources stay on the host.
2. **smxm** (one phase per hop) — every module expands the frontier
   items it owns against its local adjacency segment, in parallel; the
   host expands frontier items sitting on high-degree nodes by streaming
   their contiguous ``cols_vector``.  Produced frontier items are then
   routed to the owner of their destination node: items that stay on the
   producing module are free, items crossing to another module pay IPC
   (host-forwarded), items moving to or from the host pay CPC.  This is
   where partitioning quality turns into time.
3. **mwait** — every module returns its share of the final frontier to
   the host (CPC), and the host reduces the per-query destination sets
   of the answer matrix.

The same machinery executes general RPQs by carrying ``(query row,
automaton state)`` contexts instead of bare query rows and accumulating
destinations whenever an accepting state is reached.

Misplacement reports produced by the modules during step 2 are handed to
the node migrator after the answer is complete, so migration overhead
never sits on the query's critical path (it is still charged, in a
separate operation, by :meth:`repro.core.system.Moctopus.run_maintenance`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import MoctopusConfig
from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import BYTES_PER_ENTRY, LocalGraphStorage
from repro.core.node_migrator import NodeMigrator
from repro.core.operator_processor import OperatorProcessor
from repro.core.operators import BYTES_PER_FRONTIER_ITEM, OPERATOR_HEADER_BYTES
from repro.core.partitioner import GraphPartitioner
from repro.partition.base import HOST_PARTITION
from repro.pim.stats import ExecutionStats
from repro.pim.system import OperationContext, PIMSystem
from repro.rpq.automaton import DFA
from repro.rpq.planner import ExpandStep, FixpointStep, LogicalPlan, plan_query
from repro.rpq.query import BatchResult, KHopQuery, RPQuery

#: Type of a frontier: owner partition -> node -> set of query contexts.
Frontier = Dict[int, Dict[int, Set[object]]]


class QueryProcessor:
    """Executes batch path queries on the simulated Moctopus system."""

    def __init__(
        self,
        config: MoctopusConfig,
        pim_system: PIMSystem,
        partitioner: GraphPartitioner,
        module_storages: List[LocalGraphStorage],
        host_storage: HeterogeneousGraphStorage,
        operator_processors: List[OperatorProcessor],
        node_migrator: NodeMigrator,
        label_names: Optional[Dict[int, str]] = None,
    ) -> None:
        self._config = config
        self._pim = pim_system
        self._partitioner = partitioner
        self._module_storages = module_storages
        self._host_storage = host_storage
        self._processors = operator_processors
        self._migrator = node_migrator
        self._label_names = label_names or {}

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def execute_khop(self, query: KHopQuery) -> Tuple[BatchResult, ExecutionStats]:
        """Execute a batch k-hop query (the paper's workload)."""
        plan = plan_query(query)
        return self._execute(plan, query.sources, dfa=None)

    def execute_rpq(self, query: RPQuery) -> Tuple[BatchResult, ExecutionStats]:
        """Execute a general regular path query."""
        plan = plan_query(query)
        return self._execute(plan, query.sources, dfa=plan.dfa)

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def _owner(self, node: int) -> Optional[int]:
        return self._partitioner.partition_of(node)

    def _execute(
        self,
        plan: LogicalPlan,
        sources: List[int],
        dfa: Optional[DFA],
    ) -> Tuple[BatchResult, ExecutionStats]:
        op = self._pim.begin_operation()
        results: List[Set[int]] = [set() for _ in sources]
        accumulate = plan.accumulate_results

        frontier, skipped = self._build_initial_frontier(sources, dfa, results, accumulate)
        with op.phase("dispatch"):
            self._charge_dispatch(op, frontier)
        op.add_counter("batch_size", len(sources))
        op.add_counter("unknown_sources", skipped)

        seen: Set[Tuple[int, object]] = set()
        if accumulate:
            for partition_frontier in frontier.values():
                for node, contexts in partition_frontier.items():
                    for context in contexts:
                        seen.add((node, context))

        step_index = 0
        for step in plan.steps:
            if isinstance(step, ExpandStep):
                step_index += 1
                frontier = self._run_expansion_phase(
                    op, frontier, dfa, results, accumulate, seen,
                    phase_name=f"smxm {step_index}",
                )
                if not frontier:
                    break
            elif isinstance(step, FixpointStep):
                max_iterations = step.max_iterations or self._max_fixpoint_iterations()
                for iteration in range(max_iterations):
                    step_index += 1
                    frontier = self._run_expansion_phase(
                        op, frontier, dfa, results, accumulate, seen,
                        phase_name=f"smxm fixpoint {iteration + 1}",
                    )
                    if not frontier:
                        break
                frontier = {}
            else:  # ReduceStep
                self._run_reduce_phase(op, frontier, results, accumulate, dfa)

        stats = op.finish()
        stats.add_counter(
            "results", sum(len(destinations) for destinations in results)
        )
        return BatchResult(sources=list(sources), destinations=results), stats

    def _max_fixpoint_iterations(self) -> int:
        stored_rows = sum(storage.num_rows for storage in self._module_storages)
        stored_rows += self._host_storage.num_rows
        return max(1, stored_rows)

    # ------------------------------------------------------------------
    # Frontier construction and dispatch
    # ------------------------------------------------------------------
    def _build_initial_frontier(
        self,
        sources: List[int],
        dfa: Optional[DFA],
        results: List[Set[int]],
        accumulate: bool,
    ) -> Tuple[Frontier, int]:
        frontier: Frontier = {}
        skipped = 0
        for row, source in enumerate(sources):
            owner = self._owner(source)
            if owner is None:
                skipped += 1
                continue
            context: object
            if dfa is None:
                context = row
            else:
                context = (row, dfa.start)
                if accumulate and dfa.is_accepting(dfa.start):
                    results[row].add(source)
            frontier.setdefault(owner, {}).setdefault(source, set()).add(context)
        return frontier, skipped

    def _charge_dispatch(self, op: OperationContext, frontier: Frontier) -> None:
        total_items = 0
        dispatched_items = 0
        for partition, partition_frontier in frontier.items():
            items = sum(len(contexts) for contexts in partition_frontier.values())
            total_items += items
            if partition != HOST_PARTITION:
                dispatched_items += items
        if dispatched_items:
            # The smxm operators for every module ship in one rank-level
            # batched scatter.
            op.cpc_transfer(
                OPERATOR_HEADER_BYTES + dispatched_items * BYTES_PER_FRONTIER_ITEM,
                num_transfers=1,
            )
        op.host.process_items(total_items)

    # ------------------------------------------------------------------
    # Expansion phases
    # ------------------------------------------------------------------
    def _run_expansion_phase(
        self,
        op: OperationContext,
        frontier: Frontier,
        dfa: Optional[DFA],
        results: List[Set[int]],
        accumulate: bool,
        seen: Set[Tuple[int, object]],
        phase_name: str,
    ) -> Frontier:
        next_frontier: Frontier = {}
        total_cpc_items = 0
        total_ipc_items = 0
        with op.phase(phase_name):
            for partition, partition_frontier in frontier.items():
                if partition == HOST_PARTITION:
                    produced = self._expand_on_host(op, partition_frontier, dfa)
                else:
                    produced = self._expand_on_module(op, partition, partition_frontier, dfa)
                cpc_items, ipc_items = self._route_produced(
                    op, partition, produced, next_frontier, results, dfa,
                    accumulate, seen,
                )
                total_cpc_items += cpc_items
                total_ipc_items += ipc_items
            # Frontier hand-offs are rank-level bulk transfers: one batched
            # gather/scatter pair moves every crossing item of the phase, so
            # only the byte volume — controlled by partition locality —
            # depends on how many items crossed.
            if total_cpc_items:
                op.cpc_transfer(
                    total_cpc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
            if total_ipc_items:
                op.ipc_transfer(
                    total_ipc_items * BYTES_PER_FRONTIER_ITEM, num_transfers=1
                )
        return next_frontier

    def _expand_on_module(
        self,
        op: OperationContext,
        module_id: int,
        partition_frontier: Dict[int, Set[object]],
        dfa: Optional[DFA],
    ) -> Dict[int, Set[object]]:
        processor = self._processors[module_id]
        module = op.module(module_id)
        module.launch_kernel()
        detect = self._config.enable_migration
        produced, work = processor.process_smxm(
            partition_frontier,
            dfa=dfa,
            label_names=self._label_names,
            detect_misplacement=detect,
        )
        module.random_accesses(work.rows_touched)
        module.stream_bytes(work.bytes_streamed)
        module.process_items(work.items_processed)
        for node, (local, remote) in work.misplacement_reports.items():
            self._migrator.report_misplaced(node, local, remote)
        return produced

    def _expand_on_host(
        self,
        op: OperationContext,
        partition_frontier: Dict[int, Set[object]],
        dfa: Optional[DFA],
    ) -> Dict[int, Set[object]]:
        produced: Dict[int, Set[object]] = {}
        working_set = max(self._host_storage.total_bytes(), 1)
        rows_touched = 0
        streamed = 0
        items = 0
        for node, contexts in partition_frontier.items():
            next_hops = self._host_storage.next_hops_with_labels(node)
            rows_touched += 1
            streamed += self._host_storage.row_bytes(node)
            for destination, label in next_hops:
                if dfa is None:
                    items += len(contexts)
                    produced.setdefault(destination, set()).update(contexts)
                else:
                    label_string = self._label_names.get(label, str(label))
                    for context in contexts:
                        items += 1
                        row, state = context
                        next_state = dfa.step(state, label_string)
                        if next_state is None:
                            continue
                        produced.setdefault(destination, set()).add((row, next_state))
        op.host.random_accesses(rows_touched, working_set)
        op.host.stream_bytes(streamed)
        op.host.process_items(items)
        return produced

    def _route_produced(
        self,
        op: OperationContext,
        producer: int,
        produced: Dict[int, Set[object]],
        next_frontier: Frontier,
        results: List[Set[int]],
        dfa: Optional[DFA],
        accumulate: bool,
        seen: Set[Tuple[int, object]],
    ) -> Tuple[int, int]:
        cpc_items = 0
        ipc_items: Dict[int, int] = {}
        for destination, contexts in produced.items():
            owner = self._owner(destination)
            if owner is None:
                # Dangling edge: the destination node has never been
                # registered (can happen transiently during updates).
                continue
            for context in contexts:
                if accumulate:
                    key = (destination, context)
                    if key in seen:
                        continue
                    seen.add(key)
                    assert dfa is not None
                    row, state = context
                    if dfa.is_accepting(state):
                        results[row].add(destination)
                next_frontier.setdefault(owner, {}).setdefault(destination, set()).add(context)
                # Communication for handing the item to its owner.
                if owner == producer:
                    continue
                if producer == HOST_PARTITION or owner == HOST_PARTITION:
                    cpc_items += 1
                else:
                    ipc_items[owner] = ipc_items.get(owner, 0) + 1
        return cpc_items, sum(ipc_items.values())

    # ------------------------------------------------------------------
    # Reduction (mwait)
    # ------------------------------------------------------------------
    def _run_reduce_phase(
        self,
        op: OperationContext,
        frontier: Frontier,
        results: List[Set[int]],
        accumulate: bool,
        dfa: Optional[DFA] = None,
    ) -> None:
        with op.phase("mwait"):
            total_items = 0
            gathered_items = 0
            for partition, partition_frontier in frontier.items():
                items = sum(len(contexts) for contexts in partition_frontier.values())
                total_items += items
                if partition != HOST_PARTITION and items:
                    gathered_items += items
                    op.module(partition).process_items(items)
                    op.module(partition).stream_bytes(items * BYTES_PER_ENTRY)
            if gathered_items:
                # One rank-level batched gather brings every module's partial
                # result back to the host.
                op.cpc_transfer(
                    OPERATOR_HEADER_BYTES + gathered_items * BYTES_PER_FRONTIER_ITEM,
                    num_transfers=1,
                )
            # The host concatenates the per-module partial results into the
            # answer matrix.  Destination nodes are disjoint across modules
            # (each node has exactly one owner), so no deduplication is
            # needed and the reduction streams sequentially.
            op.host.stream_bytes(total_items * BYTES_PER_FRONTIER_ITEM)
            op.host.process_items(total_items)
            if accumulate:
                # Results were accumulated on the fly; the reduce phase only
                # merges per-module partial sets, already charged above.
                return
            for partition_frontier in frontier.values():
                for node, contexts in partition_frontier.items():
                    for context in contexts:
                        if isinstance(context, int):
                            results[context].add(node)
                            continue
                        row, state = context
                        if dfa is None or dfa.is_accepting(state):
                            results[row].add(node)
