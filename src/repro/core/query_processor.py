"""The Query Processor: a thin coordinator over the execution engines.

The processor's job is planning and delegation, not data movement:

1. a query is planned into a matrix-based logical plan — structurally by
   :mod:`repro.rpq.planner` (``k`` expand steps plus a reduce for the
   paper's k-hop workload, a DFA-guided fixpoint for general RPQs), and,
   for epoch-pinned executions, costed by
   :mod:`repro.rpq.cost_planner`, which may flip a fixed-length plan to
   *reverse* expansion from the rarer accepting side and attach an
   advisory engine hint;
2. the logical plan is lowered again into a
   :class:`~repro.engine.physical.PhysicalPlan` of bulk-synchronous
   dispatch / expand / route / reduce operators;
3. the physical plan is handed to the
   :class:`~repro.engine.base.ExecutionEngine` selected by
   ``MoctopusConfig.engine`` — the scalar ``"python"`` backend or the
   numpy ``"vectorized"`` backend — which executes it on the simulated
   platform and returns the answer matrix plus the execution statistics.

Both backends implement the same operator semantics (see
:mod:`repro.engine`): the smxm phases where partitioning quality turns
into time, the mwait reduction, and the misplacement reports handed to
the node migrator off the query's critical path.

Epoch-pinned executions additionally go through two caches that are
correct by construction because their keys embed the epoch id — a new
epoch can never observe a stale entry:

* a **plan cache** mapping ``(epoch id, query shape, batch size)`` to
  the lowered :class:`PhysicalPlan` (plans are immutable, so cached
  plans are shared, not copied);
* a **result cache** mapping ``(epoch id, query shape, exact sources,
  engine)`` to a deep copy of ``(result, stats)``, replayed as a fresh
  deep copy on every hit so cached answers — results *and* simulated
  counters — are bit-identical to an uncached execution and remain safe
  for callers that annotate the returned stats in place.

Hit/miss counters accumulate on :attr:`QueryProcessor.cache_stats`
(a separate :class:`ExecutionStats`), never on per-query stats, so the
per-query observables stay identical between cold and warm runs.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.config import MoctopusConfig
from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import LocalGraphStorage
from repro.core.node_migrator import NodeMigrator
from repro.core.operator_processor import OperatorProcessor
from repro.core.partitioner import GraphPartitioner
from repro.engine.base import EngineRuntime, ExecutionEngine, Frontier, create_engine
from repro.engine.physical import PhysicalPlan, lower_plan
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.cost_planner import CostBasedPlanner, epoch_of_view
from repro.rpq.planner import LogicalPlan, plan_query
from repro.rpq.query import BatchResult, KHopQuery, RPQuery

__all__ = ["QueryProcessor", "Frontier"]


class QueryProcessor:
    """Plans batch path queries and delegates them to an execution engine."""

    def __init__(
        self,
        config: MoctopusConfig,
        pim_system: PIMSystem,
        partitioner: GraphPartitioner,
        module_storages: List[LocalGraphStorage],
        host_storage: HeterogeneousGraphStorage,
        operator_processors: List[OperatorProcessor],
        node_migrator: NodeMigrator,
        label_names: Optional[Dict[int, str]] = None,
        engine: Optional[str] = None,
    ) -> None:
        self._config = config
        self._runtime = EngineRuntime(
            config=config,
            pim=pim_system,
            partitioner=partitioner,
            module_storages=module_storages,
            host_storage=host_storage,
            processors=operator_processors,
            migrator=node_migrator,
            label_names=label_names or {},
        )
        self.engine: ExecutionEngine = create_engine(
            engine or config.engine, self._runtime
        )
        self.planner = CostBasedPlanner(
            label_names=label_names or {},
            direction=config.planner_direction,
            engine_selection=config.planner_engine_selection,
        )
        #: Cache hit/miss counters.  Deliberately *not* merged into any
        #: per-query :class:`ExecutionStats` — per-query observables must
        #: stay bit-identical between cold and warm executions.
        self.cache_stats = ExecutionStats()
        self._cache_lock = threading.Lock()
        self._plan_cache: "OrderedDict[Tuple, PhysicalPlan]" = OrderedDict()
        self._result_cache: "OrderedDict[Tuple, Tuple[BatchResult, ExecutionStats]]" = (
            OrderedDict()
        )

    @property
    def engine_name(self) -> str:
        """Name of the active execution backend."""
        return self.engine.name

    def use_engine(self, name: str) -> None:
        """Swap the execution backend (used by benchmarks and tests)."""
        self.engine = create_engine(name, self._runtime)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def execute_khop(self, query: KHopQuery) -> Tuple[BatchResult, ExecutionStats]:
        """Execute a batch k-hop query (the paper's workload)."""
        return self._run(plan_query(query), query.sources)

    def execute_rpq(self, query: RPQuery) -> Tuple[BatchResult, ExecutionStats]:
        """Execute a general regular path query."""
        return self._run(plan_query(query), query.sources)

    def execute_on_view(
        self, query, view, engine: Optional[ExecutionEngine] = None
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Plan ``query`` and execute it against a pinned epoch view.

        The serving layer's entry point: planning and lowering are the
        same as the live path, but the physical plan runs on ``view``
        (frozen owners and snapshots, private accounting platform) via a
        per-session ``engine`` instance.  When no engine is supplied a
        fresh one is created for the call — pinned executions must never
        share the live engine's scratch state with concurrent live
        queries.
        """
        epoch = epoch_of_view(view)
        physical = self.lower(query, view=view)
        if engine is not None:
            engine_name = engine.name
        elif physical.engine_hint is not None:
            engine_name = physical.engine_hint
        else:
            engine_name = self.engine.name
        result_key = None
        if epoch is not None and self._config.result_cache_size > 0:
            result_key = (
                epoch.epoch_id,
                self._query_key(query),
                tuple(query.sources),
                engine_name,
            )
            with self._cache_lock:
                cached = self._result_cache.get(result_key)
                if cached is not None:
                    self._result_cache.move_to_end(result_key)
                    self.cache_stats.add_counter("result_cache_hits")
                else:
                    self.cache_stats.add_counter("result_cache_misses")
            if cached is not None:
                # The O(result-size) replay copy runs *outside* the
                # lock: entries are immutable by convention (only ever
                # deep-copied), so concurrent epoch-pinned readers
                # hitting the cache copy in parallel instead of
                # serializing behind each other's copies.  The local
                # reference keeps the entry alive even if LRU eviction
                # drops it mid-copy.
                return copy.deepcopy(cached)
        if engine is None:
            engine = create_engine(engine_name, self._runtime)
        outcome = engine.execute(physical, query.sources, view=view)
        if result_key is not None:
            entry = copy.deepcopy(outcome)
            with self._cache_lock:
                self._result_cache[result_key] = entry
                self._result_cache.move_to_end(result_key)
                while len(self._result_cache) > self._config.result_cache_size:
                    self._result_cache.popitem(last=False)
        return outcome

    # ------------------------------------------------------------------
    # Lowering and delegation
    # ------------------------------------------------------------------
    def plan(self, query, view=None) -> LogicalPlan:
        """Cost-based logical plan for ``query`` (see ``explain()``)."""
        if not isinstance(query, (KHopQuery, RPQuery)):
            raise TypeError(f"unsupported query type {type(query).__name__}")
        return self.planner.plan(query, view=view)

    def lower(self, query, view=None) -> "PhysicalPlan":
        """Plan and lower ``query`` without executing it.

        ``view`` is anything with a ``total_rows()`` (a pinned
        :class:`~repro.serve.epoch.EpochView`, or a bare
        :class:`~repro.serve.epoch.Epoch`): the cost-based planner then
        consults the epoch's frozen statistics and fixpoint bounds
        derive from the frozen row counts instead of the live storages.
        The parallel worker pool lowers here once and ships the
        resulting picklable plan to its worker processes, so every
        process executes exactly the plan an in-process pinned
        execution would.

        Lowered plans are cached per ``(epoch id, query shape, batch
        size)`` — epoch-keyed, so an entry can never outlive the data it
        was planned against.  Batch size is part of the key because the
        direction decision depends on how many sources amortize the
        forward fan-out.
        """
        epoch = epoch_of_view(view)
        plan_key = None
        if epoch is not None and self._config.plan_cache_size > 0:
            plan_key = (
                epoch.epoch_id,
                self._query_key(query),
                len(query.sources),
            )
            with self._cache_lock:
                cached = self._plan_cache.get(plan_key)
                if cached is not None:
                    self._plan_cache.move_to_end(plan_key)
                    self.cache_stats.add_counter("plan_cache_hits")
                    return cached
                self.cache_stats.add_counter("plan_cache_misses")
        plan = self.plan(query, view=view)
        physical = lower_plan(
            plan,
            default_fixpoint_iterations=self._max_fixpoint_iterations(
                plan, view=view
            ),
        )
        if plan_key is not None:
            with self._cache_lock:
                self._plan_cache[plan_key] = physical
                self._plan_cache.move_to_end(plan_key)
                while len(self._plan_cache) > self._config.plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return physical

    @staticmethod
    def _query_key(query) -> Tuple:
        """Cache-key fragment identifying what a query computes."""
        if isinstance(query, KHopQuery):
            return ("khop", query.hops)
        if isinstance(query, RPQuery):
            return ("rpq", query.expression)
        raise TypeError(f"unsupported query type {type(query).__name__}")

    def _run(
        self, plan: LogicalPlan, sources: List[int]
    ) -> Tuple[BatchResult, ExecutionStats]:
        physical = lower_plan(
            plan,
            default_fixpoint_iterations=self._max_fixpoint_iterations(plan),
        )
        return self.engine.execute(physical, sources)

    def _max_fixpoint_iterations(self, plan: LogicalPlan, view=None) -> int:
        """Row-count bound on Kleene-closure iterations.

        A shortest path to any ``(node, state)`` frontier item visits
        each product-graph vertex at most once, so it is no longer than
        the number of stored rows times the number of DFA states; the
        frontier-dedup in both engines then drains the fixpoint as soon
        as an iteration produces nothing new.  This method contributes
        the row half — ``lower_plan`` scales the default bound by the
        attached DFA's state count, completing the product-graph bound.
        Pinned executions bound against the view's frozen row counts
        instead of the live ones.
        """
        if view is not None:
            stored_rows = view.total_rows()
        else:
            runtime = self._runtime
            stored_rows = sum(
                storage.num_rows for storage in runtime.module_storages
            )
            stored_rows += runtime.host_storage.num_rows
        return max(1, stored_rows)
