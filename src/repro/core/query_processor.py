"""The Query Processor: a thin coordinator over the execution engines.

The processor's job is planning and delegation, not data movement:

1. a query is lowered into a matrix-based logical plan
   (:mod:`repro.rpq.planner`) — ``k`` expand steps plus a reduce for the
   paper's k-hop workload, a DFA-guided fixpoint for general RPQs;
2. the logical plan is lowered again into a
   :class:`~repro.engine.physical.PhysicalPlan` of bulk-synchronous
   dispatch / expand / route / reduce operators;
3. the physical plan is handed to the
   :class:`~repro.engine.base.ExecutionEngine` selected by
   ``MoctopusConfig.engine`` — the scalar ``"python"`` backend or the
   numpy ``"vectorized"`` backend — which executes it on the simulated
   platform and returns the answer matrix plus the execution statistics.

Both backends implement the same operator semantics (see
:mod:`repro.engine`): the smxm phases where partitioning quality turns
into time, the mwait reduction, and the misplacement reports handed to
the node migrator off the query's critical path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import MoctopusConfig
from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import LocalGraphStorage
from repro.core.node_migrator import NodeMigrator
from repro.core.operator_processor import OperatorProcessor
from repro.core.partitioner import GraphPartitioner
from repro.engine.base import EngineRuntime, ExecutionEngine, Frontier, create_engine
from repro.engine.physical import PhysicalPlan, lower_plan
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.planner import LogicalPlan, plan_query
from repro.rpq.query import BatchResult, KHopQuery, RPQuery

__all__ = ["QueryProcessor", "Frontier"]


class QueryProcessor:
    """Plans batch path queries and delegates them to an execution engine."""

    def __init__(
        self,
        config: MoctopusConfig,
        pim_system: PIMSystem,
        partitioner: GraphPartitioner,
        module_storages: List[LocalGraphStorage],
        host_storage: HeterogeneousGraphStorage,
        operator_processors: List[OperatorProcessor],
        node_migrator: NodeMigrator,
        label_names: Optional[Dict[int, str]] = None,
        engine: Optional[str] = None,
    ) -> None:
        self._config = config
        self._runtime = EngineRuntime(
            config=config,
            pim=pim_system,
            partitioner=partitioner,
            module_storages=module_storages,
            host_storage=host_storage,
            processors=operator_processors,
            migrator=node_migrator,
            label_names=label_names or {},
        )
        self.engine: ExecutionEngine = create_engine(
            engine or config.engine, self._runtime
        )

    @property
    def engine_name(self) -> str:
        """Name of the active execution backend."""
        return self.engine.name

    def use_engine(self, name: str) -> None:
        """Swap the execution backend (used by benchmarks and tests)."""
        self.engine = create_engine(name, self._runtime)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def execute_khop(self, query: KHopQuery) -> Tuple[BatchResult, ExecutionStats]:
        """Execute a batch k-hop query (the paper's workload)."""
        return self._run(plan_query(query), query.sources)

    def execute_rpq(self, query: RPQuery) -> Tuple[BatchResult, ExecutionStats]:
        """Execute a general regular path query."""
        return self._run(plan_query(query), query.sources)

    def execute_on_view(
        self, query, view, engine: Optional[ExecutionEngine] = None
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Plan ``query`` and execute it against a pinned epoch view.

        The serving layer's entry point: planning and lowering are the
        same as the live path, but the physical plan runs on ``view``
        (frozen owners and snapshots, private accounting platform) via a
        per-session ``engine`` instance.  When no engine is supplied a
        fresh one is created for the call — pinned executions must never
        share the live engine's scratch state with concurrent live
        queries.
        """
        physical = self.lower(query, view=view)
        if engine is None:
            engine = create_engine(self.engine.name, self._runtime)
        return engine.execute(physical, query.sources, view=view)

    # ------------------------------------------------------------------
    # Lowering and delegation
    # ------------------------------------------------------------------
    def lower(self, query, view=None) -> "PhysicalPlan":
        """Plan and lower ``query`` without executing it.

        ``view`` is anything with a ``total_rows()`` (a pinned
        :class:`~repro.serve.epoch.EpochView`, or a bare
        :class:`~repro.serve.epoch.Epoch`): fixpoint bounds then derive
        from the frozen row counts instead of the live storages.  The
        parallel worker pool lowers here once and ships the resulting
        picklable plan to its worker processes, so every process
        executes exactly the plan an in-process pinned execution would.
        """
        if isinstance(query, (KHopQuery, RPQuery)):
            plan = plan_query(query)
        else:
            raise TypeError(f"unsupported query type {type(query).__name__}")
        return lower_plan(
            plan,
            default_fixpoint_iterations=self._max_fixpoint_iterations(
                plan, view=view
            ),
        )

    def _run(
        self, plan: LogicalPlan, sources: List[int]
    ) -> Tuple[BatchResult, ExecutionStats]:
        physical = lower_plan(
            plan,
            default_fixpoint_iterations=self._max_fixpoint_iterations(plan),
        )
        return self.engine.execute(physical, sources)

    def _max_fixpoint_iterations(self, plan: LogicalPlan, view=None) -> int:
        """Bound on Kleene-closure iterations: rows x automaton states.

        A shortest path to any ``(node, state)`` frontier item visits
        each product-graph vertex at most once, so it is no longer than
        the number of stored rows times the number of DFA states; the
        frontier-dedup in both engines then drains the fixpoint as soon
        as an iteration produces nothing new.  Pinned executions bound
        against the view's frozen row counts instead of the live ones.
        """
        if view is not None:
            stored_rows = view.total_rows()
        else:
            runtime = self._runtime
            stored_rows = sum(
                storage.num_rows for storage in runtime.module_storages
            )
            stored_rows += runtime.host_storage.num_rows
        bound = max(1, stored_rows)
        if plan.dfa is not None:
            bound *= max(1, plan.dfa.num_states)
        return bound
