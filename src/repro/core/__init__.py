"""Moctopus core: the paper's primary contribution.

The components map one-to-one onto the architecture of the paper's
Figure 1:

* :class:`Moctopus` — the system facade (query + update entry points);
* :class:`MoctopusConfig` — every tunable the paper mentions;
* :class:`GraphPartitioner` / :class:`NodeMigrator` — the PIM-friendly
  dynamic graph partitioning algorithm (labor division + greedy-adaptive
  load balancing);
* :class:`QueryProcessor` / :class:`UpdateProcessor` — translate
  requests into ``smxm`` / ``mwait`` / ``add`` / ``sub`` operators and
  execute them across the host and the PIM modules;
* :class:`OperatorProcessor` — the per-module operator executor;
* :class:`LocalGraphStorage` — the hash-map adjacency segment of a PIM
  module;
* :class:`HeterogeneousGraphStorage` — the host's ``cols_vector`` rows
  plus PIM-side index maps for high-degree nodes;
* :class:`GraphSnapshot` — dirty-flag-cached CSR views of both storages
  (``to_csr()``), the substrate of the vectorized execution backend in
  :mod:`repro.engine`.
"""

from repro.core.config import MoctopusConfig
from repro.core.local_storage import LocalGraphStorage
from repro.core.hetero_storage import (
    HeterogeneousGraphStorage,
    HeteroUpdateOutcome,
)
from repro.core.operators import (
    AddOperator,
    MwaitOperator,
    SmxmOperator,
    SubOperator,
)
from repro.core.operator_processor import OperatorProcessor, SmxmWork, UpdateWork
from repro.core.partitioner import GraphPartitioner
from repro.core.snapshot import GraphSnapshot
from repro.core.node_migrator import NodeMigrator
from repro.core.query_processor import QueryProcessor
from repro.core.update_processor import UpdateProcessor
from repro.core.system import Moctopus

__all__ = [
    "Moctopus",
    "MoctopusConfig",
    "GraphPartitioner",
    "NodeMigrator",
    "QueryProcessor",
    "UpdateProcessor",
    "OperatorProcessor",
    "SmxmWork",
    "UpdateWork",
    "LocalGraphStorage",
    "HeterogeneousGraphStorage",
    "HeteroUpdateOutcome",
    "GraphSnapshot",
    "SmxmOperator",
    "MwaitOperator",
    "AddOperator",
    "SubOperator",
]
