"""Configuration of a Moctopus instance.

All the tunables the paper mentions live here so that benchmarks and
ablations can sweep them:

* the number of PIM modules (the paper uses one UPMEM rank = 64);
* the high-degree threshold of the labor-division approach (16);
* the capacity-constraint proportion of the radical greedy heuristic
  (1.05);
* the detection threshold for "incorrectly partitioned" nodes (a node is
  reported when more than half of its next hops live on other modules);
* switches to disable labor division or migration, which is how the
  PIM-hash contrast system and the ablation benches are expressed;
* the physical execution backend (``engine``) — the scalar reference
  engine, the vectorized numpy engine or the semiring-matrix engine,
  which are required to agree on
  every result and every simulated counter;
* the snapshot-maintenance knobs (``snapshot_compact_ratio``,
  ``snapshot_incremental``) controlling how the storages refresh their
  cached CSR views between updates and queries;
* the serving-layer knobs (``epoch_retention``, ``serve_queue_depth``,
  ``serve_batch_window``, ``serve_linger``, ``serve_workers``,
  ``serve_worker_start_method``) controlling how many published epochs
  stay registered for lagging readers, how the batch scheduler admits
  and coalesces concurrent client queries, and whether coalesced
  batches fan out across worker *processes* over shared-memory epoch
  exports (:mod:`repro.parallel`);
* the network front-end knobs (``net_host``, ``net_port``,
  ``net_auth_token``, ``net_max_inflight_per_client``,
  ``net_request_timeout``) controlling where ``Moctopus.listen()``
  binds, the HELLO handshake secret, and the per-client admission
  bounds and request timeouts of :mod:`repro.net`;
* the durability knobs (``durability_dir``, ``wal_segment_bytes``,
  ``checkpoint_interval_batches``, ``wal_fsync``) controlling the
  write-ahead log and checkpoint lifecycle of
  :mod:`repro.durability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.snapshot import DEFAULT_SNAPSHOT_COMPACT_RATIO
from repro.pim.cost_model import CostModel
from repro.partition.labor_division import DEFAULT_HIGH_DEGREE_THRESHOLD
from repro.partition.radical_greedy import DEFAULT_CAPACITY_FACTOR


@dataclass
class MoctopusConfig:
    """Tunable parameters of a :class:`repro.core.system.Moctopus` instance."""

    #: Simulated platform parameters (module count, bandwidths, ...).
    cost_model: CostModel = field(default_factory=CostModel)
    #: Out-degree above which a node is treated as high-degree and kept on
    #: the host (labor division).  ``None`` disables labor division.
    high_degree_threshold: Optional[int] = DEFAULT_HIGH_DEGREE_THRESHOLD
    #: Capacity-constraint proportion of the radical greedy partitioner.
    capacity_factor: float = DEFAULT_CAPACITY_FACTOR
    #: Partitioning policy for low-degree nodes: ``"radical_greedy"`` (the
    #: paper's design) or ``"hash"`` (the PIM-hash contrast system).
    pim_placement: str = "radical_greedy"
    #: Fraction of a node's next hops that must be non-local before the
    #: operator processor reports it as incorrectly partitioned.
    misplacement_threshold: float = 0.5
    #: Whether the node migrator is allowed to move misplaced nodes after
    #: a query (the adaptive half of greedy-adaptive partitioning).
    enable_migration: bool = True
    #: Capacity proportion the *migrator* respects when moving a node to
    #: its majority partition.  The paper bounds load balance at
    #: assignment time (1.05x) but migration exists purely to recover
    #: locality, so it is allowed to overshoot the assignment constraint
    #: moderately; hot hubs are already on the host, so node-count skew
    #: from migration translates into little work skew.
    migration_capacity_factor: float = 1.5
    #: Upper bound on migrations applied after one batch query, to keep
    #: migration overhead bounded as the paper intends.
    max_migrations_per_query: int = 4096
    #: Physical execution backend for batch queries: ``"python"`` (the
    #: scalar reference engine, exact original semantics),
    #: ``"vectorized"`` (numpy columnar frontiers over CSR storage
    #: snapshots) or ``"matrix"`` (masked boolean-semiring SpGEMM over
    #: pre-transposed CSR blocks, falling back to the push path for
    #: sparse frontiers).  All produce identical results and identical
    #: simulated statistics; the numpy backends are much faster
    #: wall-clock, with ``"matrix"`` ahead on dense multi-hop frontiers.
    engine: str = "python"
    #: Dirty-row fraction of a storage's cached CSR base above which a
    #: snapshot refresh compacts (rebuilds the base from scratch) instead
    #: of splicing the delta overlay in.  ``0.0`` compacts on every
    #: refresh; large values always splice.
    snapshot_compact_ratio: float = DEFAULT_SNAPSHOT_COMPACT_RATIO
    #: Whether storages maintain their CSR snapshots incrementally
    #: (base + overlay).  ``False`` restores the pre-overlay behaviour —
    #: every mutation invalidates, every refresh is a from-scratch
    #: scalar rebuild — kept as a benchmark baseline and differential
    #: reference.
    snapshot_incremental: bool = True
    #: How many epochs (the current one included) the serving layer's
    #: :class:`~repro.serve.epoch.EpochManager` keeps registered, so
    #: recent history stays inspectable for lagging readers.  Epochs
    #: pinned by open sessions are always retained regardless of this
    #: bound.
    epoch_retention: int = 4
    #: Bound of the serving layer's admission queue: how many client
    #: queries may be waiting in a :class:`~repro.serve.scheduler.
    #: BatchScheduler` before further submissions are rejected
    #: (backpressure instead of unbounded memory growth).
    serve_queue_depth: int = 64
    #: Upper bound on how many queued client queries one scheduler pass
    #: coalesces into a single engine-level batch.
    serve_batch_window: int = 16
    #: Default worker-process count behind ``Moctopus.serve()``: the
    #: :class:`~repro.serve.scheduler.BatchScheduler` scatters each
    #: window's coalesced batches across this many child processes,
    #: zero-copy readers of shared-memory epoch exports
    #: (:mod:`repro.parallel`).  ``0`` (the default) executes windows
    #: in-process; ``serve(parallel=N)`` overrides per scheduler.
    serve_workers: int = 0
    #: ``multiprocessing`` start method for pool workers: ``None``
    #: auto-selects (``fork`` where available, else ``spawn``).
    serve_worker_start_method: Optional[str] = None
    #: How long (seconds) a scheduler drain waits for stragglers to fill
    #: its coalescing window once the first query of a window arrived.
    #: ``0`` (the default) drains whatever is queued immediately —
    #: lowest latency; a small linger (e.g. ``0.002``) trades latency
    #: for larger coalesced batches under bursty traffic.
    serve_linger: float = 0.0
    #: Bind host of the network front-end (``Moctopus.listen()``).
    net_host: str = "127.0.0.1"
    #: Bind port of the network front-end; ``0`` picks an ephemeral port
    #: (read it back from ``server.port``).
    net_port: int = 0
    #: Shared-secret auth token the HELLO handshake must present.
    #: ``None`` (the default) accepts any client.
    net_auth_token: Optional[str] = None
    #: Per-connection cap on queries in flight: a client exceeding it
    #: receives BUSY frames (admission control at the socket boundary)
    #: instead of buffering without bound.
    net_max_inflight_per_client: int = 32
    #: Per-request timeout (seconds) the server enforces on every QUERY:
    #: a query not answered in time gets an ERROR(timeout) frame and its
    #: eventual result is discarded.
    net_request_timeout: float = 30.0
    #: Root directory of the durability subsystem (write-ahead log +
    #: checkpoints).  ``None`` (the default) keeps the system memory-only;
    #: set a path to make every bulk load, update batch and migration
    #: pass crash-recoverable via :meth:`repro.core.system.Moctopus.recover`.
    durability_dir: Optional[str] = None
    #: Size bound of one WAL segment file; the log rotates to a fresh
    #: segment rather than let a record push past it (records never span
    #: segments, so every segment is independently CRC-scannable).
    wal_segment_bytes: int = 1 << 20
    #: Applied update batches between automatic checkpoints, written by
    #: a background thread under the writer lock.  ``0`` disables the
    #: daemon — checkpoints then only happen via ``Moctopus.checkpoint()``.
    checkpoint_interval_batches: int = 64
    #: Whether every WAL append is ``fsync``\\ ed.  Off by default: the
    #: flush-per-record log survives process crashes (what the
    #: fault-injection harness models); turn this on for power-loss
    #: durability at the usual per-batch latency cost.
    wal_fsync: bool = False
    #: Expansion-direction policy of the cost-based planner:
    #: ``"auto"`` compares the estimated forward cost against reverse
    #: expansion from the rarer accepting side (epoch-pinned,
    #: fixed-length plans only); ``"forward"`` pins the classic
    #: source-side expansion (the pre-planner behaviour and the
    #: ablation baseline).
    planner_direction: str = "auto"
    #: Whether the planner's advisory engine hint may pick the backend
    #: when the caller did not pin one.  Callers that pass an engine
    #: instance (sessions, schedulers) are never overridden.
    planner_engine_selection: bool = True
    #: Bound of the epoch-keyed plan cache on the query processor
    #: (entries; LRU).  ``0`` disables plan caching.
    plan_cache_size: int = 128
    #: Bound of the epoch-keyed LRU result cache for repeated
    #: ``(expression, sources, epoch)`` hits.  Entries are deep copies,
    #: so cached answers are bit-identical to a fresh execution
    #: (results *and* simulated stats).  ``0`` disables result caching.
    result_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.pim_placement not in ("radical_greedy", "hash"):
            raise ValueError(
                "pim_placement must be 'radical_greedy' or 'hash', "
                f"got {self.pim_placement!r}"
            )
        if self.engine not in ("python", "vectorized", "matrix"):
            raise ValueError(
                "engine must be 'python', 'vectorized' or 'matrix', "
                f"got {self.engine!r}"
            )
        if not 0.0 < self.misplacement_threshold <= 1.0:
            raise ValueError("misplacement_threshold must be in (0, 1]")
        if self.capacity_factor < 1.0:
            raise ValueError("capacity_factor must be >= 1.0")
        if self.migration_capacity_factor < 1.0:
            raise ValueError("migration_capacity_factor must be >= 1.0")
        if self.high_degree_threshold is not None and self.high_degree_threshold <= 0:
            raise ValueError("high_degree_threshold must be positive or None")
        if self.snapshot_compact_ratio < 0.0:
            raise ValueError("snapshot_compact_ratio must be >= 0")
        if self.epoch_retention < 1:
            raise ValueError("epoch_retention must be >= 1")
        if self.serve_queue_depth < 1:
            raise ValueError("serve_queue_depth must be >= 1")
        if self.serve_batch_window < 1:
            raise ValueError("serve_batch_window must be >= 1")
        if self.serve_workers < 0:
            raise ValueError("serve_workers must be >= 0")
        if self.serve_worker_start_method not in (
            None,
            "fork",
            "spawn",
            "forkserver",
        ):
            raise ValueError(
                "serve_worker_start_method must be None, 'fork', 'spawn' "
                f"or 'forkserver', got {self.serve_worker_start_method!r}"
            )
        if self.serve_linger < 0:
            raise ValueError("serve_linger must be >= 0 seconds")
        if not 0 <= self.net_port <= 65535:
            raise ValueError("net_port must be in [0, 65535]")
        if self.net_max_inflight_per_client < 1:
            raise ValueError("net_max_inflight_per_client must be >= 1")
        if self.net_request_timeout <= 0:
            raise ValueError("net_request_timeout must be > 0 seconds")
        if self.wal_segment_bytes < 1024:
            raise ValueError("wal_segment_bytes must be >= 1024")
        if self.checkpoint_interval_batches < 0:
            raise ValueError("checkpoint_interval_batches must be >= 0")
        if self.planner_direction not in ("auto", "forward"):
            raise ValueError(
                "planner_direction must be 'auto' or 'forward', "
                f"got {self.planner_direction!r}"
            )
        if self.plan_cache_size < 0:
            raise ValueError("plan_cache_size must be >= 0")
        if self.result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")

    @property
    def num_modules(self) -> int:
        """Number of PIM modules in the simulated platform."""
        return self.cost_model.num_modules

    @property
    def labor_division_enabled(self) -> bool:
        """Whether high-degree nodes are routed to the host."""
        return self.high_degree_threshold is not None

    @classmethod
    def pim_hash_config(cls, cost_model: Optional[CostModel] = None) -> "MoctopusConfig":
        """Configuration of the paper's PIM-hash contrast system.

        All nodes are hash-partitioned across PIM modules; no labor
        division, no migration.
        """
        return cls(
            cost_model=cost_model or CostModel(),
            high_degree_threshold=None,
            pim_placement="hash",
            enable_migration=False,
        )
