"""The Moctopus system facade.

:class:`Moctopus` wires every component together — the simulated PIM
platform, the graph partitioner and node migrator, per-module local
graph storage, the host's heterogeneous storage for high-degree nodes,
and the query/update processors — behind a small public API:

.. code-block:: python

    from repro import Moctopus, MoctopusConfig
    from repro.graph import load_dataset

    graph = load_dataset("web-Google")
    system = Moctopus.from_graph(graph)

    result, stats = system.batch_khop(sources=[0, 1, 2], hops=2)
    print(result.destinations_of(0), stats.total_time_ms)

    insert_stats = system.insert_edges([(10, 42), (42, 99)])
    delete_stats = system.delete_edges([(10, 42)])

Every call that touches the simulated hardware returns an
:class:`~repro.pim.stats.ExecutionStats` with the host/CPC/IPC/PIM time
breakdown; the benchmark harness feeds those straight into the paper's
figures.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.config import MoctopusConfig
from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import LocalGraphStorage
from repro.core.node_migrator import NodeMigrator
from repro.core.operator_processor import OperatorProcessor
from repro.core.partitioner import GraphPartitioner
from repro.core.query_processor import QueryProcessor
from repro.core.update_processor import UpdateProcessor
from repro.graph.digraph import DEFAULT_LABEL, DiGraph
from repro.graph.stream import UpdateKind, UpdateOp
from repro.partition.base import HOST_PARTITION
from repro.partition.metrics import PartitionQuality, evaluate_partition
from repro.partition.owner_index import OwnerIndex
from repro.pim.stats import ExecutionStats
from repro.pim.system import PIMSystem
from repro.rpq.query import BatchResult, KHopQuery, RPQuery

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.durability import DurabilityController
    from repro.net.server import MoctopusServer
    from repro.serve.scheduler import BatchScheduler
    from repro.serve.session import Session


class Moctopus:
    """PIM-based data management system for batch RPQs and graph updates."""

    def __init__(
        self,
        config: Optional[MoctopusConfig] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> None:
        self.config = config or MoctopusConfig()
        self.pim = PIMSystem(self.config.cost_model)
        self._partitioner = GraphPartitioner(self.config)
        self._module_storages = [
            LocalGraphStorage(
                memory=module.memory,
                compact_ratio=self.config.snapshot_compact_ratio,
                incremental=self.config.snapshot_incremental,
            )
            for module in self.pim.modules
        ]
        self._host_storage = HeterogeneousGraphStorage(
            self.config.num_modules,
            compact_ratio=self.config.snapshot_compact_ratio,
            incremental=self.config.snapshot_incremental,
        )
        self._processors = [
            OperatorProcessor(
                module_id,
                storage,
                misplacement_threshold=self.config.misplacement_threshold,
            )
            for module_id, storage in enumerate(self._module_storages)
        ]
        #: Mirror of the stored graph, used for partition-quality metrics,
        #: reference checks and source sampling in benchmarks.
        self._mirror = DiGraph()
        self._migrator = NodeMigrator(
            self._partitioner,
            self._module_storages,
            self._host_storage,
            capacity_factor=self.config.migration_capacity_factor,
        )
        self._query_processor = QueryProcessor(
            self.config,
            self.pim,
            self._partitioner,
            self._module_storages,
            self._host_storage,
            self._processors,
            self._migrator,
            label_names=label_names,
        )
        self._update_processor = UpdateProcessor(
            self.config,
            self.pim,
            self._partitioner,
            self._module_storages,
            self._host_storage,
            self._processors,
            self._migrator,
            self._mirror,
        )
        #: Stats of the most recent post-query maintenance pass (migrations).
        self.last_maintenance_stats: Optional[ExecutionStats] = None
        #: Serializes the live/writer path (updates, live queries,
        #: migrations, epoch captures).  Pinned session/scheduler
        #: executions run *outside* this lock on frozen arrays.
        self._serve_lock = threading.RLock()
        #: Owner-table capture cache for epoch publishing (journal-patched
        #: between captures; each epoch takes a frozen copy).
        self._owner_capture = OwnerIndex()
        # Imported lazily: repro.serve sits above repro.core, so a
        # module-level import here would be circular.
        from repro.serve.epoch import EpochManager

        #: Epoch publish/pin lifecycle of the serving layer.
        self._epochs = EpochManager(
            self._capture_epoch,
            retention=self.config.epoch_retention,
            lock=self._serve_lock,
        )
        #: Write-ahead log + checkpoint lifecycle (``None`` = memory-only).
        self._durability: Optional["DurabilityController"] = None
        if self.config.durability_dir:
            self._attach_durability(self.config)

    # ------------------------------------------------------------------
    # Construction / loading
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        config: Optional[MoctopusConfig] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> "Moctopus":
        """Build a system and bulk-load ``graph`` into it."""
        system = cls(config=config, label_names=label_names)
        system.load_graph(graph)
        return system

    def load_graph(self, graph: DiGraph) -> None:
        """Bulk-load a graph (no simulated cost; loading is offline).

        Edges are replayed in their insertion order so the radical greedy
        partitioner sees the same stream a growing database would have
        produced.  With durability enabled, the exact replay streams
        (edge order *and* node order — both feed placement decisions)
        are written ahead as one ``BOOTSTRAP`` record.
        """
        with self._serve_lock:
            if self._durability is not None:
                edges = list(graph.labeled_edges())
                nodes = list(graph.nodes())
                self._durability.log_bootstrap(edges, nodes)
                self._replay_bootstrap(edges, nodes)
            else:
                # Memory-only loads stream the generators directly — no
                # point materializing a second copy of every edge.
                self._replay_bootstrap(graph.labeled_edges(), graph.nodes())

    def _replay_bootstrap(
        self,
        edges: Iterable[Tuple[int, int, int]],
        nodes: Iterable[int],
    ) -> None:
        """Ingest a bulk load's edge/node streams (live load and recovery)."""
        with self._serve_lock:
            for src, dst, label in edges:
                self._ingest_edge(src, dst, label)
            for node in nodes:
                if self._partitioner.partition_of(node) is None:
                    self._partitioner.assign_node(node)
                    self._mirror.add_node(node)
                    self._ensure_row(node)
            self._epochs.mark_stale()

    def _ingest_edge(self, src: int, dst: int, label: int = DEFAULT_LABEL) -> None:
        previous = self._partitioner.partition_of(src)
        src_partition, dst_partition = self._partitioner.ingest_edge(src, dst)
        if (
            previous is not None
            and previous != HOST_PARTITION
            and src_partition == HOST_PARTITION
        ):
            # The labor-division wrapper just promoted this node.
            self._migrator.promote_to_host(src, previous)
        self._mirror.add_edge(src, dst, label)
        self._ensure_row(dst, dst_partition)
        if src_partition == HOST_PARTITION:
            self._host_storage.insert_edge(src, dst, label)
        else:
            self._module_storages[src_partition].add_edge(src, dst, label)

    def _capture_epoch(self):
        """Capture the frozen state of a new serving epoch.

        Called by the :class:`~repro.serve.epoch.EpochManager` under the
        serve lock.  Cheap by design: ``to_csr()`` is a cache hit for
        every storage the last update batch didn't touch, and the owner
        table is journal-patched then copied once.
        """
        snapshots = tuple(
            storage.to_csr() for storage in self._module_storages
        ) + (self._host_storage.to_csr(),)
        self._owner_capture.refresh(self._partitioner.partition_map)
        owners = self._owner_capture.frozen_copy()
        return snapshots, owners, self._mirror.num_nodes, self._mirror.num_edges

    def _ensure_row(self, node: int, partition: Optional[int] = None) -> None:
        partition = (
            partition
            if partition is not None
            else self._partitioner.partition_of(node)
        )
        if partition is None:
            return
        if partition == HOST_PARTITION:
            self._host_storage.ensure_row(node)
        else:
            self._module_storages[partition].ensure_row(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def batch_khop(
        self, sources: Iterable[int], hops: int, auto_migrate: Optional[bool] = None
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Run a batch k-hop path query (the paper's RPQ workload)."""
        query = KHopQuery(hops=hops, sources=list(sources))
        with self._serve_lock:
            result, stats = self._query_processor.execute_khop(query)
            self._maybe_migrate(auto_migrate)
        return result, stats

    def execute(
        self, query, auto_migrate: Optional[bool] = None
    ) -> Tuple[BatchResult, ExecutionStats]:
        """Run a :class:`KHopQuery` or a general :class:`RPQuery`."""
        with self._serve_lock:
            if isinstance(query, KHopQuery):
                result, stats = self._query_processor.execute_khop(query)
            elif isinstance(query, RPQuery):
                result, stats = self._query_processor.execute_rpq(query)
            else:
                raise TypeError(f"unsupported query type {type(query).__name__}")
            self._maybe_migrate(auto_migrate)
        return result, stats

    def _maybe_migrate(self, auto_migrate: Optional[bool]) -> None:
        enabled = self.config.enable_migration if auto_migrate is None else auto_migrate
        if not enabled:
            return
        self.run_maintenance()

    def run_maintenance(self) -> Tuple[int, ExecutionStats]:
        """Migrate nodes reported as incorrectly partitioned.

        Returns the number of nodes moved and the simulated cost of the
        pass (charged to a separate operation, off the query critical
        path, as in the paper).
        """
        with self._serve_lock:
            had_reports = self._migrator.pending_reports > 0
            operation = self.pim.begin_operation()
            with operation.phase("migration"):
                moved = self._migrator.apply_migrations(
                    op=operation, limit=self.config.max_migrations_per_query
                )
            stats = operation.finish()
            stats.add_counter("migrations", moved)
            self.last_maintenance_stats = stats
            if moved:
                self._epochs.mark_stale()
            if self._durability is not None and (moved or had_reports):
                # Migration decisions consume volatile misplacement
                # reports, so they are journaled as *outcomes* (redo)
                # rather than re-derived at recovery.  A pass that
                # consumed reports without moving anything is journaled
                # too (an empty record): replaying it clears reports an
                # older checkpoint may have captured, which this pass
                # already consumed.  A failure here latches the
                # controller as failed: state has already moved past the
                # durable history (see log_migrations).
                self._durability.log_migrations(self._migrator.last_moves)
        return moved, stats

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edges(
        self, edges: List[Tuple[int, int]], labels: Optional[List[int]] = None
    ) -> ExecutionStats:
        """Insert a batch of edges and return the simulated cost."""
        ops = [UpdateOp(UpdateKind.INSERT, src, dst) for src, dst in edges]
        return self.apply_updates(ops, labels=labels)

    def delete_edges(self, edges: List[Tuple[int, int]]) -> ExecutionStats:
        """Delete a batch of edges and return the simulated cost."""
        ops = [UpdateOp(UpdateKind.DELETE, src, dst) for src, dst in edges]
        return self.apply_updates(ops)

    def apply_updates(
        self, ops: List[UpdateOp], labels: Optional[List[int]] = None
    ) -> ExecutionStats:
        """Apply a mixed stream of :class:`~repro.graph.stream.UpdateOp`.

        Every update funnels through here (``insert_edges`` and
        ``delete_edges`` are conveniences over it), which is the single
        write-ahead point: with durability enabled the batch is appended
        to the WAL *before* any state mutates, so a batch is committed
        exactly when its record is durable.
        """
        with self._serve_lock:
            if self._durability is None:
                stats = self._update_processor.apply_batch(ops, labels=labels)
                self._epochs.mark_stale()
                return stats
            lsn = self._durability.log_batch(ops, labels)
            try:
                stats = self._update_processor.apply_batch(ops, labels=labels)
            except BaseException as error:
                # The batch is durable but its apply failed (e.g. a
                # module's local memory filled).  Compensate with an
                # ABORT record so replay skips it — otherwise every
                # future recovery would re-raise the same error and the
                # directory could never be recovered again.  The apply
                # may have partially mutated in-memory state, so this
                # also latches durability off: the durable history ends
                # at the abort, and the right way forward is recover().
                self._durability.log_abort(lsn, error)
                raise
            self._epochs.mark_stale()
            self._durability.note_batch_applied()
        return stats

    # ------------------------------------------------------------------
    # Durability (write-ahead log, checkpoints, recovery)
    # ------------------------------------------------------------------
    def _attach_durability(
        self, config: MoctopusConfig, resume_lsn: Optional[int] = None
    ) -> None:
        """Wire up (or re-wire after recovery) the durability controller.

        ``resume_lsn`` asserts that the on-disk log ends exactly where
        replay stopped — recovery passes the last applied LSN so a
        mismatch (someone appended behind our back) fails loudly.
        """
        from repro.durability import DurabilityController

        self.config = config
        self._durability = DurabilityController(
            self, config, resume_lsn=resume_lsn
        )

    @classmethod
    def recover(
        cls,
        durability_dir: str,
        config: Optional[MoctopusConfig] = None,
        engine: Optional[str] = None,
    ) -> "Moctopus":
        """Rebuild the system persisted under ``durability_dir``.

        Loads the newest valid checkpoint, replays the WAL tail
        (truncating a torn final record), and returns a live system
        that resumes logging to the same directory.  The recovered
        state is bit-identical to the crashed process's durable prefix:
        same CSR snapshot arrays, same owner table, same accounting —
        the fault-injection suite asserts this at every crash point.
        """
        from repro.durability.recovery import recover

        return recover(durability_dir, config=config, engine=engine)

    def checkpoint(self) -> str:
        """Write a checkpoint now (synchronously); returns its path.

        The capture runs under the writer lock at an
        :meth:`~repro.serve.epoch.EpochManager.publish` barrier, so the
        serialized arrays are exactly a published epoch.
        """
        if self._durability is None:
            raise RuntimeError("durability is not enabled on this system")
        return self._durability.checkpoint_now()

    def close(self) -> None:
        """Flush and detach durability (stop the daemon, close the WAL).

        Safe to call on memory-only systems (a no-op) and more than
        once.  The system remains usable for in-memory work afterwards,
        but further updates are no longer logged.
        """
        if self._durability is not None:
            self._durability.close()
            self._durability = None

    @property
    def durable_lsn(self) -> int:
        """LSN of the last durably appended WAL record (0 = none)."""
        if self._durability is None:
            return 0
        return self._durability.wal.last_lsn

    # ------------------------------------------------------------------
    # Serving (snapshot-isolated sessions and coalesced scheduling)
    # ------------------------------------------------------------------
    def begin(self, engine: Optional[str] = None) -> "Session":
        """Open a snapshot-isolated :class:`~repro.serve.session.Session`.

        The session pins the latest published epoch: its queries never
        observe writes applied after ``begin()`` until it ``refresh()``\\ es,
        and updates staged through the session are visible to the session
        immediately (read-your-writes) but to nobody else until
        ``commit()``.  ``engine`` optionally overrides the backend for
        this session only.
        """
        from repro.serve.session import Session

        return Session(self, engine=engine)

    def serve(
        self,
        engine: Optional[str] = None,
        parallel: Optional[int] = None,
        **kwargs,
    ) -> "BatchScheduler":
        """Start a :class:`~repro.serve.scheduler.BatchScheduler`.

        The scheduler admits concurrent single-source k-hop queries into
        a bounded queue and coalesces them into engine-level batches
        executed against the latest epoch.  ``parallel=N`` scatters the
        coalesced batches across ``N`` worker processes attached
        zero-copy to shared-memory epoch exports
        (:mod:`repro.parallel`); the default comes from
        ``MoctopusConfig.serve_workers`` (0 = in-process).  Close it (or
        use it as a context manager) when done.
        """
        from repro.serve.scheduler import BatchScheduler

        if parallel is None:
            parallel = self.config.serve_workers
        return BatchScheduler(self, engine=engine, parallel=parallel, **kwargs)

    def listen(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        **kwargs,
    ) -> "MoctopusServer":
        """Serve queries over TCP: start a network front-end.

        Creates a :class:`~repro.net.server.MoctopusServer` (which owns
        its own :meth:`serve` scheduler) and starts it on a background
        event-loop thread.  ``host``/``port`` default from the
        ``net_host``/``net_port`` config knobs (``port=0`` binds an
        ephemeral port, readable as ``server.port``); remaining keyword
        arguments — ``auth_token``, ``max_inflight_per_client``,
        ``request_timeout``, ``engine``, ``parallel`` — are forwarded to
        the server constructor.  Close the returned server (or use it as
        a context manager) when done; shutdown answers every in-flight
        query before closing sockets.
        """
        from repro.net.server import MoctopusServer

        server = MoctopusServer(self, host=host, port=port, **kwargs)
        return server.start()

    @property
    def current_epoch_id(self) -> int:
        """Id of the latest published epoch (publishing one if stale)."""
        return self._epochs.current().epoch_id

    def serving_report(self) -> Dict[int, Dict[str, int]]:
        """Per-epoch serving counters (queries answered, batches run)."""
        return self._epochs.serving_report()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def explain(self, query, pinned: bool = True) -> str:
        """The cost-based plan for ``query``, rendered for humans.

        With ``pinned`` (the default) the query is planned against the
        latest published epoch, so the explanation shows what a session
        opened now would run — expansion direction, cost estimates and
        the planner's reasoning included.  ``pinned=False`` explains the
        live (statistics-free, always-forward) plan instead.
        """
        view = self._epochs.current() if pinned else None
        return self._query_processor.plan(query, view=view).explain()

    @property
    def cache_stats(self) -> ExecutionStats:
        """Plan/result cache hit and miss counters (cumulative).

        Kept separate from every per-query :class:`ExecutionStats` so
        cached answers stay bit-identical to uncached ones.
        """
        return self._query_processor.cache_stats

    @property
    def graph(self) -> DiGraph:
        """The mirror of the currently stored graph (read-only by convention)."""
        return self._mirror

    @property
    def num_nodes(self) -> int:
        """Number of stored graph nodes."""
        return self._mirror.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of stored edges."""
        return self._mirror.num_edges

    @property
    def num_modules(self) -> int:
        """Number of PIM modules in the simulated platform."""
        return self.pim.num_modules

    @property
    def engine_name(self) -> str:
        """Name of the active query execution backend."""
        return self._query_processor.engine_name

    def use_engine(self, name: str) -> None:
        """Swap the execution backend (``"python"`` / ``"vectorized"``).

        Switches both the query engine and the update processor's batch
        partitioning path.  Both backends produce identical results and
        identical simulated statistics on the same system state;
        swapping mid-run is safe and is how the engine benchmarks
        compare wall-clock cost.
        """
        with self._serve_lock:
            self._query_processor.use_engine(name)
            self._update_processor.use_engine(name)

    def partition_of(self, node: int) -> Optional[int]:
        """Partition of ``node`` (``-1`` = host)."""
        return self._partitioner.partition_of(node)

    def host_node_count(self) -> int:
        """Number of (high-degree) nodes resident on the host."""
        return self._partitioner.partition_map.host_size()

    def module_node_counts(self) -> List[int]:
        """Number of nodes stored on each PIM module."""
        return [storage.num_rows for storage in self._module_storages]

    def partition_quality(self) -> PartitionQuality:
        """Edge cut / locality / balance of the current placement."""
        return evaluate_partition(self._mirror, self._partitioner.partition_map)

    def partition_statistics(self) -> Dict[str, int]:
        """Partitioner decision counters (greedy vs fallback vs promotions)."""
        return {
            "greedy_placements": self._partitioner.greedy_placements(),
            "fallback_placements": self._partitioner.fallback_placements(),
            "promotions": self._partitioner.promotions(),
            "locality_migrations": self._migrator.migrations_performed,
        }

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the stored graph contains ``src -> dst``."""
        return self._mirror.has_edge(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Moctopus(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"modules={self.num_modules})"
        )
