"""Heterogeneous graph storage for high-degree nodes (paper Section 3.3).

High-degree nodes live on the host, where the most query-efficient
layout is a contiguous ``cols_vector`` per row: fetching a hub's entire
next-hop list is one sequential scan.  Updates, however, would force the
host to search the vector for duplicates and manage free slots — so the
paper splits the work:

* the **host side** keeps only the ``cols_vector`` (a growable array per
  row, possibly with holes) and performs the single positional write of
  an update;
* the **PIM side** keeps two supplementary hash maps *per row* —
  ``elem_position_map`` mapping ``(row, dst)`` to the position of that
  edge in the vector, and ``free_list_map`` listing free positions — and
  performs existence checks and free-slot allocation.

The insert protocol (the paper's worked example for edge ``<1, 2>``):
``elem_position_map`` confirms the edge is absent → ``free_list_map``
allocates a position → the map records ``(<1, 2>, pos)`` → the host
writes ``2`` at that position of row 1's ``cols_vector``.

The class below is the data structure; :class:`HeteroUpdateOutcome`
reports which side did how much work so the update processor can charge
the simulated hardware accordingly (host write vs PIM map operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.snapshot import (
    DEFAULT_SNAPSHOT_COMPACT_RATIO,
    GraphSnapshot,
    SnapshotCache,
)
from repro.graph.digraph import DEFAULT_LABEL

#: Growth factor of a ``cols_vector`` when it runs out of capacity.
GROWTH_FACTOR = 2
#: Initial capacity of a newly created ``cols_vector``.
INITIAL_CAPACITY = 8
#: Bytes per ``cols_vector`` slot (NodeID + label).
BYTES_PER_SLOT = 12


@dataclass
class HeteroUpdateOutcome:
    """What one heterogeneous-storage update did, for cost accounting.

    Attributes
    ----------
    applied:
        Whether the update changed the graph (an insert of an existing
        edge or a delete of a missing edge is a no-op).
    pim_map_lookups:
        Random hash-map accesses performed on the PIM side
        (``elem_position_map`` / ``free_list_map`` reads and writes).
    host_writes:
        Positional writes performed by the host into ``cols_vector``.
    host_streamed_bytes:
        Bytes the host had to stream (only non-zero when a vector grows
        and its contents are copied).
    """

    applied: bool
    pim_map_lookups: int = 0
    host_writes: int = 0
    host_streamed_bytes: int = 0


class ColsVector:
    """A growable positional array of next hops for one high-degree row."""

    def __init__(self, capacity: int = INITIAL_CAPACITY) -> None:
        self.slots: List[Optional[Tuple[int, int]]] = [None] * capacity
        self.size = 0

    @property
    def capacity(self) -> int:
        """Number of slots currently allocated."""
        return len(self.slots)

    def occupied(self) -> List[Tuple[int, int]]:
        """The stored ``(dst, label)`` pairs in position order."""
        return [slot for slot in self.slots if slot is not None]

    def grow(self) -> int:
        """Double the capacity; return the number of bytes copied."""
        old_capacity = self.capacity
        self.slots.extend([None] * (old_capacity * (GROWTH_FACTOR - 1)))
        return old_capacity * BYTES_PER_SLOT


class HeterogeneousGraphStorage:
    """Host-resident ``cols_vector`` rows plus PIM-resident index maps."""

    def __init__(
        self,
        num_pim_modules: int,
        compact_ratio: float = DEFAULT_SNAPSHOT_COMPACT_RATIO,
        incremental: bool = True,
    ) -> None:
        if num_pim_modules <= 0:
            raise ValueError("num_pim_modules must be positive")
        self._num_pim_modules = num_pim_modules
        self._vectors: Dict[int, ColsVector] = {}
        #: ``(row, dst) -> position`` — conceptually sharded over PIM modules.
        self._elem_position_map: Dict[Tuple[int, int], int] = {}
        #: ``row -> list of free positions`` — conceptually on PIM modules.
        self._free_list_map: Dict[int, List[int]] = {}
        self._num_edges = 0
        #: Base snapshot + overlay + refresh strategy (see repro.core.snapshot).
        self._cache = SnapshotCache(compact_ratio, incremental)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of high-degree rows stored."""
        return len(self._vectors)

    @property
    def num_edges(self) -> int:
        """Number of stored edges."""
        return self._num_edges

    def has_row(self, node: int) -> bool:
        """Whether ``node`` has a host-resident row."""
        return node in self._vectors

    def rows(self) -> Iterator[int]:
        """Iterate over stored row ids."""
        return iter(self._vectors)

    def row_length(self, node: int) -> int:
        """Out-degree of ``node`` (0 when the row is absent)."""
        vector = self._vectors.get(node)
        return 0 if vector is None else vector.size

    def row_bytes(self, node: int) -> int:
        """Bytes the host streams to read the row's occupied prefix.

        ``cols_vector`` slots are filled from the free list, so occupied
        entries stay packed toward the front and a query only has to scan
        ``size`` slots, not the full capacity.
        """
        vector = self._vectors.get(node)
        return 0 if vector is None else vector.size * BYTES_PER_SLOT

    def total_bytes(self) -> int:
        """Total host memory occupied by all ``cols_vector`` rows."""
        return sum(vector.capacity * BYTES_PER_SLOT for vector in self._vectors.values())

    def index_module_of(self, node: int) -> int:
        """PIM module that shards ``node``'s index maps.

        The supplementary maps are spread across modules by row id so
        that no single module becomes an index hotspot.
        """
        return node % self._num_pim_modules

    # ------------------------------------------------------------------
    # Query access (host side)
    # ------------------------------------------------------------------
    def next_hops(self, node: int) -> List[int]:
        """Next-hop NodeIDs of ``node`` via one contiguous scan."""
        vector = self._vectors.get(node)
        if vector is None:
            return []
        return [dst for dst, _ in vector.occupied()]

    def next_hops_with_labels(self, node: int) -> List[Tuple[int, int]]:
        """Next hops of ``node`` as ``(dst, label)`` pairs."""
        vector = self._vectors.get(node)
        if vector is None:
            return []
        return vector.occupied()

    def has_edge(self, src: int, dst: int) -> bool:
        """Edge existence via the PIM-side ``elem_position_map``."""
        return (src, dst) in self._elem_position_map

    def _fetch_row(self, node: int) -> Optional[List[Tuple[int, int]]]:
        """Current entries of ``node``'s row (``None`` when absent)."""
        vector = self._vectors.get(node)
        return None if vector is None else vector.occupied()

    def _all_rows(self) -> List[Tuple[int, List[Tuple[int, int]]]]:
        return [(node, vector.occupied()) for node, vector in self._vectors.items()]

    def to_csr(self) -> GraphSnapshot:
        """CSR snapshot of the host rows (cached; incrementally refreshed).

        Entries appear in ``cols_vector`` position order (the order a
        host scan streams them); ``working_set_bytes`` is the
        capacity-based footprint that the host's random-access cost
        depends on.  Refresh strategy (return cached / splice dirty rows
        / compact) lives in :class:`~repro.core.snapshot.SnapshotCache`;
        every strategy yields array-identical snapshots.
        """
        return self._cache.refresh(
            self._all_rows,
            self._fetch_row,
            bytes_per_entry=BYTES_PER_SLOT,
            working_set_bytes=lambda: max(self.total_bytes(), 1),
            count_local=False,
        )

    # Refresh-strategy counters, aliased for tests and diagnostics.
    @property
    def snapshot_builds(self) -> int:
        """Number of snapshot refreshes performed (any strategy)."""
        return self._cache.builds

    @property
    def snapshot_full_builds(self) -> int:
        """Refreshes that rebuilt the base from scratch."""
        return self._cache.full_builds

    @property
    def snapshot_merges(self) -> int:
        """Refreshes that spliced the overlay into the cached base."""
        return self._cache.merges

    @property
    def snapshot_compactions(self) -> int:
        """Full builds forced by the overlay crossing ``compact_ratio``."""
        return self._cache.compactions

    # ------------------------------------------------------------------
    # Mutation (split between host and PIM, reported in the outcome)
    # ------------------------------------------------------------------
    def ensure_row(self, node: int) -> bool:
        """Create an empty row for ``node``; return ``True`` if it was new."""
        if node in self._vectors:
            return False
        self._vectors[node] = ColsVector()
        self._free_list_map[node] = list(range(INITIAL_CAPACITY))
        if self._cache.tracking:
            self._cache.overlay.record_add(node)
        return True

    def insert_edge(
        self, src: int, dst: int, label: int = DEFAULT_LABEL
    ) -> HeteroUpdateOutcome:
        """Insert ``src -> dst`` following the paper's split protocol."""
        self.ensure_row(src)
        lookups = 1  # elem_position_map existence check (PIM side).
        if (src, dst) in self._elem_position_map:
            return HeteroUpdateOutcome(applied=False, pim_map_lookups=lookups)

        vector = self._vectors[src]
        free_list = self._free_list_map.setdefault(src, [])
        streamed = 0
        if not free_list:
            # The vector is full: grow it and publish the new free slots.
            old_capacity = vector.capacity
            streamed = vector.grow()
            free_list.extend(range(old_capacity, vector.capacity))
        position = free_list.pop()
        lookups += 1  # free_list_map allocation (PIM side).
        self._elem_position_map[(src, dst)] = position
        lookups += 1  # elem_position_map insertion (PIM side).
        vector.slots[position] = (dst, label)
        vector.size += 1
        self._num_edges += 1
        if self._cache.tracking:
            self._cache.overlay.record_add(src)
        return HeteroUpdateOutcome(
            applied=True,
            pim_map_lookups=lookups,
            host_writes=1,
            host_streamed_bytes=streamed,
        )

    def delete_edge(self, src: int, dst: int) -> HeteroUpdateOutcome:
        """Delete ``src -> dst`` following the split protocol."""
        lookups = 1  # elem_position_map lookup (PIM side).
        position = self._elem_position_map.pop((src, dst), None)
        if position is None:
            return HeteroUpdateOutcome(applied=False, pim_map_lookups=lookups)
        vector = self._vectors[src]
        vector.slots[position] = None
        vector.size -= 1
        self._free_list_map.setdefault(src, []).append(position)
        lookups += 1  # free_list_map release (PIM side).
        self._num_edges -= 1
        if self._cache.tracking:
            self._cache.overlay.record_sub(src)
        return HeteroUpdateOutcome(
            applied=True, pim_map_lookups=lookups, host_writes=1
        )

    # ------------------------------------------------------------------
    # Bulk moves (labor division migrations)
    # ------------------------------------------------------------------
    def insert_row(self, node: int, entries: List[Tuple[int, int]]) -> None:
        """Install a whole row (a node promoted from a PIM module)."""
        if node in self._vectors and self._vectors[node].size > 0:
            raise ValueError(f"row {node} already holds data on the host")
        capacity = max(INITIAL_CAPACITY, len(entries) * GROWTH_FACTOR)
        vector = ColsVector(capacity=capacity)
        for position, (dst, label) in enumerate(entries):
            vector.slots[position] = (dst, label)
            self._elem_position_map[(node, dst)] = position
        vector.size = len(entries)
        self._vectors[node] = vector
        self._free_list_map[node] = list(range(len(entries), capacity))
        self._num_edges += len(entries)
        if self._cache.tracking:
            self._cache.overlay.record_move_in(node)

    def remove_row(self, node: int) -> List[Tuple[int, int]]:
        """Remove a row entirely and return its entries (demotion path)."""
        vector = self._vectors.pop(node, None)
        if vector is None:
            return []
        entries = vector.occupied()
        for dst, _ in entries:
            self._elem_position_map.pop((node, dst), None)
        self._free_list_map.pop(node, None)
        self._num_edges -= len(entries)
        if self._cache.tracking:
            self._cache.overlay.record_move_out(node)
        return entries

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, List]:
        """Positional state a CSR snapshot cannot express.

        The split protocol's future behaviour (and simulated cost)
        depends on exactly where each edge sits in its ``cols_vector``,
        how large every vector's capacity is (the host's working-set
        bytes) and the *order* of each free list (slots are allocated
        LIFO).  A checkpoint therefore records, per row sorted by id:
        capacity, the occupied ``(position, dst, label)`` slots in
        position order, and the free list verbatim.
        """
        row_ids = sorted(self._vectors)
        capacities: List[int] = []
        occupied: List[List[Tuple[int, int, int]]] = []
        free_lists: List[List[int]] = []
        for node in row_ids:
            vector = self._vectors[node]
            capacities.append(vector.capacity)
            occupied.append(
                [
                    (position, slot[0], slot[1])
                    for position, slot in enumerate(vector.slots)
                    if slot is not None
                ]
            )
            free_lists.append(list(self._free_list_map.get(node, [])))
        return {
            "row_ids": row_ids,
            "capacities": capacities,
            "occupied": occupied,
            "free_lists": free_lists,
        }

    def restore_state(
        self, state: Dict[str, List], base: Optional[GraphSnapshot] = None
    ) -> None:
        """Rebuild vectors, index maps and free lists from a capture.

        ``base`` optionally seeds the snapshot cache with the
        checkpoint's CSR arrays.  The storage must be empty (freshly
        constructed).
        """
        if self._vectors:
            raise RuntimeError("restore_state requires an empty storage")
        for node, capacity, occupied, free_list in zip(
            state["row_ids"],
            state["capacities"],
            state["occupied"],
            state["free_lists"],
        ):
            vector = ColsVector(capacity=capacity)
            for position, dst, label in occupied:
                vector.slots[position] = (dst, label)
                self._elem_position_map[(node, dst)] = position
            vector.size = len(occupied)
            self._vectors[node] = vector
            self._free_list_map[node] = list(free_list)
            self._num_edges += len(occupied)
        if base is not None:
            self._cache.seed_base(base)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeterogeneousGraphStorage(rows={self.num_rows}, "
            f"edges={self.num_edges})"
        )
