"""Local graph storage of a PIM module.

Each PIM module keeps the adjacency-matrix segment of the graph nodes
assigned to it as a hash map from row id (NodeID) to the row data — the
list of next-hop NodeIDs (and their edge labels).  A hash map is used
for its concurrency and scalability, exactly as the paper describes; in
the simulator it is a Python dict plus byte accounting against the
module's 64 MB local memory.

The storage itself is purely functional with respect to simulation: it
mutates data and reports what happened (row length read, whether an edge
existed, ...), while the *processors* translate those reports into
charged work on the simulated hardware.

Snapshots are maintained incrementally: mutations record the touched row
in a :class:`~repro.core.snapshot.DeltaOverlay` instead of discarding
the cached CSR base, and :meth:`to_csr` splices the dirty rows back in
(or compacts to a fresh base when the overlay has grown past
``compact_ratio`` of the base) — see :mod:`repro.core.snapshot` for the
lifecycle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.snapshot import (
    DEFAULT_SNAPSHOT_COMPACT_RATIO,
    GraphSnapshot,
    SnapshotCache,
)
from repro.graph.digraph import DEFAULT_LABEL
from repro.pim.memory import LocalMemory

#: Bytes charged per stored next-hop entry (NodeID + label).
BYTES_PER_ENTRY = 12
#: Fixed bytes charged per row (hash-map bucket + header).
BYTES_PER_ROW = 32


class LocalGraphStorage:
    """Hash-map adjacency segment stored in one PIM module's local memory."""

    def __init__(
        self,
        memory: Optional[LocalMemory] = None,
        compact_ratio: float = DEFAULT_SNAPSHOT_COMPACT_RATIO,
        incremental: bool = True,
    ) -> None:
        self._rows: Dict[int, List[Tuple[int, int]]] = {}
        self._memory = memory
        self._num_edges = 0
        #: Base snapshot + overlay + refresh strategy (see repro.core.snapshot).
        self._cache = SnapshotCache(compact_ratio, incremental)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of graph nodes stored on this module."""
        return len(self._rows)

    @property
    def num_edges(self) -> int:
        """Number of next-hop entries stored on this module."""
        return self._num_edges

    @property
    def storage_bytes(self) -> int:
        """Bytes of local memory this segment occupies."""
        return len(self._rows) * BYTES_PER_ROW + self._num_edges * BYTES_PER_ENTRY

    def has_row(self, node: int) -> bool:
        """Whether ``node``'s row lives on this module."""
        return node in self._rows

    def rows(self) -> Iterator[int]:
        """Iterate over stored row ids."""
        return iter(self._rows)

    def row_length(self, node: int) -> int:
        """Out-degree of ``node`` on this module (0 when absent)."""
        row = self._rows.get(node)
        return 0 if row is None else len(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def ensure_row(self, node: int) -> bool:
        """Create an empty row for ``node``; return ``True`` if it was new."""
        if node in self._rows:
            return False
        if self._memory is not None:
            self._memory.allocate(BYTES_PER_ROW)
        self._rows[node] = []
        if self._cache.tracking:
            self._cache.overlay.record_add(node)
        return True

    def add_edge(self, src: int, dst: int, label: int = DEFAULT_LABEL) -> bool:
        """Insert ``src -> dst``; return ``True`` if the edge was new."""
        self.ensure_row(src)
        row = self._rows[src]
        for index, (existing_dst, _) in enumerate(row):
            if existing_dst == dst:
                row[index] = (dst, label)
                if self._cache.tracking:
                    self._cache.overlay.record_add(src)
                return False
        if self._memory is not None:
            self._memory.allocate(BYTES_PER_ENTRY)
        row.append((dst, label))
        self._num_edges += 1
        if self._cache.tracking:
            self._cache.overlay.record_add(src)
        return True

    def remove_edge(self, src: int, dst: int) -> bool:
        """Delete ``src -> dst``; return ``True`` if it existed."""
        row = self._rows.get(src)
        if row is None:
            return False
        for index, (existing_dst, _) in enumerate(row):
            if existing_dst == dst:
                del row[index]
                self._num_edges -= 1
                if self._memory is not None:
                    self._memory.free(BYTES_PER_ENTRY)
                if self._cache.tracking:
                    self._cache.overlay.record_sub(src)
                return True
        return False

    def remove_row(self, node: int) -> List[Tuple[int, int]]:
        """Remove ``node``'s row entirely and return its entries.

        Used when the node migrator relocates a node to another computing
        node: the row data travels with it.
        """
        row = self._rows.pop(node, None)
        if row is None:
            return []
        self._num_edges -= len(row)
        if self._memory is not None:
            self._memory.free(BYTES_PER_ROW + len(row) * BYTES_PER_ENTRY)
        if self._cache.tracking:
            self._cache.overlay.record_move_out(node)
        return row

    def insert_row(self, node: int, entries: List[Tuple[int, int]]) -> None:
        """Install a full row (the receiving side of a migration)."""
        if node in self._rows:
            raise ValueError(f"row {node} already exists on this module")
        if self._memory is not None:
            self._memory.allocate(BYTES_PER_ROW + len(entries) * BYTES_PER_ENTRY)
        self._rows[node] = list(entries)
        self._num_edges += len(entries)
        if self._cache.tracking:
            self._cache.overlay.record_move_in(node)

    # ------------------------------------------------------------------
    # Checkpoint restore
    # ------------------------------------------------------------------
    def restore_rows(
        self,
        rows: Dict[int, List[Tuple[int, int]]],
        base: Optional[GraphSnapshot] = None,
    ) -> None:
        """Replace this segment's contents wholesale (recovery path).

        ``rows`` is the full ``node -> [(dst, label), ...]`` mapping the
        checkpoint recorded; ``base`` optionally seeds the snapshot
        cache with the checkpoint's CSR arrays so the first
        post-recovery ``to_csr()`` is a cache hit.  Memory accounting is
        re-charged from scratch — the storage must be empty (freshly
        constructed) when this is called.
        """
        if self._rows:
            raise RuntimeError("restore_rows requires an empty storage")
        self._rows = {node: list(entries) for node, entries in rows.items()}
        self._num_edges = sum(len(entries) for entries in self._rows.values())
        if self._memory is not None:
            self._memory.allocate(self.storage_bytes)
        if base is not None:
            self._cache.seed_base(base)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def to_csr(self) -> GraphSnapshot:
        """CSR snapshot of this segment (cached; incrementally refreshed).

        The snapshot carries this storage's byte-accounting constant and
        the per-row local-destination counts that misplacement detection
        uses, so the vectorized engine can charge identical simulated
        work to the scalar path.  Refresh strategy (return cached /
        splice dirty rows / compact) lives in
        :class:`~repro.core.snapshot.SnapshotCache`; every strategy
        yields array-identical snapshots.
        """
        return self._cache.refresh(
            lambda: list(self._rows.items()),
            self._rows.get,
            bytes_per_entry=BYTES_PER_ENTRY,
            working_set_bytes=lambda: max(self.storage_bytes, 1),
            count_local=True,
        )

    # Refresh-strategy counters, aliased for tests and diagnostics.
    @property
    def snapshot_builds(self) -> int:
        """Number of snapshot refreshes performed (any strategy)."""
        return self._cache.builds

    @property
    def snapshot_full_builds(self) -> int:
        """Refreshes that rebuilt the base from scratch."""
        return self._cache.full_builds

    @property
    def snapshot_merges(self) -> int:
        """Refreshes that spliced the overlay into the cached base."""
        return self._cache.merges

    @property
    def snapshot_compactions(self) -> int:
        """Full builds forced by the overlay crossing ``compact_ratio``."""
        return self._cache.compactions

    # ------------------------------------------------------------------
    # Query access
    # ------------------------------------------------------------------
    def next_hops(self, node: int) -> List[int]:
        """Next-hop NodeIDs of ``node`` (empty when the row is absent)."""
        row = self._rows.get(node)
        if row is None:
            return []
        return [dst for dst, _ in row]

    def next_hops_with_labels(self, node: int) -> List[Tuple[int, int]]:
        """Next hops of ``node`` as ``(dst, label)`` pairs."""
        row = self._rows.get(node)
        if row is None:
            return []
        return list(row)

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether ``src -> dst`` is stored on this module."""
        row = self._rows.get(src)
        if row is None:
            return False
        return any(existing_dst == dst for existing_dst, _ in row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalGraphStorage(rows={self.num_rows}, edges={self.num_edges})"
        )
