"""The update path: batch edge insertions and deletions.

Graph updates are abstracted into ``add`` and ``sub`` operators and
dispatched to PIM modules map-reduce style (paper Section 3.1).  Unlike
path matching, updates need no inter-PIM communication and no reduction
stage, so they can saturate the parallel intra-PIM bandwidth — which is
why the paper reports the largest speedups (30x insert, 52.6x delete on
average) for this workload.

Execution of one batch:

1. **partition** (host) — for every update the host consults (and, for
   brand-new nodes, extends) the ``node_partition_vector``; updates whose
   source row lives on a PIM module are grouped into per-module ``add``/
   ``sub`` operators, updates on host-resident high-degree rows take the
   heterogeneous-storage protocol.
2. **dispatch** (CPC) — operators travel to their modules in one batch
   transfer per module.
3. **apply** (PIM, parallel) — each module applies its operator against
   its local hash-map segment.  High-degree updates run their PIM-side
   index lookups on the module sharding that row's maps, and the host
   performs the single positional write into ``cols_vector``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import MoctopusConfig
from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import LocalGraphStorage
from repro.core.node_migrator import NodeMigrator
from repro.core.operator_processor import OperatorProcessor
from repro.core.operators import BYTES_PER_UPDATE_ITEM, OPERATOR_HEADER_BYTES
from repro.core.partitioner import GraphPartitioner
from repro.graph.digraph import DEFAULT_LABEL, DiGraph
from repro.graph.stream import UpdateKind, UpdateOp
from repro.partition.base import HOST_PARTITION
from repro.pim.stats import ExecutionStats
from repro.pim.system import OperationContext, PIMSystem


class UpdateProcessor:
    """Executes batches of edge insertions/deletions on the simulated system."""

    def __init__(
        self,
        config: MoctopusConfig,
        pim_system: PIMSystem,
        partitioner: GraphPartitioner,
        module_storages: List[LocalGraphStorage],
        host_storage: HeterogeneousGraphStorage,
        operator_processors: List[OperatorProcessor],
        node_migrator: NodeMigrator,
        mirror_graph: DiGraph,
    ) -> None:
        self._config = config
        self._pim = pim_system
        self._partitioner = partitioner
        self._module_storages = module_storages
        self._host_storage = host_storage
        self._processors = operator_processors
        self._migrator = node_migrator
        self._mirror = mirror_graph

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def insert_edges(
        self, edges: List[Tuple[int, int]], labels: Optional[List[int]] = None
    ) -> ExecutionStats:
        """Insert a batch of edges; returns the simulated cost."""
        ops = [
            UpdateOp(UpdateKind.INSERT, src, dst) for src, dst in edges
        ]
        return self.apply_batch(ops, labels=labels)

    def delete_edges(self, edges: List[Tuple[int, int]]) -> ExecutionStats:
        """Delete a batch of edges; returns the simulated cost."""
        ops = [UpdateOp(UpdateKind.DELETE, src, dst) for src, dst in edges]
        return self.apply_batch(ops)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def apply_batch(
        self, ops: List[UpdateOp], labels: Optional[List[int]] = None
    ) -> ExecutionStats:
        """Apply a mixed batch of updates following the paper's flow."""
        operation = self._pim.begin_operation()

        module_adds: Dict[int, List[Tuple[int, int, int]]] = {}
        module_subs: Dict[int, List[Tuple[int, int]]] = {}
        hetero_ops: List[Tuple[UpdateOp, int]] = []

        with operation.phase("partition"):
            for index, update in enumerate(ops):
                label = labels[index] if labels else DEFAULT_LABEL
                operation.host.process_items(1)
                owner, promoted_from = self._place_for_update(update, operation)
                if promoted_from is not None:
                    # The source was promoted to the host while this batch was
                    # being partitioned: updates already queued for its old
                    # module must follow it, or they would be applied to a row
                    # that no longer lives there.
                    self._requeue_promoted_source(
                        update.src, promoted_from, module_adds, module_subs,
                        hetero_ops,
                    )
                if owner == HOST_PARTITION:
                    hetero_ops.append((update, label))
                elif update.kind is UpdateKind.INSERT:
                    module_adds.setdefault(owner, []).append(
                        (update.src, update.dst, label)
                    )
                else:
                    module_subs.setdefault(owner, []).append((update.src, update.dst))

        with operation.phase("dispatch"):
            dispatched_items = sum(len(edges) for edges in module_adds.values())
            dispatched_items += sum(len(edges) for edges in module_subs.values())
            if dispatched_items:
                # All per-module add/sub operators ship in one rank-level
                # batched scatter.
                operation.cpc_transfer(
                    OPERATOR_HEADER_BYTES + dispatched_items * BYTES_PER_UPDATE_ITEM,
                    num_transfers=1,
                )

        with operation.phase("apply"):
            self._apply_module_updates(operation, module_adds, module_subs)
            self._apply_hetero_updates(operation, hetero_ops)

        stats = operation.finish()
        stats.add_counter("updates", len(ops))
        return stats

    # ------------------------------------------------------------------
    # Placement of update targets
    # ------------------------------------------------------------------
    def _place_for_update(
        self, update: UpdateOp, operation: OperationContext
    ) -> Tuple[int, Optional[int]]:
        """Owner of the update's source row, plus the module it was promoted from.

        Returns ``(owner_partition, promoted_from)`` where ``promoted_from``
        is the PIM module the source just left (``None`` when no promotion
        happened during this placement).
        """
        src, dst = update.src, update.dst
        if update.kind is UpdateKind.INSERT:
            previous = self._partitioner.partition_of(src)
            src_partition, _ = self._partitioner.ingest_edge(src, dst)
            promoted_from: Optional[int] = None
            # The labor-division wrapper may have just promoted the source
            # because this edge pushed it over the threshold.
            if (
                previous is not None
                and previous != HOST_PARTITION
                and src_partition == HOST_PARTITION
            ):
                self._migrator.promote_to_host(src, previous, op=operation)
                promoted_from = previous
            # Consulting (and possibly extending) the partition vector is a
            # host-side access per endpoint; the vector is one small entry
            # per node (the paper's node_partition_vector), so it stays
            # cache-resident just as it does on the real platform.
            operation.host.random_accesses(2, working_set_bytes=len(self._mirror) * 2)
            return src_partition, promoted_from
        owner = self._partitioner.partition_of(src)
        operation.host.random_accesses(1, working_set_bytes=len(self._mirror) * 2)
        if owner is None:
            # Deleting an edge of an unknown node: treat as a host no-op.
            return HOST_PARTITION, None
        return owner, None

    def _requeue_promoted_source(
        self,
        src: int,
        promoted_from: int,
        module_adds: Dict[int, List[Tuple[int, int, int]]],
        module_subs: Dict[int, List[Tuple[int, int]]],
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        """Move queued updates of a just-promoted source to the hetero path."""
        pending_adds = module_adds.get(promoted_from, [])
        kept_adds = []
        for edge_src, edge_dst, edge_label in pending_adds:
            if edge_src == src:
                hetero_ops.append(
                    (UpdateOp(UpdateKind.INSERT, edge_src, edge_dst), edge_label)
                )
            else:
                kept_adds.append((edge_src, edge_dst, edge_label))
        if pending_adds:
            module_adds[promoted_from] = kept_adds
        pending_subs = module_subs.get(promoted_from, [])
        kept_subs = []
        for edge_src, edge_dst in pending_subs:
            if edge_src == src:
                hetero_ops.append(
                    (UpdateOp(UpdateKind.DELETE, edge_src, edge_dst), DEFAULT_LABEL)
                )
            else:
                kept_subs.append((edge_src, edge_dst))
        if pending_subs:
            module_subs[promoted_from] = kept_subs

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _apply_module_updates(
        self,
        operation: OperationContext,
        module_adds: Dict[int, List[Tuple[int, int, int]]],
        module_subs: Dict[int, List[Tuple[int, int]]],
    ) -> None:
        for module_id, add_edges in module_adds.items():
            module = operation.module(module_id)
            module.launch_kernel()
            work = self._processors[module_id].process_add(add_edges)
            module.random_accesses(work.map_lookups)
            module.stream_bytes(work.bytes_streamed)
            module.process_items(work.items_processed)
            for src, dst, label in add_edges:
                self._mirror.add_edge(src, dst, label)
        for module_id, sub_edges in module_subs.items():
            module = operation.module(module_id)
            module.launch_kernel()
            work = self._processors[module_id].process_sub(sub_edges)
            module.random_accesses(work.map_lookups)
            module.stream_bytes(work.bytes_streamed)
            module.process_items(work.items_processed)
            for src, dst in sub_edges:
                self._mirror.remove_edge(src, dst)

    def _apply_hetero_updates(
        self,
        operation: OperationContext,
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        if hetero_ops:
            # The heterogeneous-storage protocol exchanges (edge, position)
            # records with the PIM-side index maps; the whole batch moves in
            # one scatter/gather pair, so only the byte volume is per-edge.
            operation.cpc_transfer(
                2 * len(hetero_ops) * BYTES_PER_UPDATE_ITEM, num_transfers=2
            )
        for update, label in hetero_ops:
            index_module = operation.module(
                self._host_storage.index_module_of(update.src)
            )
            if update.kind is UpdateKind.INSERT:
                outcome = self._host_storage.insert_edge(update.src, update.dst, label)
                self._mirror.add_edge(update.src, update.dst, label)
            else:
                outcome = self._host_storage.delete_edge(update.src, update.dst)
                self._mirror.remove_edge(update.src, update.dst)
            # PIM side: index-map lookups and free-slot management.
            index_module.random_accesses(outcome.pim_map_lookups)
            index_module.process_items(outcome.pim_map_lookups)
            # Host side: the single positional write (plus any growth copy).
            operation.host.process_items(outcome.host_writes)
            if outcome.host_streamed_bytes:
                operation.host.stream_bytes(outcome.host_streamed_bytes)
