"""The update path: batch edge insertions and deletions.

Graph updates are abstracted into ``add`` and ``sub`` operators and
dispatched to PIM modules map-reduce style (paper Section 3.1).  Unlike
path matching, updates need no inter-PIM communication and no reduction
stage, so they can saturate the parallel intra-PIM bandwidth — which is
why the paper reports the largest speedups (30x insert, 52.6x delete on
average) for this workload.

Execution of one batch:

1. **partition** (host) — for every update the host consults (and, for
   brand-new nodes, extends) the ``node_partition_vector``; updates whose
   source row lives on a PIM module are grouped into per-module ``add``/
   ``sub`` operators, updates on host-resident high-degree rows take the
   heterogeneous-storage protocol.
2. **dispatch** (CPC) — operators travel to their modules in one batch
   transfer per module.
3. **apply** (PIM, parallel) — each module applies its operator against
   its local hash-map segment.  High-degree updates run their PIM-side
   index lookups on the module sharding that row's maps, and the host
   performs the single positional write into ``cols_vector``.

Two interchangeable implementations of the partition step exist, chosen
by the same ``MoctopusConfig.engine`` knob as the query backends:

* ``"python"`` — the scalar reference: one pass over the batch, a
  partition-vector consultation per update (exact original semantics);
* ``"vectorized"`` — one ``searchsorted`` over the whole batch resolves
  every endpoint against the :class:`~repro.partition.owner_index.
  OwnerIndex`; updates that cannot change any placement (both endpoints
  assigned, source nowhere near the high-degree threshold) are grouped
  per module with ``np.unique``-style run detection, and only the
  *stateful* remainder — brand-new nodes, sources that may cross the
  threshold mid-batch — replays through the scalar logic in batch
  order.

Both produce bit-identical operator queues per source, identical final
system state, and identical simulated statistics: all phase accounting
is integer counters folded into time once per phase, so one bulk charge
equals N unit charges exactly.

**Replay determinism contract.**  The durability layer
(:mod:`repro.durability`) recovers from crashes by re-running
:meth:`UpdateProcessor.apply_batch` on WAL-logged batches, so this
method must stay a pure function of (batch, labels, observable system
state): no wall clock, no randomness, no iteration over
non-deterministically ordered containers that feeds back into state or
accounting.  Everything it consults — the partition vector, observed
out-degrees, storage contents, the mirror's node count — is restored
bit-exactly by checkpoints, and the fault-injection suite
(``tests/test_durability.py``) breaks if a change here violates the
contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MoctopusConfig
from repro.core.hetero_storage import HeterogeneousGraphStorage
from repro.core.local_storage import LocalGraphStorage
from repro.core.node_migrator import NodeMigrator
from repro.core.operator_processor import OperatorProcessor
from repro.core.operators import BYTES_PER_UPDATE_ITEM, OPERATOR_HEADER_BYTES
from repro.core.partitioner import GraphPartitioner
from repro.engine.base import ENGINE_NAMES
from repro.graph.digraph import DEFAULT_LABEL, DiGraph
from repro.graph.stream import UpdateKind, UpdateOp
from repro.partition.base import HOST_PARTITION
from repro.partition.owner_index import OwnerIndex
from repro.pim.stats import ExecutionStats
from repro.pim.system import OperationContext, PIMSystem


#: One queued module update: ``(seq, kind, src, dst, label)`` where
#: ``seq`` is the op's position in the original batch.  Deletes carry
#: ``DEFAULT_LABEL`` (labels are ignored on removal).
PendingEntry = Tuple[int, UpdateKind, int, int, int]


class _PendingBatch:
    """Per-module ``add``/``sub`` operator payloads of one batch.

    Every entry records its position in the original batch (``seq``), and
    :meth:`finalize` hands each module its payload sorted by ``seq`` — so
    the module applies its slice of the batch in true batch order even
    though insertions and deletions travel as separate ``add``/``sub``
    operators.  Applying the grouped operators wholesale (all adds, then
    all subs) would silently resolve a delete→insert of the same edge
    within one batch to *absent*, diverging from sequential semantics.

    Entries are also indexed by source as they are queued, because a
    source promoted to the host mid-batch must pull its already-queued
    updates out of its old module's operators (they would otherwise be
    applied to a row that no longer lives there).  Requeueing tombstones
    the entries in place — survivor order is untouched and one promotion
    costs O(pending-for-source), not a rescan of the whole batch —
    and :meth:`finalize` drops the tombstones in a single pass.
    """

    def __init__(self) -> None:
        self.ops: Dict[int, List[Optional[PendingEntry]]] = {}
        self._positions: Dict[Tuple[int, int], List[int]] = {}
        #: Which operator kinds were ever queued per module; an operator
        #: fully drained by requeues still ships (empty) and its kernel
        #: launch is still part of the charged work.
        self._operators: Dict[int, set] = {}

    def queue_add(self, module: int, seq: int, src: int, dst: int, label: int) -> None:
        """Queue one insertion for ``module``, indexed for a possible
        requeue; use :meth:`extend_adds` for sources that cannot promote."""
        bucket = self.ops.setdefault(module, [])
        self._positions.setdefault((module, src), []).append(len(bucket))
        self._operators.setdefault(module, set()).add(UpdateKind.INSERT)
        bucket.append((seq, UpdateKind.INSERT, src, dst, label))

    def queue_sub(self, module: int, seq: int, src: int, dst: int) -> None:
        """Queue one deletion for ``module`` (see :meth:`queue_add`)."""
        bucket = self.ops.setdefault(module, [])
        self._positions.setdefault((module, src), []).append(len(bucket))
        self._operators.setdefault(module, set()).add(UpdateKind.DELETE)
        bucket.append((seq, UpdateKind.DELETE, src, dst, DEFAULT_LABEL))

    def extend_adds(
        self, module: int, entries: List[Tuple[int, int, int, int]]
    ) -> None:
        """Bulk-queue ``(seq, src, dst, label)`` insertions whose sources
        can never be requeued."""
        if not entries:
            return
        self._operators.setdefault(module, set()).add(UpdateKind.INSERT)
        self.ops.setdefault(module, []).extend(
            (seq, UpdateKind.INSERT, src, dst, label)
            for seq, src, dst, label in entries
        )

    def extend_subs(self, module: int, entries: List[Tuple[int, int, int]]) -> None:
        """Bulk-queue ``(seq, src, dst)`` deletions whose sources can
        never be requeued."""
        if not entries:
            return
        self._operators.setdefault(module, set()).add(UpdateKind.DELETE)
        self.ops.setdefault(module, []).extend(
            (seq, UpdateKind.DELETE, src, dst, DEFAULT_LABEL)
            for seq, src, dst in entries
        )

    def requeue_source(self, src: int, module: int) -> List[PendingEntry]:
        """Remove and return ``src``'s pending entries on ``module``,
        sorted into original batch order."""
        requeued: List[PendingEntry] = []
        bucket = self.ops.get(module, [])
        for position in self._positions.pop((module, src), []):
            requeued.append(bucket[position])
            bucket[position] = None
        requeued.sort(key=lambda entry: entry[0])
        return requeued

    def finalize(
        self,
    ) -> Dict[int, Tuple[List[PendingEntry], bool, bool]]:
        """Tombstone-free per-module payloads in batch order.

        Returns ``module -> (entries, has_add_operator, has_sub_operator)``
        where the operator flags record which operator kinds were queued
        (even when every entry was requeued away — the empty kernel
        launch is part of the charged work, as the scalar path always
        dispatched it).
        """
        finalized: Dict[int, Tuple[List[PendingEntry], bool, bool]] = {}
        for module, bucket in self.ops.items():
            entries = [entry for entry in bucket if entry is not None]
            entries.sort(key=lambda entry: entry[0])
            operators = self._operators.get(module, set())
            finalized[module] = (
                entries,
                UpdateKind.INSERT in operators,
                UpdateKind.DELETE in operators,
            )
        return finalized


def _run_bounds(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Start/stop indices of equal-value runs in a sorted array."""
    run_mask = np.empty(len(values), dtype=bool)
    run_mask[0] = True
    np.not_equal(values[1:], values[:-1], out=run_mask[1:])
    starts = np.flatnonzero(run_mask)
    return starts, np.append(starts[1:], len(values))


def _grouped_by_owner(mask: np.ndarray, owners: np.ndarray):
    """Yield ``(owner, op-index chunk)`` per owner run of the masked ops.

    The stable owner sort keeps batch order within each chunk — the
    per-source entry order the apply-phase byte accounting depends on.
    """
    selected = np.flatnonzero(mask)
    if selected.size == 0:
        return
    chunk_owners = owners[selected]
    order = np.argsort(chunk_owners, kind="stable")
    selected, chunk_owners = selected[order], chunk_owners[order]
    for start, stop in zip(*_run_bounds(chunk_owners)):
        yield int(chunk_owners[start]), selected[start:stop]


class UpdateProcessor:
    """Executes batches of edge insertions/deletions on the simulated system."""

    def __init__(
        self,
        config: MoctopusConfig,
        pim_system: PIMSystem,
        partitioner: GraphPartitioner,
        module_storages: List[LocalGraphStorage],
        host_storage: HeterogeneousGraphStorage,
        operator_processors: List[OperatorProcessor],
        node_migrator: NodeMigrator,
        mirror_graph: DiGraph,
    ) -> None:
        self._config = config
        self._pim = pim_system
        self._partitioner = partitioner
        self._module_storages = module_storages
        self._host_storage = host_storage
        self._processors = operator_processors
        self._migrator = node_migrator
        self._mirror = mirror_graph
        self._engine_name = config.engine
        self._owner_index = OwnerIndex()
        #: Lifetime number of update batches applied.  Checkpointed and
        #: restored (then advanced by WAL tail replay) so the counter
        #: reads the same on a recovered system as on one that never
        #: crashed.
        self.batches_applied = 0

    # ------------------------------------------------------------------
    # Backend selection (mirrors the query processor's knob)
    # ------------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        """Name of the active update-partitioning backend."""
        return self._engine_name

    def use_engine(self, name: str) -> None:
        """Swap the update-partitioning backend (any ``ENGINE_NAMES`` entry;
        ``"matrix"`` shares the vectorized partitioning path)."""
        if name not in ENGINE_NAMES:
            raise ValueError(
                f"unknown execution engine {name!r}; expected one of {ENGINE_NAMES}"
            )
        self._engine_name = name

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def apply_batch(
        self, ops: List[UpdateOp], labels: Optional[List[int]] = None
    ) -> ExecutionStats:
        """Apply a mixed batch of updates following the paper's flow."""
        operation = self._pim.begin_operation()

        pending = _PendingBatch()
        hetero_ops: List[Tuple[UpdateOp, int]] = []

        with operation.phase("partition"):
            # The matrix engine shares the vectorized batch-partitioning
            # path: only query execution differs between those backends.
            if self._engine_name != "python" and ops:
                self._partition_batch_vectorized(
                    operation, ops, labels, pending, hetero_ops
                )
            else:
                self._partition_batch_scalar(
                    operation, ops, labels, pending, hetero_ops
                )
        module_ops = pending.finalize()

        with operation.phase("dispatch"):
            dispatched_items = sum(
                len(entries) for entries, _, _ in module_ops.values()
            )
            if dispatched_items:
                # All per-module add/sub operators ship in one rank-level
                # batched scatter.
                operation.cpc_transfer(
                    OPERATOR_HEADER_BYTES + dispatched_items * BYTES_PER_UPDATE_ITEM,
                    num_transfers=1,
                )

        with operation.phase("apply"):
            self._apply_module_updates(operation, module_ops)
            self._apply_hetero_updates(operation, hetero_ops)

        stats = operation.finish()
        stats.add_counter("updates", len(ops))
        self.batches_applied += 1
        return stats

    # ------------------------------------------------------------------
    # Partition phase — scalar reference
    # ------------------------------------------------------------------
    def _partition_batch_scalar(
        self,
        operation: OperationContext,
        ops: List[UpdateOp],
        labels: Optional[List[int]],
        pending: _PendingBatch,
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        """One partition-vector consultation per update (original semantics)."""
        for index, update in enumerate(ops):
            label = labels[index] if labels else DEFAULT_LABEL
            operation.host.process_items(1)
            self._route_update(update, index, label, operation, pending, hetero_ops)

    # ------------------------------------------------------------------
    # Partition phase — vectorized batch path
    # ------------------------------------------------------------------
    def _partition_batch_vectorized(
        self,
        operation: OperationContext,
        ops: List[UpdateOp],
        labels: Optional[List[int]],
        pending: _PendingBatch,
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        """Whole-batch partitioning with one owner lookup per endpoint array.

        Updates are split by *source* into a **simple** set — source and
        destination already assigned and the source cannot cross the
        high-degree threshold within this batch, so partitioning is a
        pure lookup — and a **complex** remainder that may mutate
        partitioner state (place new nodes, promote hubs).  Simple
        updates are resolved and grouped entirely in numpy; complex ones
        replay through the scalar per-op logic in batch order, which
        reproduces placement decisions, promotions and requeues exactly.
        A source is classified wholesale, so the per-source queueing
        order every accounting rule depends on is preserved verbatim.
        """
        count = len(ops)
        # Loop-top per-item host charge of the scalar path, in one call
        # (integer phase counters make this bit-identical).
        operation.host.process_items(count)

        srcs = np.fromiter((update.src for update in ops), dtype=np.int64, count=count)
        dsts = np.fromiter((update.dst for update in ops), dtype=np.int64, count=count)
        inserts = np.fromiter(
            (update.kind is UpdateKind.INSERT for update in ops),
            dtype=bool,
            count=count,
        )

        self._owner_index.refresh(self._partitioner.partition_map)
        src_owners = self._owner_index.owners_of(srcs)
        dst_owners = self._owner_index.owners_of(dsts)
        unknown = OwnerIndex.UNKNOWN

        # --- classify sources --------------------------------------------
        complex_sources = set(np.unique(srcs[src_owners == unknown]).tolist())
        complex_sources.update(
            np.unique(srcs[inserts & (dst_owners == unknown)]).tolist()
        )
        threshold = self._config.high_degree_threshold
        if threshold is not None:
            candidates = (
                inserts & (src_owners != unknown) & (src_owners != HOST_PARTITION)
            )
            unique_srcs, batch_degrees = np.unique(
                srcs[candidates], return_counts=True
            )
            for node, batch_degree in zip(
                unique_srcs.tolist(), batch_degrees.tolist()
            ):
                # The labor-division wrapper promotes when the observed
                # degree passes the threshold; with this batch's inserts
                # it would reach deg + batch_degree.
                if (
                    self._partitioner.observed_out_degree(node) + batch_degree
                    > threshold
                ):
                    complex_sources.add(node)

        if complex_sources:
            complex_arr = np.fromiter(
                sorted(complex_sources), dtype=np.int64, count=len(complex_sources)
            )
            positions = np.minimum(
                np.searchsorted(complex_arr, srcs), len(complex_arr) - 1
            )
            is_complex = complex_arr[positions] == srcs
        else:
            is_complex = np.zeros(count, dtype=bool)

        simple_inserts = inserts & ~is_complex
        simple_deletes = ~inserts & ~is_complex

        # --- bulk host accounting for the simple set ---------------------
        # The scalar path charges 2 partition-vector accesses per insert
        # and 1 per delete; the working set is constant across the phase
        # (the mirror only mutates during apply).
        accesses = 2 * int(simple_inserts.sum()) + int(simple_deletes.sum())
        if accesses:
            operation.host.random_accesses(
                accesses, working_set_bytes=len(self._mirror) * 2
            )

        # --- degree bookkeeping the scalar ingest would have done --------
        if threshold is not None and simple_inserts.any():
            unique_srcs, batch_degrees = np.unique(
                srcs[simple_inserts], return_counts=True
            )
            self._partitioner.record_observed_edges(
                zip(unique_srcs.tolist(), batch_degrees.tolist()),
                np.unique(dsts[simple_inserts]).tolist(),
            )

        if labels:
            op_labels = np.fromiter(labels, dtype=np.int64, count=count)
        else:
            op_labels = np.full(count, DEFAULT_LABEL, dtype=np.int64)

        # --- group simple module updates per module ----------------------
        on_module = src_owners != HOST_PARTITION
        for owner, chunk in _grouped_by_owner(simple_inserts & on_module, src_owners):
            pending.extend_adds(
                owner,
                list(
                    zip(
                        chunk.tolist(),
                        srcs[chunk].tolist(),
                        dsts[chunk].tolist(),
                        op_labels[chunk].tolist(),
                    )
                ),
            )
        for owner, chunk in _grouped_by_owner(simple_deletes & on_module, src_owners):
            pending.extend_subs(
                owner,
                list(zip(chunk.tolist(), srcs[chunk].tolist(), dsts[chunk].tolist())),
            )

        # --- simple host-resident updates (the hetero protocol) ----------
        host_simple = ~is_complex & (src_owners == HOST_PARTITION)
        for index in np.flatnonzero(host_simple).tolist():
            hetero_ops.append((ops[index], int(op_labels[index])))

        # --- stateful remainder: replay scalar logic in batch order ------
        for index in np.flatnonzero(is_complex).tolist():
            self._route_update(
                ops[index], index, int(op_labels[index]), operation, pending, hetero_ops
            )

    # ------------------------------------------------------------------
    # Placement of update targets
    # ------------------------------------------------------------------
    def _route_update(
        self,
        update: UpdateOp,
        seq: int,
        label: int,
        operation: OperationContext,
        pending: _PendingBatch,
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        """Place one update and queue it — the per-op routing both the
        scalar path and the vectorized stateful remainder share."""
        owner, promoted_from = self._place_for_update(update, operation)
        if promoted_from is not None:
            # The source was promoted to the host while this batch was
            # being partitioned: updates already queued for its old
            # module must follow it, or they would be applied to a row
            # that no longer lives there.
            self._requeue_promoted_source(
                update.src, promoted_from, pending, hetero_ops
            )
        if owner == HOST_PARTITION:
            hetero_ops.append((update, label))
        elif update.kind is UpdateKind.INSERT:
            pending.queue_add(owner, seq, update.src, update.dst, label)
        else:
            pending.queue_sub(owner, seq, update.src, update.dst)

    def _place_for_update(
        self, update: UpdateOp, operation: OperationContext
    ) -> Tuple[int, Optional[int]]:
        """Owner of the update's source row, plus the module it was promoted from.

        Returns ``(owner_partition, promoted_from)`` where ``promoted_from``
        is the PIM module the source just left (``None`` when no promotion
        happened during this placement).
        """
        src, dst = update.src, update.dst
        if update.kind is UpdateKind.INSERT:
            previous = self._partitioner.partition_of(src)
            src_partition, _ = self._partitioner.ingest_edge(src, dst)
            promoted_from: Optional[int] = None
            # The labor-division wrapper may have just promoted the source
            # because this edge pushed it over the threshold.
            if (
                previous is not None
                and previous != HOST_PARTITION
                and src_partition == HOST_PARTITION
            ):
                self._migrator.promote_to_host(src, previous, op=operation)
                promoted_from = previous
            # Consulting (and possibly extending) the partition vector is a
            # host-side access per endpoint; the vector is one small entry
            # per node (the paper's node_partition_vector), so it stays
            # cache-resident just as it does on the real platform.
            operation.host.random_accesses(2, working_set_bytes=len(self._mirror) * 2)
            return src_partition, promoted_from
        owner = self._partitioner.partition_of(src)
        operation.host.random_accesses(1, working_set_bytes=len(self._mirror) * 2)
        if owner is None:
            # Deleting an edge of an unknown node: treat as a host no-op.
            return HOST_PARTITION, None
        return owner, None

    def _requeue_promoted_source(
        self,
        src: int,
        promoted_from: int,
        pending: _PendingBatch,
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        """Move queued updates of a just-promoted source to the hetero
        path, preserving their original batch order."""
        for _, kind, edge_src, edge_dst, edge_label in pending.requeue_source(
            src, promoted_from
        ):
            hetero_ops.append((UpdateOp(kind, edge_src, edge_dst), edge_label))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _apply_module_updates(
        self,
        operation: OperationContext,
        module_ops: Dict[int, Tuple[List[PendingEntry], bool, bool]],
    ) -> None:
        """Apply each module's slice of the batch in true batch order.

        The ``add`` and ``sub`` operators still dispatch (and charge one
        kernel launch each) per module, but their entries are applied
        interleaved by batch position: applying all adds before all subs
        would resolve a delete→insert of the same edge within one batch
        to *absent* instead of the sequential result.
        """
        for module_id, (entries, has_add_op, has_sub_op) in module_ops.items():
            module = operation.module(module_id)
            if has_add_op:
                module.launch_kernel()
            if has_sub_op:
                module.launch_kernel()
            work = self._processors[module_id].process_update_ops(
                [(kind, src, dst, label) for _, kind, src, dst, label in entries]
            )
            module.random_accesses(work.map_lookups)
            module.stream_bytes(work.bytes_streamed)
            module.process_items(work.items_processed)
            for _, kind, src, dst, label in entries:
                if kind is UpdateKind.INSERT:
                    self._mirror.add_edge(src, dst, label)
                else:
                    self._mirror.remove_edge(src, dst)

    def _apply_hetero_updates(
        self,
        operation: OperationContext,
        hetero_ops: List[Tuple[UpdateOp, int]],
    ) -> None:
        if hetero_ops:
            # The heterogeneous-storage protocol exchanges (edge, position)
            # records with the PIM-side index maps; the whole batch moves in
            # one scatter/gather pair, so only the byte volume is per-edge.
            operation.cpc_transfer(
                2 * len(hetero_ops) * BYTES_PER_UPDATE_ITEM, num_transfers=2
            )
        for update, label in hetero_ops:
            index_module = operation.module(
                self._host_storage.index_module_of(update.src)
            )
            if update.kind is UpdateKind.INSERT:
                outcome = self._host_storage.insert_edge(update.src, update.dst, label)
                self._mirror.add_edge(update.src, update.dst, label)
            else:
                outcome = self._host_storage.delete_edge(update.src, update.dst)
                self._mirror.remove_edge(update.src, update.dst)
            # PIM side: index-map lookups and free-slot management.
            index_module.random_accesses(outcome.pim_map_lookups)
            index_module.process_items(outcome.pim_map_lookups)
            # Host side: the single positional write (plus any growth copy).
            operation.host.process_items(outcome.host_writes)
            if outcome.host_streamed_bytes:
                operation.host.stream_bytes(outcome.host_streamed_bytes)
